"""Ruzsa–Szemerédi graphs: tripartite graphs whose triangles are many,
edge-disjoint, and *exactly* the planted ones (Claim 23 of the paper).

The construction is classical: take an AP-free (progression-free) set
S ⊆ {0..N-1} and plant, for every a in [N] and s in S, the triangle

    a ∈ A,   a + s ∈ B,   a + 2s ∈ C

on vertex classes A = [N], B = [2N], C = [3N].  Because S has no 3-term
arithmetic progression, every triangle of the resulting graph is planted
and every edge lies in exactly one triangle.  With Behrend's AP-free
sets, the number of triangles is N²/e^{O(√log N)} — the density Claim 23
requires for the Theorem 24 reduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.graphs.graph import Graph

__all__ = [
    "behrend_set",
    "greedy_ap_free_set",
    "ap_free_set",
    "has_three_term_ap",
    "RuzsaSzemerediGraph",
    "rs_graph",
]


def has_three_term_ap(values: Set[int]) -> bool:
    """True iff some x != z in the set satisfy x + z = 2y with y in the
    set (a 3-term arithmetic progression)."""
    ordered = sorted(values)
    members = set(values)
    for i, x in enumerate(ordered):
        for z in ordered[i + 1 :]:
            if (x + z) % 2 == 0 and (x + z) // 2 in members and (x + z) // 2 != x:
                if (x + z) // 2 != z:
                    return True
    return False


def greedy_ap_free_set(limit: int) -> Set[int]:
    """Greedy AP-free subset of {0..limit-1} (equals the ternary
    no-digit-2 set; good for small limits)."""
    chosen: List[int] = []
    chosen_set: Set[int] = set()
    for x in range(limit):
        ok = True
        for y in chosen:
            third = 2 * y - x
            if third in chosen_set and third != x:
                ok = False
                break
            mid2 = x + y
            if mid2 % 2 == 0 and mid2 // 2 in chosen_set and mid2 // 2 not in (x, y):
                ok = False
                break
        if ok:
            chosen.append(x)
            chosen_set.add(x)
    return chosen_set


def behrend_set(limit: int, dimensions: int) -> Set[int]:
    """Behrend's construction in a fixed dimension: digit vectors in base
    2d+1 with digits < d and fixed squared norm; strict convexity of the
    sphere rules out 3-term APs."""
    if limit < 1 or dimensions < 1:
        return set()
    base = max(3, int(math.ceil(limit ** (1.0 / dimensions))))
    d = max(1, base // 2)
    by_norm = {}

    def rec(idx: int, value: int, norm: int, scale: int) -> None:
        if value >= limit:
            return
        if idx == dimensions:
            by_norm.setdefault(norm, set()).add(value)
            return
        for a in range(d):
            new_value = value + a * scale
            if new_value >= limit:
                break
            rec(idx + 1, new_value, norm + a * a, scale * base)

    rec(0, 0, 0, 1)
    if not by_norm:
        return set()
    return max(by_norm.values(), key=len)


def ap_free_set(limit: int) -> Set[int]:
    """The best AP-free subset of {0..limit-1} among the greedy set (for
    small limits) and Behrend's construction over several dimensions."""
    best: Set[int] = set()
    if limit <= 4096:
        best = greedy_ap_free_set(limit)
    max_dim = max(1, int(math.sqrt(max(1.0, math.log2(max(2, limit))))) + 2)
    for dim in range(1, max_dim + 2):
        candidate = behrend_set(limit, dim)
        if len(candidate) > len(best):
            best = candidate
    return best


@dataclass
class RuzsaSzemerediGraph:
    """The tripartite graph plus its planted triangle family.

    Attributes
    ----------
    graph:
        The tripartite graph on 6N vertices: A = 0..N-1, B = N..3N-1,
        C = 3N..6N-1.
    triangles:
        Planted triangles (a, b, c) with one vertex per class; every edge
        of ``graph`` is in exactly one, and they are the only triangles.
    parts:
        The three vertex classes (A, B, C).
    """

    graph: Graph
    triangles: List[Tuple[int, int, int]]
    parts: Tuple[range, range, range]

    @property
    def triangle_count(self) -> int:
        return len(self.triangles)

    def triangle_of_edge(self, u: int, v: int) -> Tuple[int, int, int]:
        """The unique planted triangle containing edge {u, v} (this is the
        map e -> i(e) of Theorem 24's reduction)."""
        key = (u, v) if u < v else (v, u)
        try:
            return self._edge_index[key]  # type: ignore[attr-defined]
        except AttributeError:
            index = {}
            for tri in self.triangles:
                a, b, c = tri
                for e in ((a, b), (b, c), (a, c)):
                    index[(min(e), max(e))] = tri
            self._edge_index = index  # type: ignore[attr-defined]
            return index[key]


def rs_graph(class_size: int) -> RuzsaSzemerediGraph:
    """Build the Ruzsa–Szemerédi graph for |A| = class_size."""
    big_n = class_size
    s_set = sorted(ap_free_set(big_n))
    graph = Graph(6 * big_n)
    triangles = []
    for a in range(big_n):
        for s in s_set:
            b = big_n + a + s
            c = 3 * big_n + a + 2 * s
            graph.add_edge(a, b)
            graph.add_edge(b, c)
            graph.add_edge(a, c)
            triangles.append((a, b, c))
    parts = (
        range(0, big_n),
        range(big_n, 3 * big_n),
        range(3 * big_n, 6 * big_n),
    )
    return RuzsaSzemerediGraph(graph=graph, triangles=triangles, parts=parts)
