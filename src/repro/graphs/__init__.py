"""Graph substrate: the library's own graph type, generators, degeneracy,
subgraph search, Turán machinery, extremal and Ruzsa–Szemerédi graphs."""

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.degeneracy import core_decomposition, degeneracy, degeneracy_ordering
from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    cycle_graph,
    empty_graph,
    matching_graph,
    path_graph,
    plant_subgraph,
    random_bipartite,
    random_graph,
    random_k_degenerate,
    star_graph,
    turan_graph,
)
from repro.graphs.subgraph_iso import (
    contains_subgraph,
    count_copies,
    enumerate_copies,
    find_clique,
    find_embedding,
    iter_embeddings,
)
from repro.graphs import extremal, metrics, properties, ruzsa_szemeredi, turan

__all__ = [
    "Graph",
    "Edge",
    "canonical_edge",
    "degeneracy",
    "degeneracy_ordering",
    "core_decomposition",
    "empty_graph",
    "complete_graph",
    "complete_bipartite",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "matching_graph",
    "turan_graph",
    "random_graph",
    "random_bipartite",
    "random_k_degenerate",
    "plant_subgraph",
    "find_embedding",
    "iter_embeddings",
    "contains_subgraph",
    "enumerate_copies",
    "count_copies",
    "find_clique",
    "turan",
    "extremal",
    "metrics",
    "properties",
    "ruzsa_szemeredi",
]
