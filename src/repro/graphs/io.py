"""Graph serialization: graph6, edge lists, adjacency dumps.

graph6 is the de-facto interchange format for small graphs (McKay's
nauty suite); implementing it makes the library's instances portable to
external tools, and the encoder/decoder round-trips are property-tested
against networkx's implementation.
"""

from __future__ import annotations

from typing import List

from repro.graphs.graph import Graph

__all__ = [
    "to_graph6",
    "from_graph6",
    "to_edge_list",
    "from_edge_list",
]


def _encode_n(n: int) -> List[int]:
    if n < 0:
        raise ValueError("vertex count must be non-negative")
    if n <= 62:
        return [n + 63]
    if n <= 258047:
        return [126] + [((n >> shift) & 63) + 63 for shift in (12, 6, 0)]
    if n <= 68719476735:
        return [126, 126] + [
            ((n >> shift) & 63) + 63 for shift in (30, 24, 18, 12, 6, 0)
        ]
    raise ValueError("graph too large for graph6")


def to_graph6(graph: Graph) -> str:
    """Encode as a graph6 string (without the optional >>graph6<< header)."""
    n = graph.n
    data = _encode_n(n)
    bits: List[int] = []
    for v in range(n):
        for u in range(v):
            bits.append(1 if graph.has_edge(u, v) else 0)
    while len(bits) % 6:
        bits.append(0)
    for i in range(0, len(bits), 6):
        value = 0
        for bit in bits[i : i + 6]:
            value = (value << 1) | bit
        data.append(value + 63)
    return "".join(chr(c) for c in data)


def from_graph6(text: str) -> Graph:
    """Decode a graph6 string (tolerates the >>graph6<< header)."""
    if text.startswith(">>graph6<<"):
        text = text[len(">>graph6<<") :]
    text = text.strip()
    codes = [ord(c) - 63 for c in text]
    if any(c < 0 or c > 63 for c in codes):
        raise ValueError("invalid graph6 character")
    if codes[0] != 63:
        n = codes[0]
        rest = codes[1:]
    elif len(codes) > 1 and codes[1] != 63:
        n = (codes[1] << 12) | (codes[2] << 6) | codes[3]
        rest = codes[4:]
    else:
        n = 0
        for c in codes[2:8]:
            n = (n << 6) | c
        rest = codes[8:]
    bits: List[int] = []
    for code in rest:
        for shift in range(5, -1, -1):
            bits.append((code >> shift) & 1)
    graph = Graph(n)
    index = 0
    for v in range(n):
        for u in range(v):
            if index < len(bits) and bits[index]:
                graph.add_edge(u, v)
            index += 1
    return graph


def to_edge_list(graph: Graph) -> str:
    """A plain-text dump: first line ``n m``, then one edge per line."""
    lines = [f"{graph.n} {graph.m}"]
    lines.extend(f"{u} {v}" for u, v in sorted(graph.edges()))
    return "\n".join(lines)


def from_edge_list(text: str) -> Graph:
    lines = [line for line in text.strip().splitlines() if line.strip()]
    n, m = (int(x) for x in lines[0].split())
    graph = Graph(n)
    for line in lines[1:]:
        u, v = (int(x) for x in line.split())
        graph.add_edge(u, v)
    if graph.m != m:
        raise ValueError(f"edge list declares {m} edges, found {graph.m}")
    return graph
