"""Degeneracy and elimination orderings (Matula–Beck bucket peeling).

The degeneracy of G is the smallest k such that every subgraph of G has a
vertex of degree at most k (Section 3.1 of the paper).  The peeling order
produced here is exactly the ordering used in Lemma 8's proof: vertex
``order[i]`` has at most ``k`` neighbours among ``order[i+1:]``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graphs.graph import Graph

__all__ = ["degeneracy", "degeneracy_ordering", "core_decomposition"]


def degeneracy_ordering(graph: Graph) -> Tuple[int, List[int]]:
    """Return ``(k, order)`` where ``k`` is the degeneracy and ``order`` is
    a peeling order certifying it (each vertex has <= k later neighbours).

    Runs in O(n + m) with a bucket queue.
    """
    n = graph.n
    if n == 0:
        return 0, []
    degree = [graph.degree(v) for v in range(n)]
    max_deg = max(degree)
    buckets: List[List[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[degree[v]].append(v)
    removed = [False] * n
    order: List[int] = []
    k = 0
    current = 0
    while len(order) < n:
        if current > max_deg:  # pragma: no cover - defensive
            raise AssertionError("bucket queue exhausted prematurely")
        if not buckets[current]:
            current += 1
            continue
        v = buckets[current].pop()
        if removed[v] or degree[v] != current:
            continue  # stale entry left behind by a degree decrement
        removed[v] = True
        k = max(k, current)
        order.append(v)
        for u in graph.neighbors(v):
            if not removed[u]:
                degree[u] -= 1
                buckets[degree[u]].append(u)
                if degree[u] < current:
                    current = degree[u]
    return k, order


def degeneracy(graph: Graph) -> int:
    """The degeneracy of ``graph``."""
    return degeneracy_ordering(graph)[0]


def core_decomposition(graph: Graph) -> List[int]:
    """Core number of every vertex (vertex v belongs to the c-core iff
    ``cores[v] >= c``); the maximum equals the degeneracy."""
    n = graph.n
    cores = [0] * n
    if n == 0:
        return cores
    degree = [graph.degree(v) for v in range(n)]
    removed = [False] * n
    order_sorted = sorted(range(n), key=lambda v: degree[v])
    import heapq

    heap = [(degree[v], v) for v in order_sorted]
    heapq.heapify(heap)
    current = 0
    seen = 0
    while heap and seen < n:
        deg, v = heapq.heappop(heap)
        if removed[v] or deg != degree[v]:
            continue
        removed[v] = True
        seen += 1
        current = max(current, deg)
        cores[v] = current
        for u in graph.neighbors(v):
            if not removed[u]:
                degree[u] -= 1
                heapq.heappush(heap, (degree[u], u))
    return cores
