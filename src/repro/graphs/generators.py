"""Graph generators used across the algorithms, tests and benchmarks."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.graphs.graph import Graph

__all__ = [
    "empty_graph",
    "complete_graph",
    "complete_bipartite",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "matching_graph",
    "turan_graph",
    "random_graph",
    "random_bipartite",
    "random_k_degenerate",
    "plant_subgraph",
]


def empty_graph(n: int) -> Graph:
    return Graph(n)


def complete_graph(n: int) -> Graph:
    graph = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def complete_bipartite(a: int, b: int) -> Graph:
    """K_{a,b} with side A = 0..a-1 and side B = a..a+b-1."""
    graph = Graph(a + b)
    for u in range(a):
        for v in range(a, a + b):
            graph.add_edge(u, v)
    return graph


def cycle_graph(length: int) -> Graph:
    if length < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    graph = Graph(length)
    for v in range(length):
        graph.add_edge(v, (v + 1) % length)
    return graph


def path_graph(n: int) -> Graph:
    graph = Graph(n)
    for v in range(n - 1):
        graph.add_edge(v, v + 1)
    return graph


def star_graph(leaves: int) -> Graph:
    """K_{1,leaves}: centre 0 joined to 1..leaves."""
    graph = Graph(leaves + 1)
    for v in range(1, leaves + 1):
        graph.add_edge(0, v)
    return graph


def matching_graph(pairs: int) -> Graph:
    """A perfect matching on 2*pairs vertices: {2i, 2i+1}."""
    graph = Graph(2 * pairs)
    for i in range(pairs):
        graph.add_edge(2 * i, 2 * i + 1)
    return graph


def turan_graph(n: int, parts: int) -> Graph:
    """The Turán graph T(n, r): complete r-partite with balanced parts —
    the unique extremal K_{r+1}-free graph."""
    if parts < 1:
        raise ValueError("need at least one part")
    assignment = [v % parts for v in range(n)]
    graph = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if assignment[u] != assignment[v]:
                graph.add_edge(u, v)
    return graph


def random_graph(n: int, p: float, rng: random.Random) -> Graph:
    """Erdős–Rényi G(n, p)."""
    graph = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def random_bipartite(a: int, b: int, p: float, rng: random.Random) -> Graph:
    graph = Graph(a + b)
    for u in range(a):
        for v in range(a, a + b):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def random_k_degenerate(n: int, k: int, rng: random.Random) -> Graph:
    """A random graph with degeneracy at most ``k``: vertices arrive one
    by one, each choosing up to ``k`` random back-neighbours."""
    graph = Graph(n)
    for v in range(1, n):
        back = min(k, v)
        for u in rng.sample(range(v), back):
            if rng.random() < 0.9:
                graph.add_edge(u, v)
    return graph


def plant_subgraph(
    graph: Graph,
    pattern: Graph,
    rng: random.Random,
    vertices: Optional[Sequence[int]] = None,
) -> List[Tuple[int, int]]:
    """Embed a copy of ``pattern`` into ``graph`` (mutating it) on random
    distinct vertices (or the given ones); returns the planted edges."""
    if vertices is None:
        vertices = rng.sample(range(graph.n), pattern.n)
    if len(vertices) != pattern.n:
        raise ValueError("need exactly one host vertex per pattern vertex")
    planted = []
    for u, v in pattern.edges():
        graph.add_edge(vertices[u], vertices[v])
        planted.append((vertices[u], vertices[v]))
    return planted
