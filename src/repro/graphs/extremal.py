"""Dense H-free graphs: the extremal constructions behind Section 3.

* :func:`polarity_graph` — the Erdős–Rényi polarity graph ER_q: C4-free
  with (1/2 + o(1))·n^{3/2} edges, the construction showing
  ex(n, C4) = Θ(n^{3/2}).  Used by Lemma 18 for ℓ = 4.
* :func:`incidence_graph` — the bipartite point–line incidence graph of
  the projective plane PG(2, q): girth 6 (hence C4-free), Θ(n^{3/2})
  edges.  This is the *bipartite* C4-free graph Observation 20 asks for,
  used by Lemma 21.
* :func:`cycle_free_graph` — the Erdős deletion method for even ℓ >= 6,
  where exact extremal graphs are unknown even to mathematics (documented
  substitution #3 in DESIGN.md): sample at the Bondy–Simonovits density
  and delete one edge from every surviving copy of C_ℓ; the result is
  certified C_ℓ-free by exhaustive search.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.graphs.graph import Graph
from repro.graphs.generators import complete_bipartite, random_graph
from repro.graphs.subgraph_iso import find_embedding
from repro.graphs.generators import cycle_graph

__all__ = [
    "is_prime",
    "next_prime",
    "projective_points",
    "polarity_graph",
    "incidence_graph",
    "cycle_free_graph",
    "dense_c4_free_bipartite",
    "dense_cycle_free_graph",
]


def is_prime(q: int) -> bool:
    if q < 2:
        return False
    if q % 2 == 0:
        return q == 2
    f = 3
    while f * f <= q:
        if q % f == 0:
            return False
        f += 2
    return True


def next_prime(q: int) -> int:
    candidate = max(2, q)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def projective_points(q: int) -> List[Tuple[int, int, int]]:
    """The q² + q + 1 points of PG(2, q), normalised so the first nonzero
    coordinate equals 1."""
    points = [(1, y, z) for y in range(q) for z in range(q)]
    points.extend((0, 1, z) for z in range(q))
    points.append((0, 0, 1))
    return points


def _dot(a: Tuple[int, int, int], b: Tuple[int, int, int], q: int) -> int:
    return (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]) % q


def polarity_graph(q: int) -> Graph:
    """The Erdős–Rényi polarity graph ER_q for prime q.

    Vertices are the points of PG(2, q); x ~ y iff x·y = 0 (mod q) and
    x != y.  The graph is C4-free with q²+q+1 vertices and
    (1/2)q(q+1)² - O(q) edges.
    """
    if not is_prime(q):
        raise ValueError("polarity graph needs a prime order q")
    points = projective_points(q)
    graph = Graph(len(points))
    for i, p in enumerate(points):
        for j in range(i + 1, len(points)):
            if _dot(p, points[j], q) == 0:
                graph.add_edge(i, j)
    return graph


def incidence_graph(q: int) -> Graph:
    """The bipartite point–line incidence graph of PG(2, q) for prime q.

    Side A (vertices 0..q²+q) are points; side B are lines (represented
    by dual coordinates).  Point p lies on line L iff p·L = 0.  The graph
    has girth 6, so it is C4-free, with (q+1)(q²+q+1) edges on
    2(q²+q+1) vertices — matching Observation 20's bipartite C4-free
    graph with >= ex(N, C4)/2 edges.
    """
    if not is_prime(q):
        raise ValueError("incidence graph needs a prime order q")
    points = projective_points(q)
    count = len(points)
    graph = Graph(2 * count)
    for i, p in enumerate(points):
        for j, line in enumerate(points):
            if _dot(p, line, q) == 0:
                graph.add_edge(i, count + j)
    return graph


def cycle_free_graph(
    n: int,
    length: int,
    rng: Optional[random.Random] = None,
    density_factor: float = 0.25,
) -> Graph:
    """A reasonably dense certified C_ℓ-free graph on ``n`` vertices via
    the Erdős deletion method (for even ℓ; odd ℓ callers should use
    complete bipartite graphs, which have no odd cycles at all)."""
    if rng is None:
        rng = random.Random(0)
    if length % 2 == 1:
        half = n // 2
        return complete_bipartite(half, n - half)
    k = length // 2
    target_edges = density_factor * n ** (1.0 + 1.0 / k)
    p = min(1.0, 2.0 * target_edges / max(1, n * (n - 1) // 2))
    graph = random_graph(n, p, rng)
    pattern = cycle_graph(length)
    while True:
        embedding = find_embedding(graph, pattern)
        if embedding is None:
            return graph
        cycle_edges = [
            (embedding[u], embedding[v]) for u, v in pattern.edges()
        ]
        u, v = rng.choice(cycle_edges)
        graph.remove_edge(u, v)


def dense_c4_free_bipartite(min_n: int) -> Tuple[Graph, int]:
    """The smallest incidence graph with at least ``min_n`` vertices;
    returns (graph, points_per_side)."""
    q = 2
    while 2 * (q * q + q + 1) < min_n:
        q = next_prime(q + 1)
    graph = incidence_graph(q)
    return graph, q * q + q + 1


def dense_cycle_free_graph(n: int, length: int, rng: Optional[random.Random] = None) -> Graph:
    """Dispatcher used by Lemma 18: the densest C_ℓ-free graph we can
    build on n vertices.

    * odd ℓ   -> K_{⌊n/2⌋,⌈n/2⌉} (extremal, per the paper),
    * ℓ = 4   -> polarity graph trimmed/padded to n vertices,
    * even ℓ >= 6 -> deletion-method graph.
    """
    if length % 2 == 1:
        half = n // 2
        return complete_bipartite(half, n - half)
    if length == 4:
        q = 2
        while True:
            nq = next_prime(q + 1)
            if nq * nq + nq + 1 > n:
                break
            q = nq
        base = polarity_graph(q)
        if base.n >= n:
            sub, _ = base.induced_subgraph(list(range(n)))
            return sub
        padded = Graph(n)
        for u, v in base.edges():
            padded.add_edge(u, v)
        return padded
    return cycle_free_graph(n, length, rng)
