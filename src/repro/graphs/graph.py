"""A small, fast undirected simple-graph type.

The library deliberately implements its own graph substrate (adjacency
sets over vertices ``0..n-1``) rather than depending on networkx; the
test suite uses networkx only as an oracle.  Everything the paper's
algorithms need is here: neighbourhood queries, induced subgraphs,
adjacency matrices, disjoint unions and relabelling.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

__all__ = ["Graph", "Edge", "canonical_edge"]

Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """The (min, max) representation used for undirected edges."""
    return (u, v) if u < v else (v, u)


class Graph:
    """Undirected simple graph on the fixed vertex set ``0..n-1``."""

    __slots__ = ("_n", "_adj", "_m", "_adj_matrix")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        self._n = n
        self._adj: List[Set[int]] = [set() for _ in range(n)]
        self._m = 0
        self._adj_matrix = None  # memoized adjacency_matrix (read-only)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Edge]) -> "Graph":
        graph = cls(n)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def add_edge(self, u: int, v: int) -> None:
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop at vertex {u} not allowed")
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._m += 1
            self._adj_matrix = None

    def remove_edge(self, u: int, v: int) -> None:
        if v in self._adj[u]:
            self._adj[u].discard(v)
            self._adj[v].discard(u)
            self._m -= 1
            self._adj_matrix = None

    def copy(self) -> "Graph":
        clone = Graph(self._n)
        clone._adj = [set(nbrs) for nbrs in self._adj]
        clone._m = self._m
        # The memoized matrix is immutable, so sharing it is safe: a
        # later mutation of either graph just clears that graph's slot.
        clone._adj_matrix = self._adj_matrix
        return clone

    # -- queries ----------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def m(self) -> int:
        return self._m

    def has_edge(self, u: int, v: int) -> bool:
        return 0 <= u < self._n and v in self._adj[u]

    def neighbors(self, v: int) -> Set[int]:
        """The neighbour set of ``v`` (a live view; do not mutate)."""
        self._check_vertex(v)
        return self._adj[v]

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._adj[v])

    def vertices(self) -> range:
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def edge_set(self) -> Set[Edge]:
        return set(self.edges())

    def max_degree(self) -> int:
        return max((len(nbrs) for nbrs in self._adj), default=0)

    def is_independent_set(self, vertices: Iterable[int]) -> bool:
        vs = list(vertices)
        return not any(
            self.has_edge(u, v) for i, u in enumerate(vs) for v in vs[i + 1 :]
        )

    # -- derived graphs ----------------------------------------------------

    def induced_subgraph(self, vertices: Sequence[int]) -> Tuple["Graph", Dict[int, int]]:
        """The subgraph induced by ``vertices``; also returns the map from
        new vertex ids (0..len-1) to the original ids."""
        order = list(vertices)
        index = {old: new for new, old in enumerate(order)}
        if len(index) != len(order):
            raise ValueError("duplicate vertices in induced_subgraph")
        sub = Graph(len(order))
        for old_u in order:
            for old_v in self._adj[old_u]:
                if old_v in index and old_u < old_v:
                    sub.add_edge(index[old_u], index[old_v])
        return sub, dict(enumerate(order))

    def relabel(self, mapping: Dict[int, int], n: int) -> "Graph":
        """A copy of this graph with vertex ``v`` renamed ``mapping[v]``,
        embedded in a graph on ``n`` vertices."""
        out = Graph(n)
        for u, v in self.edges():
            out.add_edge(mapping[u], mapping[v])
        return out

    @staticmethod
    def disjoint_union(first: "Graph", second: "Graph") -> "Graph":
        out = Graph(first.n + second.n)
        for u, v in first.edges():
            out.add_edge(u, v)
        for u, v in second.edges():
            out.add_edge(first.n + u, first.n + v)
        return out

    def adjacency_matrix(self):
        """Adjacency matrix as a **read-only** numpy uint8 array (import
        deferred so the core library stays numpy-free unless you ask for
        matrices).

        The matrix is memoized — repeated calls (matmul-based detection
        sweeps, batched protocol runs) return the same array without
        rebuilding — and invalidated whenever an edge is added or
        removed.  Callers that need a mutable copy must ``.copy()`` it.

        Both triangles of the matrix are filled with two fancy-indexed
        writes over a flat edge array rather than a per-edge Python
        loop."""
        cached = self._adj_matrix
        if cached is not None:
            return cached
        import numpy as np

        mat = np.zeros((self._n, self._n), dtype=np.uint8)
        if self._m:
            flat = np.fromiter(
                (x for edge in self.edges() for x in edge),
                dtype=np.intp,
                count=2 * self._m,
            )
            us = flat[0::2]
            vs = flat[1::2]
            mat[us, vs] = 1
            mat[vs, us] = 1
        mat.flags.writeable = False
        self._adj_matrix = mat
        return mat

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Graph)
            and self._n == other._n
            and self._adj == other._adj
        )

    def __hash__(self) -> int:  # graphs are mutable; identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise ValueError(f"vertex {v} out of range [0, {self._n})")
