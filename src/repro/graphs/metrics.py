"""Graph metrics: distances, diameter, girth, clustering.

Used by the CONGEST algorithms (round counts are diameter-shaped), the
extremal constructions (girth certifies C4-freeness of the incidence
graphs), and generally useful to adopters of the graph substrate.
"""

from __future__ import annotations

import collections
from typing import Dict, Optional

from repro.graphs.graph import Graph

__all__ = [
    "bfs_distances",
    "eccentricity",
    "diameter",
    "is_connected",
    "girth",
    "local_clustering",
    "average_clustering",
]


def bfs_distances(graph: Graph, source: int) -> Dict[int, int]:
    """Hop distances from ``source`` to every reachable vertex."""
    dist = {source: 0}
    queue = collections.deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def eccentricity(graph: Graph, source: int) -> Optional[int]:
    """Max distance from ``source``; None if the graph is disconnected."""
    dist = bfs_distances(graph, source)
    if len(dist) != graph.n:
        return None
    return max(dist.values(), default=0)


def is_connected(graph: Graph) -> bool:
    if graph.n == 0:
        return True
    return len(bfs_distances(graph, 0)) == graph.n


def diameter(graph: Graph) -> Optional[int]:
    """Exact diameter by all-sources BFS; None if disconnected."""
    best = 0
    for v in graph.vertices():
        ecc = eccentricity(graph, v)
        if ecc is None:
            return None
        best = max(best, ecc)
    return best


def girth(graph: Graph) -> Optional[int]:
    """Length of a shortest cycle, or None for forests.

    Per-source BFS: a non-tree edge closing two BFS branches at depths
    d(u), d(v) witnesses a cycle of length d(u)+d(v)+1; scanning all
    sources yields the exact girth.
    """
    best: Optional[int] = None
    for source in graph.vertices():
        dist = {source: 0}
        parent = {source: -1}
        queue = collections.deque([source])
        while queue:
            v = queue.popleft()
            if best is not None and dist[v] * 2 >= best:
                continue
            for u in graph.neighbors(v):
                if u not in dist:
                    dist[u] = dist[v] + 1
                    parent[u] = v
                    queue.append(u)
                elif parent[v] != u:
                    cycle = dist[v] + dist[u] + 1
                    if best is None or cycle < best:
                        best = cycle
    return best


def local_clustering(graph: Graph, v: int) -> float:
    """Fraction of neighbour pairs of ``v`` that are themselves joined."""
    neighbours = list(graph.neighbors(v))
    k = len(neighbours)
    if k < 2:
        return 0.0
    links = sum(
        1
        for i, a in enumerate(neighbours)
        for b in neighbours[i + 1 :]
        if graph.has_edge(a, b)
    )
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: Graph) -> float:
    if graph.n == 0:
        return 0.0
    return sum(local_clustering(graph, v) for v in graph.vertices()) / graph.n
