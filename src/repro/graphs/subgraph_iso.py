"""Subgraph-containment search (non-induced subgraph isomorphism).

The H-subgraph detection problem of Section 3 asks whether the input
graph G contains a subgraph isomorphic to a fixed pattern H — a
*non-induced* embedding (an injective homomorphism).  The detection
algorithms run this search locally after reconstructing G, and the
lower-bound machinery uses exhaustive copy enumeration to verify the
conditions of Definition 10.

The search is plain backtracking with degree pruning and a
most-constrained-first variable order; H is constant-sized throughout
the paper, so this is plenty fast for the instance sizes we simulate.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.graphs.graph import Edge, Graph, canonical_edge

__all__ = [
    "find_embedding",
    "contains_subgraph",
    "iter_embeddings",
    "enumerate_copies",
    "count_copies",
    "find_clique",
]


def _search_order(pattern: Graph) -> List[int]:
    """Order pattern vertices so each (after the first of its component)
    has a previously placed neighbour, starting from high degree."""
    remaining = set(pattern.vertices())
    order: List[int] = []
    placed: Set[int] = set()
    while remaining:
        anchored = [v for v in remaining if pattern.neighbors(v) & placed]
        if anchored:
            nxt = max(
                anchored,
                key=lambda v: (len(pattern.neighbors(v) & placed), pattern.degree(v)),
            )
        else:
            nxt = max(remaining, key=pattern.degree)
        order.append(nxt)
        placed.add(nxt)
        remaining.discard(nxt)
    return order


def iter_embeddings(host: Graph, pattern: Graph) -> Iterator[Dict[int, int]]:
    """Yield every injective homomorphism ``pattern -> host`` as a dict
    mapping pattern vertices to host vertices.

    Distinct automorphic images of the same copy are yielded separately;
    use :func:`enumerate_copies` for deduplicated copies.
    """
    if pattern.n == 0:
        yield {}
        return
    if pattern.n > host.n:
        return
    order = _search_order(pattern)
    degrees = [pattern.degree(v) for v in pattern.vertices()]
    assignment: Dict[int, int] = {}
    used: Set[int] = set()

    def candidates(h: int) -> Iterator[int]:
        anchors = [assignment[u] for u in pattern.neighbors(h) if u in assignment]
        if anchors:
            pool = set(host.neighbors(anchors[0]))
            for a in anchors[1:]:
                pool &= host.neighbors(a)
            for g in sorted(pool):
                if g not in used and host.degree(g) >= degrees[h]:
                    yield g
        else:
            for g in host.vertices():
                if g not in used and host.degree(g) >= degrees[h]:
                    yield g

    def backtrack(depth: int) -> Iterator[Dict[int, int]]:
        if depth == len(order):
            yield dict(assignment)
            return
        h = order[depth]
        for g in candidates(h):
            assignment[h] = g
            used.add(g)
            yield from backtrack(depth + 1)
            del assignment[h]
            used.discard(g)

    yield from backtrack(0)


def find_embedding(host: Graph, pattern: Graph) -> Optional[Dict[int, int]]:
    """The first embedding found, or ``None`` if the host is pattern-free."""
    for embedding in iter_embeddings(host, pattern):
        return embedding
    return None


def contains_subgraph(host: Graph, pattern: Graph) -> bool:
    return find_embedding(host, pattern) is not None


def enumerate_copies(
    host: Graph,
    pattern: Graph,
    limit: Optional[int] = None,
) -> Set[FrozenSet[Edge]]:
    """All distinct copies of ``pattern`` in ``host``, each represented by
    the frozenset of host edges it uses (deduplicating automorphisms).

    ``limit`` bounds the number of *distinct copies* collected.
    """
    copies: Set[FrozenSet[Edge]] = set()
    for embedding in iter_embeddings(host, pattern):
        edges = frozenset(
            canonical_edge(embedding[u], embedding[v]) for u, v in pattern.edges()
        )
        copies.add(edges)
        if limit is not None and len(copies) >= limit:
            break
    return copies


def count_copies(host: Graph, pattern: Graph) -> int:
    """Number of distinct copies (by edge set) of ``pattern`` in ``host``."""
    return len(enumerate_copies(host, pattern))


def find_clique(host: Graph, size: int) -> Optional[Tuple[int, ...]]:
    """Fast path: find a clique of the given size, or None.

    Simple pivoting backtracking over common-neighbour sets; much faster
    than the generic embedding search for cliques.
    """
    if size == 0:
        return ()
    vertices_by_degree = sorted(host.vertices(), key=host.degree, reverse=True)

    def extend(clique: List[int], pool: Set[int]) -> Optional[Tuple[int, ...]]:
        if len(clique) == size:
            return tuple(clique)
        if len(clique) + len(pool) < size:
            return None
        for v in sorted(pool):
            result = extend(clique + [v], pool & host.neighbors(v))
            if result is not None:
                return result
        return None

    for v in vertices_by_degree:
        if host.degree(v) < size - 1:
            continue
        result = extend([v], {u for u in host.neighbors(v) if u > v})
        if result is not None:
            return result
    return None
