"""Turán numbers ex(n, H): exact values and safe upper bounds.

Definition 5 of the paper: ex(n, H) is the maximum number of edges of an
n-vertex graph containing no copy of H.  Theorem 7's algorithm needs an
*upper bound* on ex(n, H) (to size the degeneracy guess 4·ex(n,H)/n), so
every function here is guaranteed to return a value >= the true Turán
number.  Where exact values are classical (cliques, odd cycles, forests)
we return those.

Values used by the paper:
* odd cycles / non-bipartite H: ex = Θ(n²),
* C4: ex = Θ(n^{3/2})  (Kővári–Sós–Turán / Erdős–Rényi polarity graphs),
* C_{2ℓ}: ex = O(n^{1+1/ℓ})  (Bondy–Simonovits),
* K_{r,s}: ex = O(n^{2-1/r})  (Kővári–Sós–Turán),
* forests on k vertices: ex <= (k-2)·n.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.graphs.graph import Graph
from repro.graphs import properties as _props

__all__ = [
    "turan_graph_edges",
    "ex_clique",
    "ex_odd_cycle",
    "ex_c4",
    "ex_even_cycle_upper",
    "ex_cycle_upper",
    "ex_complete_bipartite_upper",
    "ex_forest_upper",
    "ex_upper",
]


def turan_graph_edges(n: int, parts: int) -> int:
    """Exact number of edges of the Turán graph T(n, parts)."""
    if parts < 1:
        raise ValueError("need at least one part")
    size, extra = divmod(n, parts)
    # ``extra`` parts of size size+1, the rest of size ``size``.
    total_pairs = n * (n - 1) // 2
    internal = extra * (size + 1) * size // 2 + (parts - extra) * size * (size - 1) // 2
    return total_pairs - internal


def ex_clique(n: int, clique_size: int) -> int:
    """Turán's theorem, exact: ex(n, K_ℓ) = e(T(n, ℓ-1))."""
    if clique_size < 2:
        raise ValueError("clique size must be at least 2")
    if clique_size == 2:
        return 0
    return turan_graph_edges(n, clique_size - 1)


def ex_odd_cycle(n: int, length: int) -> int:
    """ex(n, C_{2k+1}) = ⌊n²/4⌋ for n >= 4k+2 (Bondy); we return ⌊n²/4⌋,
    a valid upper bound for all n >= 3 since the extremal graph is
    bipartite (K_{⌊n/2⌋,⌈n/2⌉} has no odd cycles at all)."""
    if length % 2 == 0 or length < 3:
        raise ValueError("length must be an odd integer >= 3")
    return max(n * n // 4, n - 1)


def ex_c4(n: int) -> int:
    """Upper bound ex(n, C4) <= (1/4)(1 + sqrt(4n-3))·n (Kővári–Sós–Turán
    with Reiman's sharpening), tight up to the constant."""
    if n < 1:
        return 0
    return int(math.floor(0.25 * n * (1.0 + math.sqrt(4.0 * n - 3.0))))


def ex_even_cycle_upper(n: int, length: int) -> int:
    """Bondy–Simonovits: ex(n, C_{2k}) <= 100·k·n^{1+1/k}.

    For k = 2 we use the sharp C4 bound instead; for k = 3 the sharper
    published coefficient ex(n, C6) <= 0.6272·n^{4/3} + O(n) is used
    (Füredi–Naor–Verstraëte), padded with a +n safety term.
    """
    if length % 2 != 0 or length < 4:
        raise ValueError("length must be an even integer >= 4")
    k = length // 2
    if k == 2:
        return ex_c4(n)
    if k == 3:
        return int(math.ceil(0.6272 * n ** (4.0 / 3.0) + n))
    return int(math.ceil(100.0 * k * n ** (1.0 + 1.0 / k)))


def ex_cycle_upper(n: int, length: int) -> int:
    if length % 2 == 1:
        return ex_odd_cycle(n, length)
    return ex_even_cycle_upper(n, length)


def ex_complete_bipartite_upper(n: int, r: int, s: int) -> int:
    """Kővári–Sós–Turán: for r <= s,
    ex(n, K_{r,s}) <= 1/2·((s-1)^{1/r}·(n-r+1)·n^{1-1/r} + (r-1)·n)."""
    if r > s:
        r, s = s, r
    if r < 1:
        raise ValueError("sides must be positive")
    if r == 1:
        # K_{1,s} is a star: a graph with max degree < s has <= n(s-1)/2
        # edges, and that is exact up to rounding.
        return n * (s - 1) // 2 + n
    bound = 0.5 * ((s - 1.0) ** (1.0 / r) * (n - r + 1.0) * n ** (1.0 - 1.0 / r) + (r - 1.0) * n)
    return int(math.ceil(bound))


def ex_forest_upper(n: int, pattern_vertices: int) -> int:
    """Any graph with more than (k-2)·n edges has a subgraph of minimum
    degree >= k-1 and hence contains every tree (indeed forest) on k
    vertices; so ex(n, forest on k vertices) <= (k-2)·n."""
    return max(0, (pattern_vertices - 2)) * n


def ex_upper(n: int, pattern: Graph) -> int:
    """A certified upper bound on ex(n, H) for an arbitrary pattern H,
    dispatching on the structure of H:

    * clique        -> exact Turán number,
    * cycle         -> odd exact-order / Bondy–Simonovits,
    * forest        -> (k-2)·n,
    * K_{r,s}       -> Kővári–Sós–Turán,
    * other bipartite H (with parts of sizes r <= s) -> KST bound for
      K_{r,s} ⊇ H,
    * non-bipartite -> ⌊n²/2⌋ padded Erdős–Stone-style bound using the
      clique number is not safe without the o(n²) constant, so we fall
      back on the trivial (and for χ(H) >= 3 asymptotically inevitable)
      Θ(n²) bound via the chromatic lower envelope.
    """
    if pattern.m == 0:
        return 0
    if _props.is_clique(pattern):
        return ex_clique(n, pattern.n)
    cycle_len = _props.cycle_length(pattern)
    if cycle_len is not None:
        return ex_cycle_upper(n, cycle_len)
    if _props.is_forest(pattern):
        return ex_forest_upper(n, pattern.n)
    sides = _props.bipartition(pattern)
    if sides is not None:
        r, s = sorted((len(sides[0]), len(sides[1])))
        return ex_complete_bipartite_upper(n, r, s)
    # Non-bipartite: Turán-type bound keyed to the chromatic number is
    # (1 - 1/(χ-1))·n²/2 + o(n²); without explicit o(n²) constants the
    # only *certified* upper bound is the trivial one.
    return n * (n - 1) // 2


# Re-exported here for convenience of callers sizing Theorem 7's guess.
def degeneracy_guess(n: int, pattern: Graph, ex_bound: Optional[int] = None) -> int:
    """Claim 6: an H-free graph on n vertices has degeneracy at most
    4·ex(n,H)/n.  Returns that guess (at least 1)."""
    bound = ex_upper(n, pattern) if ex_bound is None else ex_bound
    return max(1, -(-4 * bound // max(1, n)))
