"""Structural predicates on small pattern graphs.

These drive the ex(n, H) dispatcher in :mod:`repro.graphs.turan` and a
few case splits in the lower-bound constructions.  Patterns are constant
sized, so exhaustive methods (e.g. chromatic number by branching) are
fine.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.graphs.graph import Graph

__all__ = [
    "is_clique",
    "is_forest",
    "cycle_length",
    "bipartition",
    "is_bipartite",
    "complete_bipartite_sides",
    "connected_components",
    "chromatic_number",
]


def connected_components(graph: Graph) -> List[List[int]]:
    seen = [False] * graph.n
    components = []
    for root in graph.vertices():
        if seen[root]:
            continue
        stack = [root]
        seen[root] = True
        component = []
        while stack:
            v = stack.pop()
            component.append(v)
            for u in graph.neighbors(v):
                if not seen[u]:
                    seen[u] = True
                    stack.append(u)
        components.append(sorted(component))
    return components


def is_clique(graph: Graph) -> bool:
    n = graph.n
    return n >= 1 and graph.m == n * (n - 1) // 2


def is_forest(graph: Graph) -> bool:
    components = connected_components(graph)
    return graph.m == graph.n - len(components)


def cycle_length(graph: Graph) -> Optional[int]:
    """If the graph is exactly one cycle (plus isolated vertices), its
    length; otherwise None."""
    cycle_vertices = [v for v in graph.vertices() if graph.degree(v) > 0]
    if len(cycle_vertices) < 3:
        return None
    if any(graph.degree(v) != 2 for v in cycle_vertices):
        return None
    if graph.m != len(cycle_vertices):
        return None
    components = [c for c in connected_components(graph) if len(c) > 1]
    if len(components) != 1:
        return None
    return len(cycle_vertices)


def bipartition(graph: Graph) -> Optional[Tuple[Set[int], Set[int]]]:
    """A 2-colouring (ignoring isolated vertices placed on side 0), or
    None if the graph is not bipartite."""
    colour = [-1] * graph.n
    for root in graph.vertices():
        if colour[root] != -1:
            continue
        colour[root] = 0
        stack = [root]
        while stack:
            v = stack.pop()
            for u in graph.neighbors(v):
                if colour[u] == -1:
                    colour[u] = 1 - colour[v]
                    stack.append(u)
                elif colour[u] == colour[v]:
                    return None
    side0 = {v for v in graph.vertices() if colour[v] == 0}
    side1 = {v for v in graph.vertices() if colour[v] == 1}
    return side0, side1


def is_bipartite(graph: Graph) -> bool:
    return bipartition(graph) is not None


def complete_bipartite_sides(graph: Graph) -> Optional[Tuple[int, int]]:
    """If the graph is K_{r,s} (plus possibly isolated vertices), return
    (r, s) with r <= s; otherwise None."""
    active = [v for v in graph.vertices() if graph.degree(v) > 0]
    if not active:
        return None
    sub, _ = graph.induced_subgraph(active)
    sides = bipartition(sub)
    if sides is None:
        return None
    a, b = sides
    if sub.m != len(a) * len(b):
        return None
    return tuple(sorted((len(a), len(b))))  # type: ignore[return-value]


def chromatic_number(graph: Graph) -> int:
    """Exact chromatic number by iterative-deepening backtracking; meant
    for constant-sized patterns only."""
    if graph.n == 0:
        return 0
    if graph.m == 0:
        return 1
    if bipartition(graph) is not None:
        return 2
    order = sorted(graph.vertices(), key=graph.degree, reverse=True)

    def colourable(k: int) -> bool:
        colours = {}

        def assign(idx: int) -> bool:
            if idx == len(order):
                return True
            v = order[idx]
            used = {colours[u] for u in graph.neighbors(v) if u in colours}
            for c in range(k):
                if c not in used:
                    colours[v] = c
                    if assign(idx + 1):
                        return True
                    del colours[v]
                if c not in used and c == max(colours.values(), default=-1) + 1:
                    break  # symmetry: first use of a fresh colour suffices
            return False

        return assign(0)

    k = 3
    while not colourable(k):
        k += 1
    return k
