"""Shamir's randomized reduction: Boolean products via F2 products.

Section 2.1 reduces triangle detection to matrix multiplication over F2
via "a simple randomized reduction due to Adi Shamir (described in [45,
Thm. 4.1])": the Boolean product entry OR_k a_ik·b_kj is nonzero iff a
random F2 combination Σ_k a_ik·r_k·b_kj is nonzero with probability
>= 1/2.  For triangles: with mask vector r,

    D_r = (A · diag(r)) · A   over F2,

any entry with A_ij = 1 and D_r[i,j] = 1 witnesses a path i–k–j plus the
edge {i,j}, i.e. a triangle — with no false positives (an F2-nonzero sum
needs at least one Boolean witness).  t independent masks detect an
existing triangle with probability >= 1 − 2^{−t}.

This module is the centralised reference; the distributed version runs
the same masked products through the Theorem 2 circuit simulation.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.matmul.boolean import adjacency, f2_matmul

__all__ = ["masked_product", "masked_triangle_witnesses", "detect_triangle_masked"]


def masked_product(a: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """D_r = (A·diag(r))·A over F2."""
    return f2_matmul(a * mask[np.newaxis, :], a)


def masked_triangle_witnesses(
    a: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Entries (i, j) such that A_ij = 1 and D_r[i,j] = 1."""
    return (masked_product(a, mask) * a).astype(np.int64)


def detect_triangle_masked(
    graph: Graph, trials: int, rng: random.Random
) -> Tuple[bool, Optional[Tuple[int, int]]]:
    """Run ``trials`` independent masks; returns (found, witness edge).

    One-sided error: "found" is always correct; "not found" errs with
    probability at most 2^{-trials} per existing triangle entry.
    """
    a = adjacency(graph)
    n = graph.n
    for _ in range(trials):
        mask = np.array([rng.randint(0, 1) for _ in range(n)], dtype=np.int64)
        witnesses = masked_triangle_witnesses(a, mask)
        hits = np.argwhere(witnesses > 0)
        if hits.size:
            i, j = map(int, hits[0])
            return True, (min(i, j), max(i, j))
    return False, None
