"""Distributed F2 matrix multiplication as a public operator API.

Remark 3 of the paper: the Theorem 2 simulation extends to *operators*
(multi-bit outputs) by partitioning the outputs among the players and
routing each output gate's value to its designated player.  This module
packages that pipeline as a one-call API:

    rows_of_c = distributed_matmul(a_rows, b_rows, ...)

Player i contributes row i of A and row i of B, and ends up holding row
i of C = A·B over F2 — the exact input/output convention of
Section 2.1's triangle-detection application.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.circuits.arithmetic import (
    matmul_circuit_naive,
    matmul_circuit_strassen,
)
from repro.core.network import Mode, Network, RunResult
from repro.matmul.distributed import matmul_input_partition
from repro.simulation.protocol import (
    SimulationPlan,
    build_output_routing,
    build_plan,
    execute_plan,
    redistribute_outputs,
)

__all__ = ["matmul_plan", "distributed_matmul"]


def matmul_plan(
    size: int,
    circuit_kind: str = "naive",
    bandwidth: Optional[int] = None,
) -> Tuple[SimulationPlan, "OutputRouting"]:
    """Build (and cache at the caller's discretion) the simulation plan
    plus the Remark 3 routing that parks C's row i at player i."""
    builder: Callable[[int], object] = (
        matmul_circuit_strassen if circuit_kind == "strassen" else matmul_circuit_naive
    )
    circuit = builder(size)
    plan = build_plan(circuit, size, matmul_input_partition(size), bandwidth)
    targets = {
        gid: position // size
        for position, gid in enumerate(circuit.outputs)
    }
    routing = build_output_routing(plan, targets)
    return plan, routing


def distributed_matmul(
    a_rows: Sequence[Sequence[int]],
    b_rows: Sequence[Sequence[int]],
    circuit_kind: str = "naive",
    bandwidth: Optional[int] = None,
    seed: int = 0,
    plan_and_routing=None,
) -> Tuple[List[List[int]], RunResult]:
    """Compute C = A·B over F2 on CLIQUE-UCAST; returns (C rows, result).

    ``a_rows[i]``/``b_rows[i]`` live at player i before the protocol and
    ``C[i]`` lives at player i afterwards (assembled here for
    convenience).
    """
    size = len(a_rows)
    if any(len(row) != size for row in a_rows) or len(b_rows) != size:
        raise ValueError("need two square matrices of matching size")
    if plan_and_routing is None:
        plan, routing = matmul_plan(size, circuit_kind, bandwidth)
    else:
        plan, routing = plan_and_routing
    circuit = plan.circuit
    input_ids = circuit.input_ids
    position_of = {gid: pos for pos, gid in enumerate(circuit.outputs)}

    def program(ctx):
        me = ctx.node_id
        my_inputs = {}
        for j in range(size):
            my_inputs[input_ids[me * size + j]] = bool(a_rows[me][j])
            my_inputs[input_ids[size * size + me * size + j]] = bool(
                b_rows[me][j]
            )
        values = yield from execute_plan(ctx, plan, my_inputs)
        mine = yield from redistribute_outputs(ctx, plan, routing, values)
        row = [0] * size
        for gid, value in mine.items():
            row[position_of[gid] % size] = 1 if value else 0
        return row

    network = Network(
        n=size, bandwidth=plan.bandwidth, mode=Mode.UNICAST, seed=seed
    )
    result = network.run(program)
    return list(result.outputs), result
