"""Deterministic triangle detection à la Dolev–Lenzen–Peled [8].

The paper repeatedly benchmarks against [8]'s triangle algorithm, so we
implement its deterministic core as a baseline: partition the vertices
into g ≈ n^{1/3} groups, assign each of the ~g³/6 group-*multisets*
{a,b,c} to a player, ship the three bipartite adjacency blocks to that
player (Θ((n/g)²) bits each), and let it search its block triple
locally.  Every triangle lives in exactly one group multiset, so
coverage is exhaustive and the algorithm is deterministic.

Per-player traffic is Θ(n^{4/3}) bits, received over n links of
bandwidth b — Θ(n^{1/3}·⌈log n per frame⌉/b) rounds, reproducing the
Õ(n^{1/3}) headline of [8] (the T-triangles speedup of [8] is
randomized and out of scope; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bits import Bits
from repro.core.network import Mode, Network, RunResult
from repro.core.phases import transmit_unicast
from repro.graphs.graph import Graph
from repro.routing.lenzen import payload_demand, route_payloads
from repro.routing.schedule import build_schedule

__all__ = [
    "DLPOutcome",
    "dlp_plan",
    "detect_triangle_dlp",
    "count_triangles_dlp",
]


@dataclass(frozen=True)
class DLPOutcome:
    found: bool
    witness: Optional[Tuple[int, int, int]]
    group_count: int


def _groups(n: int, g: int) -> List[range]:
    base, extra = divmod(n, g)
    out = []
    start = 0
    for i in range(g):
        size = base + (1 if i < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


@dataclass
class _Plan:
    n: int
    g: int
    groups: List[range]
    group_of: List[int]
    triples: List[Tuple[int, int, int]]
    owner_of_triple: List[int]
    # pairs (a, b) with a <= b needed by player p
    pairs_by_owner: Dict[int, List[Tuple[int, int]]]
    # (v, p) -> ordered pairs for which v ships its slice to p
    send_pairs: Dict[Tuple[int, int], List[Tuple[int, int]]]
    lengths: Dict[Tuple[int, int], int]


def dlp_plan(n: int, group_count: Optional[int] = None) -> _Plan:
    g = group_count or max(1, round(n ** (1.0 / 3.0)))
    g = min(g, n)
    groups = _groups(n, g)
    group_of = [0] * n
    for gi, rng in enumerate(groups):
        for v in rng:
            group_of[v] = gi
    triples = [
        (a, b, c)
        for a in range(g)
        for b in range(a, g)
        for c in range(b, g)
    ]
    owner_of_triple = [t % n for t in range(len(triples))]
    pairs_by_owner: Dict[int, set] = {}
    for t, (a, b, c) in enumerate(triples):
        p = owner_of_triple[t]
        pairs = pairs_by_owner.setdefault(p, set())
        pairs.add((a, b))
        pairs.add((a, c))
        pairs.add((b, c))
    pairs_sorted = {p: sorted(pairs) for p, pairs in pairs_by_owner.items()}
    send_pairs: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    lengths: Dict[Tuple[int, int], int] = {}
    for p, pairs in pairs_sorted.items():
        for a, b in pairs:
            for v in groups[a]:
                if v == p:
                    continue
                key = (v, p)
                send_pairs.setdefault(key, []).append((a, b))
                lengths[key] = lengths.get(key, 0) + len(groups[b])
    return _Plan(
        n=n,
        g=g,
        groups=groups,
        group_of=group_of,
        triples=triples,
        owner_of_triple=owner_of_triple,
        pairs_by_owner=pairs_sorted,
        send_pairs=send_pairs,
        lengths=lengths,
    )


def _slice_bits(row: List[int], members: range) -> Bits:
    return Bits.from_bools([bool(row[u]) for u in members])


def _slice_mask(row: List[int], members: range) -> int:
    """Adjacency mask with member index i at bit i (LSB-first)."""
    mask = 0
    for i, u in enumerate(members):
        if row[u]:
            mask |= 1 << i
    return mask


def _bits_to_mask(bits: Bits) -> int:
    """Convert an MSB-first Bits slice to an index-i-at-bit-i mask."""
    mask = 0
    for i, bit in enumerate(bits):
        if bit:
            mask |= 1 << i
    return mask


def detect_triangle_dlp(
    graph: Graph,
    bandwidth: int,
    group_count: Optional[int] = None,
    seed: int = 0,
) -> Tuple[DLPOutcome, RunResult]:
    """Run the deterministic group-triple algorithm on CLIQUE-UCAST."""
    n = graph.n
    plan = dlp_plan(n, group_count)
    schedule = build_schedule(payload_demand(plan.lengths, bandwidth), n)
    vertex_bits = max(1, (max(1, n - 1)).bit_length())
    report_len = 1 + 3 * vertex_bits

    def program(ctx):
        me = ctx.node_id
        row = [1 if u in ctx.input else 0 for u in range(n)]

        payloads = {}
        for (v, p), pairs in plan.send_pairs.items():
            if v != me:
                continue
            parts = [_slice_bits(row, plan.groups[b]) for (_a, b) in pairs]
            payloads[p] = Bits.concat(parts)
        received = yield from route_payloads(
            ctx, plan.lengths, payloads, bandwidth, schedule
        )
        # Rebuild the slices addressed to me: slice_to[(v, b)] = int mask
        # over group b's members (bit i = member groups[b][i]).
        slice_to: Dict[Tuple[int, int], int] = {}

        def store(v: int, pairs: List[Tuple[int, int]], bits: Bits) -> None:
            offset = 0
            for _a, b in pairs:
                width = len(plan.groups[b])
                slice_to[(v, b)] = _bits_to_mask(bits[offset : offset + width])
                offset += width

        for v, bits in received.items():
            store(v, plan.send_pairs[(v, me)], bits)
        # My own slices (I might own triples touching my own group).
        my_pairs = plan.pairs_by_owner.get(me, [])
        for a, b in my_pairs:
            if plan.group_of[me] == a:
                slice_to[(me, b)] = _slice_mask(row, plan.groups[b])

        found: Optional[Tuple[int, int, int]] = None
        for t, (a, b, c) in enumerate(plan.triples):
            if plan.owner_of_triple[t] != me or found:
                continue
            members_b = list(plan.groups[b])
            members_c = list(plan.groups[c])
            for u in plan.groups[a]:
                mask_ub = slice_to.get((u, b), 0)
                mask_uc = slice_to.get((u, c), 0)
                if not mask_ub or not mask_uc:
                    continue
                for i, w in enumerate(members_b):
                    if w == u or not (mask_ub >> i) & 1:
                        continue
                    common = mask_uc & slice_to.get((w, c), 0)
                    if w in plan.groups[c]:
                        # avoid counting w itself as the third vertex
                        wi = w - plan.groups[c][0]
                        common &= ~(1 << wi)
                    if u in plan.groups[c]:
                        ui = u - plan.groups[c][0]
                        common &= ~(1 << ui)
                    if common:
                        x = members_c[(common & -common).bit_length() - 1]
                        found = tuple(sorted((u, w, x)))
                        break
                if found:
                    break

        # Aggregate at player 0.
        if me != 0:
            if found is None:
                payload = Bits.zeros(report_len)
            else:
                payload = Bits.concat(
                    [Bits.from_uint(1, 1)]
                    + [Bits.from_uint(x, vertex_bits) for x in found]
                )
            yield from transmit_unicast(ctx, {0: payload}, max_bits=report_len)
            return DLPOutcome(found is not None, found, plan.g)
        reports = yield from transmit_unicast(ctx, {}, max_bits=report_len)
        witness = found
        for _sender, payload in sorted(reports.items()):
            if payload[0] == 1 and witness is None:
                values = [
                    payload[1 + i * vertex_bits : 1 + (i + 1) * vertex_bits].to_uint()
                    for i in range(3)
                ]
                witness = tuple(values)  # type: ignore[assignment]
        return DLPOutcome(witness is not None, witness, plan.g)

    network = Network(n=n, bandwidth=bandwidth, mode=Mode.UNICAST, seed=seed)
    inputs = [graph.neighbors(v) for v in range(n)]
    result = network.run(program, inputs=inputs)
    return result.outputs[0], result


def count_triangles_dlp(
    graph: Graph,
    bandwidth: int,
    group_count: Optional[int] = None,
    seed: int = 0,
) -> Tuple[int, RunResult]:
    """Exact global triangle *count* with the same group-triple data
    movement (an extension feature: [8] counts as well as detects).

    Each triple owner counts the triangles whose vertex-sorted group
    signature equals its triple — every triangle is counted exactly once
    because group ranges are consecutive, so u < w < x sorts groups too.
    Counts converge at player 0 in one unicast phase of O(log n³) bits.
    """
    n = graph.n
    plan = dlp_plan(n, group_count)
    schedule = build_schedule(payload_demand(plan.lengths, bandwidth), n)
    count_bits = max(1, (n * n * n).bit_length())

    def program(ctx):
        me = ctx.node_id
        row = [1 if u in ctx.input else 0 for u in range(n)]
        payloads = {}
        for (v, p), pairs in plan.send_pairs.items():
            if v != me:
                continue
            parts = [_slice_bits(row, plan.groups[b]) for (_a, b) in pairs]
            payloads[p] = Bits.concat(parts)
        received = yield from route_payloads(
            ctx, plan.lengths, payloads, bandwidth, schedule
        )
        slice_to: Dict[Tuple[int, int], int] = {}
        for v, bits in received.items():
            offset = 0
            for _a, b in plan.send_pairs[(v, me)]:
                width = len(plan.groups[b])
                slice_to[(v, b)] = _bits_to_mask(bits[offset : offset + width])
                offset += width
        for a, b in plan.pairs_by_owner.get(me, []):
            if plan.group_of[me] == a:
                slice_to[(me, b)] = _slice_mask(row, plan.groups[b])

        local_count = 0
        for t, (a, b, c) in enumerate(plan.triples):
            if plan.owner_of_triple[t] != me:
                continue
            members_b = list(plan.groups[b])
            start_c = plan.groups[c][0]
            for u in plan.groups[a]:
                mask_ub = slice_to.get((u, b), 0)
                mask_uc = slice_to.get((u, c), 0)
                if not mask_ub or not mask_uc:
                    continue
                for i, w in enumerate(members_b):
                    if w <= u or not (mask_ub >> i) & 1:
                        continue
                    common = mask_uc & slice_to.get((w, c), 0)
                    # enforce x > w so each triangle is counted once
                    min_x_index = w - start_c + 1 if w >= start_c else 0
                    if min_x_index > 0:
                        common &= ~((1 << min_x_index) - 1)
                    elif w + 1 > start_c:
                        common &= ~((1 << (w + 1 - start_c)) - 1)
                    local_count += bin(common).count("1")

        # Aggregate exact counts at player 0.
        if me != 0:
            yield from transmit_unicast(
                ctx,
                {0: Bits.from_uint(local_count, count_bits)},
                max_bits=count_bits,
            )
            return local_count
        received = yield from transmit_unicast(ctx, {}, max_bits=count_bits)
        total = local_count + sum(
            payload.to_uint() for _s, payload in received.items()
        )
        return total

    network = Network(n=n, bandwidth=bandwidth, mode=Mode.UNICAST, seed=seed)
    inputs = [graph.neighbors(v) for v in range(n)]
    result = network.run(program, inputs=inputs)
    return result.outputs[0], result
