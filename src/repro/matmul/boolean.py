"""Reference (centralised) matrix algebra for Section 2.1.

These numpy implementations are the ground truth against which the
distributed protocols are tested: Boolean-semiring products, F2
products, triangle counting via trace(A³)/6, and Strassen over F2.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "adjacency",
    "f2_matmul",
    "boolean_matmul",
    "strassen_f2",
    "triangle_count",
    "has_triangle",
    "find_triangle",
]


def adjacency(graph: Graph) -> np.ndarray:
    return graph.adjacency_matrix().astype(np.int64)


def _as_f2_u8(m: np.ndarray) -> np.ndarray:
    return (np.asarray(m) & 1).astype(np.uint8)


def _f2_matmul_u8(a8: np.ndarray, b8: np.ndarray) -> np.ndarray:
    # uint8 accumulation wraps mod 256, which preserves parity — the
    # whole product stays in one byte per entry, no int64 round-trip.
    return (a8 @ b8) & np.uint8(1)


def f2_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return _f2_matmul_u8(_as_f2_u8(a), _as_f2_u8(b)).astype(np.int64)


def boolean_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # Path counts can reach n, so accumulate in int32 (not uint8); the
    # inputs still travel as compact int32 instead of int64.
    a32 = (np.asarray(a) != 0).astype(np.int32)
    b32 = (np.asarray(b) != 0).astype(np.int32)
    return ((a32 @ b32) > 0).astype(np.int64)


def strassen_f2(a: np.ndarray, b: np.ndarray, cutoff: int = 16) -> np.ndarray:
    """Strassen's algorithm over F2 (numpy reference implementation)."""
    return _strassen_u8(_as_f2_u8(a), _as_f2_u8(b), cutoff).astype(np.int64)


def _strassen_u8(a: np.ndarray, b: np.ndarray, cutoff: int) -> np.ndarray:
    n = a.shape[0]
    if n <= cutoff:
        return _f2_matmul_u8(a, b)
    if n % 2:
        padded = n + 1
        ap = np.zeros((padded, padded), dtype=np.uint8)
        bp = np.zeros((padded, padded), dtype=np.uint8)
        ap[:n, :n] = a
        bp[:n, :n] = b
        return _strassen_u8(ap, bp, cutoff)[:n, :n]
    h = n // 2
    a11, a12, a21, a22 = a[:h, :h], a[:h, h:], a[h:, :h], a[h:, h:]
    b11, b12, b21, b22 = b[:h, :h], b[:h, h:], b[h:, :h], b[h:, h:]
    one = np.uint8(1)
    m1 = _strassen_u8((a11 + a22) & one, (b11 + b22) & one, cutoff)
    m2 = _strassen_u8((a21 + a22) & one, b11, cutoff)
    m3 = _strassen_u8(a11, (b12 + b22) & one, cutoff)
    m4 = _strassen_u8(a22, (b21 + b11) & one, cutoff)
    m5 = _strassen_u8((a11 + a12) & one, b22, cutoff)
    m6 = _strassen_u8((a21 + a11) & one, (b11 + b12) & one, cutoff)
    m7 = _strassen_u8((a12 + a22) & one, (b21 + b22) & one, cutoff)
    c11 = (m1 + m4 + m5 + m7) & one
    c12 = (m3 + m5) & one
    c21 = (m2 + m4) & one
    c22 = (m1 + m2 + m3 + m6) & one
    return np.vstack(
        (np.hstack((c11, c12)), np.hstack((c21, c22)))
    )


def triangle_count(graph: Graph) -> int:
    # Work straight off the uint8 adjacency; a closed-walk count is at
    # most n^3 < 2^31 for any n this library simulates, so int32
    # accumulation suffices (int64 as a guard for absurd sizes).
    a8 = graph.adjacency_matrix()
    dtype = np.int64 if graph.n > 1290 else np.int32
    a = a8.astype(dtype)
    closed = np.einsum("ij,ji->", a @ a, a)
    return int(closed) // 6


def has_triangle(graph: Graph) -> bool:
    a8 = graph.adjacency_matrix()
    a = a8.astype(np.int32)
    return bool(((a @ a) * a8).any())


def find_triangle(graph: Graph) -> Optional[Tuple[int, int, int]]:
    a = adjacency(graph)
    paths = (a @ a) * a
    hits = np.argwhere(paths > 0)
    if hits.size == 0:
        return None
    i, j = map(int, hits[0])
    for k in range(graph.n):
        if a[i, k] and a[k, j]:
            return tuple(sorted((i, k, j)))  # type: ignore[return-value]
    raise AssertionError("inconsistent path count")  # pragma: no cover
