"""Reference (centralised) matrix algebra for Section 2.1.

These numpy implementations are the ground truth against which the
distributed protocols are tested: Boolean-semiring products, F2
products, triangle counting via trace(A³)/6, and Strassen over F2.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "adjacency",
    "f2_matmul",
    "boolean_matmul",
    "strassen_f2",
    "triangle_count",
    "has_triangle",
    "find_triangle",
]


def adjacency(graph: Graph) -> np.ndarray:
    return graph.adjacency_matrix().astype(np.int64)


def f2_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a.astype(np.int64) @ b.astype(np.int64)) % 2


def boolean_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return ((a.astype(np.int64) @ b.astype(np.int64)) > 0).astype(np.int64)


def strassen_f2(a: np.ndarray, b: np.ndarray, cutoff: int = 16) -> np.ndarray:
    """Strassen's algorithm over F2 (numpy reference implementation)."""
    n = a.shape[0]
    if n <= cutoff:
        return f2_matmul(a, b)
    if n % 2:
        padded = n + 1
        ap = np.zeros((padded, padded), dtype=np.int64)
        bp = np.zeros((padded, padded), dtype=np.int64)
        ap[:n, :n] = a
        bp[:n, :n] = b
        return strassen_f2(ap, bp, cutoff)[:n, :n]
    h = n // 2
    a11, a12, a21, a22 = a[:h, :h], a[:h, h:], a[h:, :h], a[h:, h:]
    b11, b12, b21, b22 = b[:h, :h], b[:h, h:], b[h:, :h], b[h:, h:]
    m1 = strassen_f2((a11 + a22) % 2, (b11 + b22) % 2, cutoff)
    m2 = strassen_f2((a21 + a22) % 2, b11, cutoff)
    m3 = strassen_f2(a11, (b12 + b22) % 2, cutoff)
    m4 = strassen_f2(a22, (b21 + b11) % 2, cutoff)
    m5 = strassen_f2((a11 + a12) % 2, b22, cutoff)
    m6 = strassen_f2((a21 + a11) % 2, (b11 + b12) % 2, cutoff)
    m7 = strassen_f2((a12 + a22) % 2, (b21 + b22) % 2, cutoff)
    c11 = (m1 + m4 + m5 + m7) % 2
    c12 = (m3 + m5) % 2
    c21 = (m2 + m4) % 2
    c22 = (m1 + m2 + m3 + m6) % 2
    return np.vstack(
        (np.hstack((c11, c12)), np.hstack((c21, c22)))
    )


def triangle_count(graph: Graph) -> int:
    a = adjacency(graph)
    return int(np.trace(a @ a @ a)) // 6


def has_triangle(graph: Graph) -> bool:
    a = adjacency(graph)
    return bool(((a @ a) * a).any())


def find_triangle(graph: Graph) -> Optional[Tuple[int, int, int]]:
    a = adjacency(graph)
    paths = (a @ a) * a
    hits = np.argwhere(paths > 0)
    if hits.size == 0:
        return None
    i, j = map(int, hits[0])
    for k in range(graph.n):
        if a[i, k] and a[k, j]:
            return tuple(sorted((i, k, j)))  # type: ignore[return-value]
    raise AssertionError("inconsistent path count")  # pragma: no cover
