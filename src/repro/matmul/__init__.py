"""Matrix multiplication and triangle detection (Section 2.1 + the [8]
baseline)."""

from repro.matmul.boolean import (
    adjacency,
    boolean_matmul,
    f2_matmul,
    find_triangle,
    has_triangle,
    strassen_f2,
    triangle_count,
)
from repro.matmul.distributed import (
    TriangleMMOutcome,
    detect_triangle_mm,
    detect_triangle_mm_many,
    matmul_input_partition,
    triangle_mm_kernel_program,
    triangle_mm_program,
)
from repro.matmul.triangle_mm import (
    detect_triangle_masked,
    masked_product,
    masked_triangle_witnesses,
)
from repro.matmul.triangles_dlp import DLPOutcome, detect_triangle_dlp, dlp_plan

__all__ = [
    "adjacency",
    "f2_matmul",
    "boolean_matmul",
    "strassen_f2",
    "triangle_count",
    "has_triangle",
    "find_triangle",
    "masked_product",
    "masked_triangle_witnesses",
    "detect_triangle_masked",
    "TriangleMMOutcome",
    "triangle_mm_program",
    "triangle_mm_kernel_program",
    "detect_triangle_mm",
    "detect_triangle_mm_many",
    "matmul_input_partition",
    "DLPOutcome",
    "dlp_plan",
    "detect_triangle_dlp",
]
