"""Section 2.1 on the engine: triangle detection via matmul circuits.

The paper's conditional result: if matrix multiplication has arithmetic
circuits of size O(n^δ), Theorem 2 turns them into an O(n^{δ−2})-round
CLIQUE-UCAST protocol, and Shamir's masked-F2 reduction turns Boolean
triangle detection into a handful of such products.  We instantiate the
pipeline with both circuit families from
:mod:`repro.circuits.arithmetic`:

* naive (Θ(n³) wires → s = Θ(n) → bandwidth Θ(n), O(1) rounds),
* Strassen (Θ(n^{2.81}) wires → s = Θ(n^{0.81}) bandwidth, O(log n)
  rounds) — the stand-in for the conjectured O(n^{2+ε}) circuits.

Protocol per trial (mask r drawn from the shared public coin):

1. Player i locally masks its adjacency row: M_i = A_i ∘ r.
2. The circuit computes C = M · A over F2 via ``execute_plan``.
3. Output entries C[i][j] are routed to player i (Remark 3's output
   redistribution), who checks A_ij ∧ C_ij — a triangle witness.
4. One unicast round aggregates the flags at player 0.

All heavy exchanges here — the circuit simulation's payload routing and
the output redistribution, both via :func:`route_payloads`, and the
final aggregation via :func:`transmit_unicast` — move fixed-width
frames, so on the default engine they ride the batched numpy fast lane
(:mod:`repro.core.fastlane`) instead of per-message dict delivery.

The protocol is *oblivious*: every round's structure comes from the
public :class:`SimulationPlan` and routing schedules, never from the
adjacency rows.  :func:`triangle_mm_program` declares this
(:func:`~repro.core.compiled.mark_oblivious`), and
:func:`detect_triangle_mm_many` exploits it — detection over many
same-size graphs runs through
:meth:`~repro.core.network.Network.run_many` against one compiled
schedule (one plan build, one structure pass, batched payload
delivery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.circuits.arithmetic import matmul_circuit_naive, matmul_circuit_strassen
from repro.circuits.circuit import Circuit
from repro.core.bits import Bits
from repro.core.compiled import declare_schedule_digest, mark_oblivious
from repro.core.network import Mode, Network, RunResult
from repro.core.phases import transmit_unicast
from repro.graphs.graph import Graph
from repro.routing.lenzen import payload_demand, route_payloads
from repro.routing.schedule import build_schedule
from repro.simulation.protocol import SimulationPlan, build_plan, execute_plan

__all__ = [
    "matmul_input_partition",
    "TriangleMMOutcome",
    "triangle_mm_program",
    "triangle_mm_kernel_program",
    "detect_triangle_mm",
    "detect_triangle_mm_many",
]


def matmul_input_partition(size: int) -> List[int]:
    """Row i of both matrices belongs to player i — the "each player gets
    n bits per matrix" partition of Section 2.1."""
    partition = []
    for _matrix in range(2):
        for i in range(size):
            partition.extend([i] * size)
    return partition


@dataclass(frozen=True)
class TriangleMMOutcome:
    found: bool
    witness: Optional[Tuple[int, int]]
    trials: int


def _output_routing_plan(
    plan: SimulationPlan, size: int
) -> Tuple[Dict[Tuple[int, int], List[int]], Dict[Tuple[int, int], int]]:
    """Route output gate C[i][j] from its simulation owner to player i."""
    order: Dict[Tuple[int, int], List[int]] = {}
    outputs = plan.circuit.outputs
    for position, gid in enumerate(outputs):
        row = position // size
        src = plan.assignment.owner[gid]
        if src != row:
            order.setdefault((src, row), []).append(gid)
    lengths = {pair: len(gids) for pair, gids in order.items()}
    return order, lengths


def triangle_mm_program(
    graph: Graph,
    plan: SimulationPlan,
    trials: int,
):
    """Node program: ``ctx.input`` is this node's adjacency row (list of
    n 0/1 ints)."""
    size = graph.n
    circuit = plan.circuit
    input_ids = circuit.input_ids
    out_order, out_lengths = _output_routing_plan(plan, size)
    out_schedule = build_schedule(
        payload_demand(out_lengths, plan.bandwidth), size
    )
    position_of = {gid: pos for pos, gid in enumerate(circuit.outputs)}

    def program(ctx):
        me = ctx.node_id
        row = list(ctx.input)
        found_local: Optional[Tuple[int, int]] = None
        for _trial in range(trials):
            mask = [ctx.shared_rng.randint(0, 1) for _ in range(size)]
            masked_row = [row[j] & mask[j] for j in range(size)]
            my_inputs: Dict[int, bool] = {}
            for j in range(size):
                my_inputs[input_ids[me * size + j]] = bool(masked_row[j])
                my_inputs[input_ids[size * size + me * size + j]] = bool(row[j])
            values = yield from execute_plan(ctx, plan, my_inputs)

            payloads = {}
            for (src, dst), gids in out_order.items():
                if src == me:
                    payloads[dst] = Bits.from_bools([values[g] for g in gids])
            received = yield from route_payloads(
                ctx, out_lengths, payloads, plan.bandwidth, out_schedule
            )
            my_row_c: Dict[int, bool] = {}
            for position, gid in enumerate(circuit.outputs):
                if position // size == me and plan.assignment.owner[gid] == me:
                    my_row_c[position % size] = values[gid]
            for src, bits in received.items():
                for gid, bit in zip(out_order[(src, me)], bits):
                    my_row_c[position_of[gid] % size] = bool(bit)
            if found_local is None:
                for j in range(size):
                    if row[j] and my_row_c.get(j):
                        found_local = (min(me, j), max(me, j))
                        break
            # Lockstep: even after finding a witness we keep executing
            # the remaining trials' phases — peers cannot know we are
            # done, and the routing schedules expect our frames.
        # Aggregation: everyone reports to player 0 (1 + 2·log n bits).
        vertex_bits = max(1, (size - 1).bit_length())
        report_len = 1 + 2 * vertex_bits
        if me != 0:
            if found_local is None:
                payload = Bits.zeros(report_len)
            else:
                payload = Bits.concat(
                    [
                        Bits.from_uint(1, 1),
                        Bits.from_uint(found_local[0], vertex_bits),
                        Bits.from_uint(found_local[1], vertex_bits),
                    ]
                )
            yield from transmit_unicast(ctx, {0: payload}, max_bits=report_len)
            return TriangleMMOutcome(
                found=found_local is not None, witness=found_local, trials=trials
            )
        received = yield from transmit_unicast(ctx, {}, max_bits=report_len)
        witness = found_local
        for _sender, payload in sorted(received.items()):
            if payload[0] == 1 and witness is None:
                u = payload[1 : 1 + vertex_bits].to_uint()
                v = payload[1 + vertex_bits :].to_uint()
                witness = (u, v)
        return TriangleMMOutcome(
            found=witness is not None, witness=witness, trials=trials
        )

    # Structure comes from (plan, trials) alone; the adjacency rows only
    # fill payloads — see the module docstring.
    declare_schedule_digest(program, "triangle_mm", plan, trials)
    return mark_oblivious(program, "triangle_mm", id(plan), trials)


def triangle_mm_kernel_program(
    graph: Graph,
    plan: SimulationPlan,
    trials: int,
):
    """The kernel twin of :func:`triangle_mm_program`: the full pipeline
    — per-trial masking, circuit simulation, output redistribution,
    witness aggregation — as one declared kernel round sequence over
    stacked adjacency/value matrices, zero generator steps.  Inputs and
    outputs match the generator program byte for byte (same shared-coin
    masks, same witness tie-breaking, same accounting)."""
    import numpy as np

    from repro.core.kernels import KernelBuilder
    from repro.core.network import Mode
    from repro.core.phases import kernel_transmit_unicast
    from repro.routing.lenzen import kernel_route_payloads
    from repro.simulation.kernel import (
        append_simulation_rounds,
        constant_columns,
        payload_bridge,
    )

    size = graph.n
    circuit = plan.circuit
    input_ids = circuit.input_ids
    out_order, out_lengths = _output_routing_plan(plan, size)
    out_schedule = build_schedule(
        payload_demand(out_lengths, plan.bandwidth), size
    )
    builder = KernelBuilder(size, Mode.UNICAST, bandwidth=plan.bandwidth)
    vals_key = "vals"
    first_ids = np.asarray(input_ids[: size * size], dtype=np.intp)
    second_ids = np.asarray(input_ids[size * size :], dtype=np.intp)
    output_gids = np.asarray(circuit.outputs, dtype=np.intp)
    const_cols, const_vals = constant_columns(circuit)

    def init(state, kctx):
        instances = kctx.instances
        rows = np.zeros((instances, size, size), dtype=np.uint8)
        for k, inputs in enumerate(kctx.inputs_list):
            for v in range(size):
                rows[k, v] = np.asarray(inputs[v], dtype=np.uint8)
        state["rows"] = rows
        # The shared public coin: every generator node draws the same
        # mask stream, so one clone serves all nodes and all instances.
        rng = kctx.shared_rng()
        state["masks"] = np.asarray(
            [
                [rng.randint(0, 1) for _ in range(size)]
                for _ in range(trials)
            ],
            dtype=np.uint8,
        )
        vals = np.zeros((instances, len(circuit)), dtype=np.uint8)
        if const_cols.size:
            vals[:, const_cols] = const_vals
        state[vals_key] = vals
        # Witness slots: -1 = none found yet (first trial, then first
        # column wins — the generator's tie-breaking order).
        state["wit_u"] = np.full((instances, size), -1, dtype=np.int64)
        state["wit_v"] = np.full((instances, size), -1, dtype=np.int64)

    builder.on_init(init)

    out_payloads, _out_writeback = payload_bridge(out_order, vals_key)

    def set_out(state, received):
        # All output values live in the value matrix once the routed
        # frames land; assemble C and score this trial's witnesses.
        del received
        vals = state[vals_key]
        rows = state["rows"]
        instances = vals.shape[0]
        c_matrix = vals[:, output_gids].reshape(instances, size, size)
        hit = rows & c_matrix
        any_hit = hit.any(axis=2)
        first_j = hit.argmax(axis=2)
        wit_u = state["wit_u"]
        wit_v = state["wit_v"]
        me = np.arange(size, dtype=np.int64)[None, :]
        update = (wit_u < 0) & any_hit
        j_hit = first_j.astype(np.int64)
        wit_u[update] = np.minimum(me, j_hit)[update]
        wit_v[update] = np.maximum(me, j_hit)[update]

    for _trial in range(trials):

        def prepare(state, _t=_trial):
            vals = state[vals_key]
            rows = state["rows"]
            instances = vals.shape[0]
            mask = state["masks"][_t]
            masked = rows & mask[None, None, :]
            vals[:, first_ids] = masked.reshape(instances, size * size)
            vals[:, second_ids] = rows.reshape(instances, size * size)

        builder.before(prepare)
        append_simulation_rounds(builder, plan, vals_key)
        kernel_route_payloads(
            builder,
            out_lengths,
            plan.bandwidth,
            out_schedule,
            out_payloads,
            set_out,
        )

    # ---- aggregation at player 0 (1 + 2·log n bits per node) ----------
    vertex_bits = max(1, (size - 1).bit_length())
    report_len = 1 + 2 * vertex_bits
    links = [(v, 0) for v in range(1, size)]

    def get_reports(state):
        wit_u = state["wit_u"]
        wit_v = state["wit_v"]
        instances = wit_u.shape[0]
        maps = [dict() for _ in range(instances)]
        for k in range(instances):
            for v in range(1, size):
                if wit_u[k, v] < 0:
                    payload = Bits.zeros(report_len)
                else:
                    payload = Bits(
                        (1 << 2 * vertex_bits)
                        | (int(wit_u[k, v]) << vertex_bits)
                        | int(wit_v[k, v]),
                        report_len,
                    )
                maps[k][(v, 0)] = payload
        return maps

    def set_reports(state, received):
        state["reports"] = received

    if links:
        kernel_transmit_unicast(
            builder, links, report_len, get_reports, set_reports
        )

    def finish(state, kctx):
        wit_u = state["wit_u"]
        wit_v = state["wit_v"]
        reports = state.get("reports")
        outcomes = []
        for k in range(kctx.instances):
            per_node = []
            for v in range(size):
                local = (
                    None
                    if wit_u[k, v] < 0
                    else (int(wit_u[k, v]), int(wit_v[k, v]))
                )
                if v != 0:
                    per_node.append(
                        TriangleMMOutcome(
                            found=local is not None,
                            witness=local,
                            trials=trials,
                        )
                    )
                    continue
                witness = local
                if reports is not None:
                    for _sender, payload in sorted(reports[k][0].items()):
                        if payload[0] == 1 and witness is None:
                            u = payload[1 : 1 + vertex_bits].to_uint()
                            w = payload[1 + vertex_bits :].to_uint()
                            witness = (u, w)
                per_node.append(
                    TriangleMMOutcome(
                        found=witness is not None,
                        witness=witness,
                        trials=trials,
                    )
                )
            outcomes.append(per_node)
        return outcomes

    return builder.build(finish, name="triangle_mm")


def detect_triangle_mm(
    graph: Graph,
    trials: int = 8,
    circuit_kind: str = "strassen",
    bandwidth: Optional[int] = None,
    seed: int = 0,
    plan: Optional[SimulationPlan] = None,
    record_transcript: bool = False,
    engine: str = "fast",
    kernel: bool = False,
) -> Tuple[TriangleMMOutcome, RunResult, SimulationPlan]:
    """Full pipeline: build the matmul circuit, simulate, detect.

    The decision at player 0 has one-sided error <= 2^{-trials} (misses
    only); "found" answers carry a witness edge and are always correct.
    ``kernel=True`` runs the vectorized kernel form of the protocol
    (:func:`triangle_mm_kernel_program`) — same results, no generator
    stepping.
    """
    size = graph.n
    if plan is None:
        builder: Callable[[int], Circuit] = (
            matmul_circuit_strassen if circuit_kind == "strassen" else matmul_circuit_naive
        )
        circuit = builder(size)
        plan = build_plan(
            circuit, size, matmul_input_partition(size), bandwidth
        )
    network = Network(
        n=size,
        bandwidth=plan.bandwidth,
        mode=Mode.UNICAST,
        seed=seed,
        record_transcript=record_transcript,
        engine=engine,
    )
    rows = [
        [1 if graph.has_edge(v, u) else 0 for u in range(size)]
        for v in range(size)
    ]
    program = (
        triangle_mm_kernel_program(graph, plan, trials)
        if kernel
        else triangle_mm_program(graph, plan, trials)
    )
    result = network.run(program, inputs=rows)
    return result.outputs[0], result, plan


def detect_triangle_mm_many(
    graphs: Sequence[Graph],
    trials: int = 8,
    circuit_kind: str = "strassen",
    bandwidth: Optional[int] = None,
    seed: int = 0,
    plan: Optional[SimulationPlan] = None,
    kernel: bool = False,
) -> Tuple[List[TriangleMMOutcome], List[RunResult], SimulationPlan]:
    """Triangle detection over many same-size graphs, one compiled
    schedule: the plan is built once, the first instance records the
    round structure, and the remaining instances replay it in lockstep
    via :meth:`~repro.core.network.Network.run_many`.  Per-instance
    results are byte-identical to calling :func:`detect_triangle_mm`
    with the same plan, seed and trials on each graph.  ``kernel=True``
    swaps in the vectorized kernel program — all graphs advance through
    every round as one stacked matrix operation."""
    if not graphs:
        raise ValueError("detect_triangle_mm_many needs at least one graph")
    size = graphs[0].n
    for graph in graphs:
        if graph.n != size:
            raise ValueError("detect_triangle_mm_many needs same-size graphs")
    if plan is None:
        builder: Callable[[int], Circuit] = (
            matmul_circuit_strassen if circuit_kind == "strassen" else matmul_circuit_naive
        )
        plan = build_plan(
            builder(size), size, matmul_input_partition(size), bandwidth
        )
    network = Network(n=size, bandwidth=plan.bandwidth, mode=Mode.UNICAST, seed=seed)
    program = (
        triangle_mm_kernel_program(graphs[0], plan, trials)
        if kernel
        else triangle_mm_program(graphs[0], plan, trials)
    )
    inputs_list = [
        [
            [1 if graph.has_edge(v, u) else 0 for u in range(size)]
            for v in range(size)
        ]
        for graph in graphs
    ]
    results = network.run_many(program, inputs_list)
    return [result.outputs[0] for result in results], results, plan
