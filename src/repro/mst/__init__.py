"""Minimum spanning trees on the congested clique (related work [30])."""

from repro.mst.boruvka import (
    WeightedGraph,
    boruvka_message_bits,
    boruvka_mst,
    boruvka_program,
    mst_reference,
)

__all__ = [
    "WeightedGraph",
    "boruvka_message_bits",
    "boruvka_mst",
    "boruvka_program",
    "mst_reference",
]
