"""Minimum spanning trees on the congested clique (related work [30]).

MST is *the* canonical congested-clique problem: the paper's
introduction cites Lotker–Pavlov–Patt-Shamir–Peleg [30], who achieve
O(log log n) rounds.  We implement the classical Borůvka strategy on
CLIQUE-BCAST — O(log n) phases, each a single O(log n + log W)-bit
broadcast per node:

1. every node maintains (locally, from the shared broadcast history)
   the component label of *every* node — all nodes see the same
   blackboard, so the bookkeeping stays consistent for free;
2. each phase, every node broadcasts the minimum-weight edge incident
   to it that leaves its component (or "none");
3. everyone selects, per component, the globally minimal outgoing edge
   (ties broken by the (weight, u, v) total order, which makes the
   chosen edge set a forest), adds those edges to the MST and merges
   the components locally;
4. repeat until no component has an outgoing edge.

The [30] O(log log n) algorithm accelerates step 3 by merging many
components per phase through unicast sparsification; Borůvka is the
standard baseline it improves on, and it exercises exactly the
blackboard bookkeeping pattern of the detection algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.core.bits import Bits, BitWriter
from repro.core.network import Context, Mode, Network, RunResult
from repro.core.phases import transmit_broadcast
from repro.graphs.graph import Edge, Graph, canonical_edge

__all__ = [
    "WeightedGraph",
    "mst_reference",
    "boruvka_message_bits",
    "boruvka_program",
    "boruvka_mst",
]


@dataclass
class WeightedGraph:
    """An undirected graph with positive integer edge weights."""

    graph: Graph
    weights: Dict[Edge, int]

    def __post_init__(self) -> None:
        for edge, weight in self.weights.items():
            if not self.graph.has_edge(*edge):
                raise ValueError(f"weight given for non-edge {edge}")
            if weight < 0:
                raise ValueError("weights must be non-negative")
        for edge in self.graph.edges():
            if edge not in self.weights:
                raise ValueError(f"edge {edge} has no weight")

    def weight(self, u: int, v: int) -> int:
        return self.weights[canonical_edge(u, v)]

    def max_weight(self) -> int:
        return max(self.weights.values(), default=0)

    def key(self, u: int, v: int) -> Tuple[int, int, int]:
        """The tie-breaking total order on edges."""
        edge = canonical_edge(u, v)
        return (self.weights[edge], edge[0], edge[1])


def mst_reference(wg: WeightedGraph) -> Set[Edge]:
    """Kruskal with the same tie-breaking order (ground truth)."""
    parent = list(range(wg.graph.n))

    def find(v: int) -> int:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    chosen: Set[Edge] = set()
    for _w, u, v in sorted(wg.key(u, v) for u, v in wg.graph.edges()):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            chosen.add(canonical_edge(u, v))
    return chosen


def boruvka_message_bits(wg: WeightedGraph) -> int:
    """Width of one phase broadcast: present flag + weight + two
    endpoints.  The minimum bandwidth :func:`boruvka_program` needs."""
    n = wg.graph.n
    id_bits = max(1, (max(0, n - 1)).bit_length())
    weight_bits = max(1, wg.max_weight().bit_length())
    return 1 + weight_bits + 2 * id_bits


def boruvka_program(wg: WeightedGraph):
    """Borůvka's node program for CLIQUE-BCAST: O(log n) phases, one
    :func:`boruvka_message_bits`-wide broadcast per node per phase;
    every node returns the same frozenset MST (minimum spanning forest
    if disconnected).  The runnable factory the scenario registry and
    :func:`boruvka_mst` share."""
    n = wg.graph.n
    id_bits = max(1, (max(0, n - 1)).bit_length())
    weight_bits = max(1, wg.max_weight().bit_length())
    message_bits = boruvka_message_bits(wg)
    phases = max(1, math.ceil(math.log2(max(2, n))))

    def encode(edge: Optional[Tuple[int, int]]) -> Bits:
        writer = BitWriter()
        if edge is None:
            writer.write_uint(0, 1)
            writer.write_uint(0, weight_bits + 2 * id_bits)
        else:
            u, v = edge
            writer.write_uint(1, 1)
            writer.write_uint(wg.weight(u, v), weight_bits)
            writer.write_uint(u, id_bits)
            writer.write_uint(v, id_bits)
        return writer.getvalue()

    id_mask = (1 << id_bits) - 1
    weight_mask = (1 << weight_bits) - 1

    def decode(payload: Bits) -> Optional[Tuple[int, int, int]]:
        # The message is fixed-width (present flag is the leading bit),
        # so decode straight off the uint the broadcast lane delivered.
        raw = payload.to_uint()
        if raw >> (weight_bits + 2 * id_bits) == 0:
            return None
        weight = (raw >> (2 * id_bits)) & weight_mask
        u = (raw >> id_bits) & id_mask
        v = raw & id_mask
        return weight, u, v

    def program(ctx: Context):
        me = ctx.node_id
        component = list(range(n))
        tree: Set[Edge] = set()

        for _phase in range(phases):
            candidate: Optional[Tuple[int, int]] = None
            best_key = None
            for u in wg.graph.neighbors(me):
                if component[u] == component[me]:
                    continue
                key = wg.key(me, u)
                if best_key is None or key < best_key:
                    best_key = key
                    candidate = (me, u)
            received = yield from transmit_broadcast(
                ctx, encode(candidate), max_bits=message_bits
            )
            proposals: Dict[int, Tuple[int, int, int]] = {}
            all_messages = dict(received)
            for sender, payload in all_messages.items():
                decoded = decode(payload)
                if decoded is None:
                    continue
                weight, u, v = decoded
                comp = component[u]
                key = (weight, min(u, v), max(u, v))
                if comp not in proposals or key < proposals[comp]:
                    proposals[comp] = key
            if candidate is not None:
                u, v = candidate
                key = wg.key(u, v)
                comp = component[u]
                if comp not in proposals or key < proposals[comp]:
                    proposals[comp] = key
            if not proposals:
                break
            # merge: each selected edge unions two components; process
            # in a deterministic order so all nodes stay consistent.
            for _weight, u, v in sorted(set(proposals.values())):
                cu, cv = component[u], component[v]
                if cu == cv:
                    continue
                tree.add(canonical_edge(u, v))
                low, high = min(cu, cv), max(cu, cv)
                for w in range(n):
                    if component[w] == high:
                        component[w] = low
        return frozenset(tree)

    return program


def boruvka_mst(
    wg: WeightedGraph,
    bandwidth: int,
    seed: int = 0,
    record_transcript: bool = False,
    engine: str = "fast",
) -> Tuple[Set[Edge], RunResult]:
    """Run Borůvka on CLIQUE-BCAST; every node outputs the same MST
    (minimum spanning forest if disconnected)."""
    network = Network(
        n=wg.graph.n,
        bandwidth=bandwidth,
        mode=Mode.BROADCAST,
        seed=seed,
        record_transcript=record_transcript,
        engine=engine,
    )
    result = network.run(boruvka_program(wg))
    first = result.outputs[0]
    assert all(out == first for out in result.outputs)
    return set(first), result
