"""4-cycle detection over the edges of the input graph (CONGEST).

The paper states (Section 3.1) that C4 detection can be solved in
O(√n·log n / b) rounds "even when nodes can only communicate over the
edges of the input graph G"; the algorithm itself lives in the full
version, which is not part of the provided text.  We implement a
*complete* two-phase threshold algorithm whose cost matches that bound
on bounded-heavy-count instances, and document the exact guarantee
(DESIGN.md substitution style):

* Phase 1 (light lists).  A vertex is *light* if deg <= t (threshold
  t ≈ 2√n).  Every light vertex ships its full adjacency list to every
  neighbour: O(t·log n / b) rounds, lockstep.
* Phase 2 (heavy lists).  Every vertex ships its list of *heavy*
  neighbours to every neighbour: O(min(Δ, h)·log n / b) rounds, where
  h is the number of heavy vertices.

Every vertex then searches the merged received lists for two neighbours
with a second common neighbour.  Completeness: let the C4 be
(v, a, u, b) with opposite pairs {v,u}, {a,b}.

* some pair both light  -> its common neighbour got both full lists;
* otherwise WLOG u and a are heavy, and each light corner's full list
  plus each vertex's heavy list meet at one of the corners:
  - v, b heavy: u receives heavy lists of a and b, both containing v;
  - v light:    a receives L_v ∋ b and u's heavy list ∋ b;
  - b light:    v receives L_b ∋ u and a's heavy list ∋ u.

The phases cost O((t + min(Δ, h))·log n / b) rounds.  With t = 2√n and
the benchmark's instance families (h = O(√n)) the measured cost tracks
the paper's Õ(√n/b) claim; adversarially many heavy vertices degrade
the second phase toward O(n·log n/b), which the full version's (not
reproducible here) machinery avoids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.bits import BitReader, Bits, BitWriter
from repro.core.network import Context, Mode, Network, RunResult
from repro.core.phases import transmit_unicast
from repro.graphs.graph import Graph

__all__ = ["C4Outcome", "detect_c4_congest"]


@dataclass(frozen=True)
class C4Outcome:
    found: bool
    witness: Optional[Tuple[int, int, int, int]]
    threshold: int
    heavy_count: int


def _encode_list(vertices: List[int], id_bits: int, max_len: int) -> Bits:
    writer = BitWriter()
    writer.write_uint(len(vertices), max(1, max_len.bit_length()))
    for v in vertices:
        writer.write_uint(v, id_bits)
    return writer.getvalue()


def _decode_list(bits: Bits, id_bits: int, max_len: int) -> List[int]:
    reader = BitReader(bits)
    count = reader.read_uint(max(1, max_len.bit_length()))
    return [reader.read_uint(id_bits) for _ in range(count)]


def _find_c4(me: int, known: Dict[int, Set[int]]) -> Optional[Tuple[int, int, int, int]]:
    """Two neighbours a, b of ``me`` with a common vertex v != me in
    their known partial neighbourhoods: the C4 (me, a, v, b)."""
    first_lister: Dict[int, int] = {}
    for a in sorted(known):
        for v in sorted(known[a]):
            if v == me:
                continue
            if v in first_lister and first_lister[v] != a:
                return (me, first_lister[v], v, a)
            first_lister.setdefault(v, a)
    return None


def detect_c4_congest(
    graph: Graph,
    bandwidth: int,
    threshold: Optional[int] = None,
    seed: int = 0,
) -> Tuple[C4Outcome, RunResult]:
    """Run the two-phase threshold algorithm in CONGEST mode."""
    n = graph.n
    t = threshold if threshold is not None else max(1, 2 * math.isqrt(n))
    id_bits = max(1, (n - 1).bit_length())
    heavy = {v for v in range(n) if graph.degree(v) > t}
    h = len(heavy)
    light_payload_max = max(1, t.bit_length()) + t * id_bits
    heavy_cap = min(n - 1, h) if h else 0
    heavy_payload_max = max(1, heavy_cap.bit_length()) + heavy_cap * id_bits

    def program(ctx: Context):
        me = ctx.node_id
        my_neighbours = sorted(ctx.neighbors)
        known: Dict[int, Set[int]] = {u: set() for u in my_neighbours}

        # --- phase 1: light vertices ship full lists ----------------------
        payloads = {}
        if len(my_neighbours) <= t:
            body = _encode_list(my_neighbours, id_bits, t)
            payloads = {u: body for u in my_neighbours}
        received = yield from transmit_unicast(
            ctx, payloads, max_bits=light_payload_max
        )
        for sender, bits in received.items():
            known[sender].update(_decode_list(bits, id_bits, t))

        # --- phase 2: everyone ships its heavy-neighbour list -------------
        if heavy_cap:
            my_heavy = [u for u in my_neighbours if u in heavy]
            payloads = {}
            if my_heavy:
                body = _encode_list(my_heavy, id_bits, heavy_cap)
                payloads = {u: body for u in my_neighbours}
            received = yield from transmit_unicast(
                ctx, payloads, max_bits=heavy_payload_max
            )
            for sender, bits in received.items():
                known[sender].update(
                    _decode_list(bits, id_bits, heavy_cap)
                )

        return _find_c4(me, known)

    topology = [sorted(graph.neighbors(v)) for v in range(n)]
    network = Network(
        n=n, bandwidth=bandwidth, mode=Mode.CONGEST, topology=topology,
        seed=seed,
    )
    result = network.run(program)
    witness = next((w for w in result.outputs if w is not None), None)
    if witness is not None:
        a, b, c, d = witness
        assert graph.has_edge(a, b) and graph.has_edge(b, c)
        assert graph.has_edge(c, d) and graph.has_edge(d, a)
        assert len({a, b, c, d}) == 4
    return (
        C4Outcome(
            found=witness is not None,
            witness=witness,
            threshold=t,
            heavy_count=h,
        ),
        result,
    )
