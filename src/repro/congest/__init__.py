"""CONGEST-model algorithms: BFS/aggregation substrate and the
C4-detection upper bound the paper states for general networks."""

from repro.congest.c4_detection import C4Outcome, detect_c4_congest
from repro.congest.gossip import cut_bits, gossip_detect, gossip_rows_program
from repro.congest.primitives import (
    aggregate_program,
    aggregate_sum,
    bfs_program,
    bfs_tree,
)

__all__ = [
    "bfs_program",
    "bfs_tree",
    "aggregate_program",
    "aggregate_sum",
    "C4Outcome",
    "detect_c4_congest",
    "gossip_rows_program",
    "gossip_detect",
    "cut_bits",
]
