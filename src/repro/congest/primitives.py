"""Classic CONGEST primitives: BFS trees, convergecast, aggregation.

Section 3 of the paper extends some subgraph-detection bounds to the
CONGEST model, "where the input graph G is also the communication
network".  These primitives are the substrate such algorithms stand on:

* :func:`bfs_tree` — build a BFS tree from a root in O(diameter) rounds
  (each node learns its parent and depth);
* :func:`aggregate` — convergecast + broadcast of an associative
  operation (sum, max, ...) over per-node values, in O(diameter) rounds
  up the tree and down again.

All run on the engine's :data:`~repro.core.network.Mode.CONGEST` mode,
so bandwidth accounting matches the model (b bits per edge per round).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.core.bits import BitReader, Bits, BitWriter
from repro.core.network import Context, Mode, Network, Outbox, RunResult
from repro.graphs.graph import Graph

__all__ = ["bfs_program", "bfs_tree", "aggregate_program", "aggregate_sum"]


def bfs_program(root: int):
    """Build a BFS tree: returns (parent, depth) per node (parent = -1
    for the root, None/∞ depth for unreachable nodes).

    Wave protocol: the root announces depth 0; every node joins at the
    first round it hears a neighbour, recording that neighbour as its
    parent.  One bit per edge per round; depth = round index joined.
    """

    def program(ctx: Context):
        parent: Optional[int] = -1 if ctx.node_id == root else None
        depth: Optional[int] = 0 if ctx.node_id == root else None
        announced = False
        # n rounds suffice (diameter <= n-1); nodes stop announcing
        # after their first wave, and everyone runs the same schedule.
        for r in range(ctx.n):
            if depth == r and not announced:
                outbox = Outbox.unicast(
                    {u: Bits.from_uint(1, 1) for u in ctx.neighbors}
                )
                announced = True
            else:
                outbox = Outbox.silent()
            inbox = yield outbox
            if depth is None and len(inbox):
                parent = min(inbox.senders())
                depth = r + 1
        return parent, depth

    return program


def bfs_tree(graph: Graph, root: int, bandwidth: int = 1, seed: int = 0):
    """Run :func:`bfs_program` on ``graph``; returns (parents, depths,
    RunResult)."""
    topology = [sorted(graph.neighbors(v)) for v in range(graph.n)]
    network = Network(
        n=graph.n,
        bandwidth=bandwidth,
        mode=Mode.CONGEST,
        topology=topology,
        seed=seed,
    )
    result = network.run(bfs_program(root))
    parents = [out[0] for out in result.outputs]
    depths = [out[1] for out in result.outputs]
    return parents, depths, result


def aggregate_program(
    root: int,
    parents: Sequence[Optional[int]],
    combine: Callable[[int, int], int],
    value_bits: int,
):
    """Convergecast ``combine`` over per-node inputs up a known tree,
    then broadcast the result back down.  ``ctx.input`` = this node's
    value (< 2^value_bits); every node returns the global aggregate.

    The tree (``parents``) is assumed known (e.g. from a prior BFS);
    each phase takes height <= n rounds of ⌈value_bits/b⌉-bit messages
    via the phase layer.
    """

    def program(ctx: Context):
        me = ctx.node_id
        children = [v for v in range(ctx.n) if parents[v] == me]
        acc = ctx.input
        pending = set(children)
        # --- convergecast: wait for all children, then send up. ---
        sent_up = me == root and not pending
        for _ in range(ctx.n):
            outbox = Outbox.silent()
            if (
                not pending
                and not sent_up
                and me != root
                and parents[me] is not None
            ):
                writer = BitWriter()
                writer.write_uint(acc, value_bits)
                frames = writer.getvalue()
                # value_bits <= bandwidth is enforced by the caller.
                outbox = Outbox.unicast({parents[me]: frames})
                sent_up = True
            inbox = yield outbox
            for sender, payload in inbox.items():
                if sender in pending:
                    acc = combine(acc, BitReader(payload).read_uint(value_bits))
                    pending.discard(sender)
        # --- broadcast down. ---
        total = acc if me == root else None
        announced = False
        for _ in range(ctx.n):
            outbox = Outbox.silent()
            if total is not None and not announced and children:
                payload = Bits.from_uint(total, value_bits)
                outbox = Outbox.unicast({c: payload for c in children})
                announced = True
            elif total is not None and not announced:
                announced = True
            inbox = yield outbox
            for sender, payload in inbox.items():
                if sender == parents[me] and total is None:
                    total = BitReader(payload).read_uint(value_bits)
        return total

    return program


def aggregate_sum(
    graph: Graph,
    values: Sequence[int],
    root: int = 0,
    value_bits: int = 16,
    seed: int = 0,
) -> Tuple[int, RunResult]:
    """Sum all per-node values over a BFS tree; returns (total, result)."""
    parents, _depths, _ = bfs_tree(graph, root)
    topology = [sorted(graph.neighbors(v)) for v in range(graph.n)]
    network = Network(
        n=graph.n,
        bandwidth=value_bits,
        mode=Mode.CONGEST,
        topology=topology,
        seed=seed,
    )
    program = aggregate_program(root, parents, lambda a, b: a + b, value_bits)
    result = network.run(program, inputs=list(values))
    total = result.outputs[root]
    assert all(out == total for out in result.outputs if out is not None)
    return total, result
