"""Gossip (flooding) over the input graph, and cut-bit accounting.

Theorem 19's CONGEST half rests on a cut argument: any protocol solving
H-detection over a δ-sparse lower-bound graph pushes all the
disjointness information through the N cut edges, so rounds >=
|E_F|/(cut·b).  This module supplies the *executable* counterpart:

* :func:`gossip_rows_program` — the generic CONGEST detection strategy
  (every node floods every adjacency row it learns until quiescence,
  then decides locally).  It is the CONGEST analogue of the trivial
  full-learning clique algorithm.
* :func:`cut_bits` — charge a recorded transcript against a vertex
  partition, measuring exactly the quantity the lower bound budgets.

Running the gossip detector on a Lemma 18 instance and measuring its
cut traffic demonstrates the inequality live: the measured cut bits
always dominate what the disjointness instance requires.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.bits import BitReader, Bits, BitWriter
from repro.core.network import Context, Mode, Network, Outbox, RunResult
from repro.graphs.graph import Graph
from repro.graphs.subgraph_iso import find_embedding

__all__ = ["gossip_rows_program", "gossip_detect", "cut_bits"]


def _row_message(node: int, row: int, n: int) -> Bits:
    writer = BitWriter()
    writer.write_uint(node, max(1, (n - 1).bit_length()))
    writer.write_uint(row, n)
    return writer.getvalue()


def _parse_rows(payload: Bits, n: int) -> Iterable[Tuple[int, int]]:
    reader = BitReader(payload)
    entry = max(1, (n - 1).bit_length()) + n
    while reader.remaining >= entry:
        node = reader.read_uint(max(1, (n - 1).bit_length()))
        row = reader.read_uint(n)
        yield node, row


def gossip_rows_program(pattern: Graph, max_phases: Optional[int] = None):
    """Flood adjacency rows until everyone knows every reachable row,
    then search the reconstructed graph locally.

    ``ctx.input`` = this node's neighbour collection.  Each phase every
    node forwards the rows it newly learned (chunked to the bandwidth).
    After n phases every row has crossed every shortest path; nodes
    decide and halt.
    """

    def program(ctx: Context):
        n = ctx.n
        me = ctx.node_id
        my_row = 0
        for u in ctx.input:
            my_row |= 1 << u
        known: Dict[int, int] = {me: my_row}
        fresh: List[Tuple[int, int]] = [(me, my_row)]
        entry_bits = max(1, (n - 1).bit_length()) + n
        phases = max_phases if max_phases is not None else n

        for _phase in range(phases):
            # serialise the fresh rows once, then drip them out in
            # bandwidth-sized frames to every neighbour in lockstep.
            writer = BitWriter()
            for node, row in fresh:
                writer.write_uint(node, max(1, (n - 1).bit_length()))
                writer.write_uint(row, n)
            payload = writer.getvalue()
            fresh = []
            frames = payload.chunks(ctx.bandwidth) if len(payload) else []
            # all nodes agree on the phase length: the worst case is
            # every row fresh at once.
            worst = -(-(n * entry_bits) // ctx.bandwidth)
            received_parts: Dict[int, List[Bits]] = {}
            for r in range(worst):
                if r < len(frames):
                    outbox = Outbox.unicast(
                        {u: frames[r] for u in ctx.neighbors}
                    )
                else:
                    outbox = Outbox.silent()
                inbox = yield outbox
                for sender, frame in inbox.items():
                    received_parts.setdefault(sender, []).append(frame)
            for sender, parts in received_parts.items():
                for node, row in _parse_rows(Bits.concat(parts), n):
                    if node not in known:
                        known[node] = row
                        fresh.append((node, row))

        graph = Graph(n)
        for node, row in known.items():
            for u in range(n):
                if (row >> u) & 1 and node != u:
                    graph.add_edge(node, u)
        embedding = find_embedding(graph, pattern)
        return embedding is not None

    return program


def gossip_detect(
    graph: Graph,
    pattern: Graph,
    bandwidth: int,
    seed: int = 0,
    record_transcript: bool = True,
) -> Tuple[bool, RunResult]:
    """Run the gossip detector over ``graph``'s own edges."""
    topology = [sorted(graph.neighbors(v)) for v in range(graph.n)]
    network = Network(
        n=graph.n,
        bandwidth=bandwidth,
        mode=Mode.CONGEST,
        topology=topology,
        seed=seed,
        record_transcript=record_transcript,
    )
    inputs = [graph.neighbors(v) for v in range(graph.n)]
    result = network.run(
        gossip_rows_program(pattern, max_phases=graph.n), inputs=inputs
    )
    found = any(result.outputs)
    return found, result


def cut_bits(result: RunResult, side_a: Set[int]) -> int:
    """Bits that crossed the (A, V∖A) cut in a recorded transcript —
    the budget Theorem 19's CONGEST bound divides by."""
    if result.transcript is None:
        raise ValueError("run the network with record_transcript=True")
    total = 0
    for record in result.transcript:
        for sender, receiver, payload in record.sends:
            if receiver is None:
                raise ValueError("cut accounting expects unicast transcripts")
            if (sender in side_a) != (receiver in side_a):
                total += len(payload)
    return total
