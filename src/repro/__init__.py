"""repro — a reproduction of Drucker, Kuhn & Oshman,
"On the Power of the Congested Clique Model" (PODC 2014).

The package provides executable, bit-accounting simulators for the
CLIQUE-UCAST, CLIQUE-BCAST and CONGEST models, every algorithm the paper
describes (circuit simulation, subgraph detection, triangle detection),
and every lower-bound construction (Definition 10 graphs, the
Ruzsa–Szemerédi/NOF reduction, the non-explicit counting bound) as
concrete, machine-verified objects.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
theorem-by-theorem reproduction record.
"""

__version__ = "1.0.0"

from repro.core import (
    Bits,
    Context,
    Inbox,
    Mode,
    Network,
    Outbox,
    RunResult,
    run_protocol,
)
from repro.graphs import Graph

__all__ = [
    "__version__",
    "Bits",
    "Mode",
    "Network",
    "Context",
    "Inbox",
    "Outbox",
    "RunResult",
    "run_protocol",
    "Graph",
]
