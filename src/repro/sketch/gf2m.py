"""Arithmetic in the binary extension fields GF(2^m).

This is the algebra underneath the deterministic one-round graph
reconstruction of Becker et al. [2] as we implement it (DESIGN.md
substitution #2): node neighbourhoods are encoded as BCH-style power-sum
syndromes over GF(2^m), which decode any set of size <= k from O(k·m)
bits.  Elements are plain Python ints in [0, 2^m); addition is XOR.

Multiplication uses precomputed log/antilog tables: every tabulated
field has at most 2^16 elements, so ``exp``/``log`` arrays over a
primitive element fit comfortably in memory and turn the shift-and-xor
reduction loop into two lookups and one modular add.  The tables are
built lazily (first multiply) and shared process-wide per degree; the
carry-less loop survives as :meth:`GF2m.mul_slow`, the executable
reference the test suite cross-checks the tables against.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["GF2m", "IRREDUCIBLE_POLYS"]

# Process-wide (exp, log) tables keyed by degree m; built on the first
# multiply in GF(2^m) and shared by every GF2m(m) instance thereafter.
_TABLE_CACHE: Dict[int, Tuple[List[int], List[int]]] = {}

# One irreducible polynomial per degree, represented as an int whose bits
# are coefficients (bit m = x^m term).  Standard low-weight choices.
IRREDUCIBLE_POLYS: Dict[int, int] = {
    1: 0b11,                 # x + 1
    2: 0b111,                # x^2 + x + 1
    3: 0b1011,               # x^3 + x + 1
    4: 0b10011,              # x^4 + x + 1
    5: 0b100101,             # x^5 + x^2 + 1
    6: 0b1000011,            # x^6 + x + 1
    7: 0b10000011,           # x^7 + x + 1
    8: 0b100011011,          # x^8 + x^4 + x^3 + x + 1
    9: 0b1000010001,         # x^9 + x^4 + 1
    10: 0b10000001001,       # x^10 + x^3 + 1
    11: 0b100000000101,      # x^11 + x^2 + 1
    12: 0b1000001010011,     # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,    # x^13 + x^4 + x^3 + x + 1
    14: 0b100000101000011,   # x^14 + x^8 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0b10001000000001011, # x^16 + x^12 + x^3 + x + 1
}


class GF2m:
    """The field GF(2^m) with fixed irreducible modulus."""

    __slots__ = ("m", "modulus", "order", "_mask", "_exp", "_log")

    def __init__(self, m: int) -> None:
        if m not in IRREDUCIBLE_POLYS:
            raise ValueError(f"no modulus tabulated for GF(2^{m})")
        self.m = m
        self.modulus = IRREDUCIBLE_POLYS[m]
        self.order = 1 << m
        self._mask = self.order - 1
        cached = _TABLE_CACHE.get(m)
        if cached is not None:
            self._exp, self._log = cached
        else:
            self._exp = self._log = None

    # Addition and subtraction coincide in characteristic 2.
    @staticmethod
    def add(a: int, b: int) -> int:
        return a ^ b

    def mul_slow(self, a: int, b: int) -> int:
        """Carry-less multiplication followed by modular reduction — the
        table-free reference used to build the log/antilog tables (and
        to cross-check them in the tests)."""
        result = 0
        while b:
            if b & 1:
                result ^= a
            b >>= 1
            a <<= 1
            if a & self.order:
                a ^= self.modulus
        return result & self._mask

    def _build_tables(self) -> List[int]:
        """Find a primitive element and tabulate exp/log; returns log."""
        cached = _TABLE_CACHE.get(self.m)
        if cached is not None:
            # Another instance built the tables after we were constructed.
            self._exp, self._log = cached
            return self._log
        span = self.order - 1
        if span == 1:  # GF(2): the empty product, 1 generates {1}
            _TABLE_CACHE[self.m] = ([1], [-1, 0])
            self._exp, self._log = _TABLE_CACHE[self.m]
            return self._log
        for candidate in range(2, self.order):
            exp = [1] * span
            log = [-1] * self.order
            log[1] = 0
            acc = 1
            ok = True
            for i in range(1, span):
                acc = self.mul_slow(acc, candidate)
                if log[acc] != -1:
                    ok = False  # cycled early: candidate not primitive
                    break
                exp[i] = acc
                log[acc] = i
            if ok and self.mul_slow(acc, candidate) == 1:
                _TABLE_CACHE[self.m] = (exp, log)
                self._exp, self._log = exp, log
                return log
        raise AssertionError(
            f"no primitive element in GF(2^{self.m})"
        )  # pragma: no cover - every finite field has one

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog lookup (the fast path
        Becker-reconstruction decoding is dominated by)."""
        if not a or not b:
            return 0
        log = self._log
        if log is None:
            log = self._build_tables()
        return self._exp[(log[a] + log[b]) % (self.order - 1)]

    def square(self, a: int) -> int:
        return self.mul(a, a)

    def pow(self, a: int, exponent: int) -> int:
        if exponent < 0:
            return self.pow(self.inv(a), -exponent)
        result = 1
        base = a
        while exponent:
            if exponent & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            exponent >>= 1
        return result

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^m)")
        # a^(2^m - 2) = a^{-1} by Fermat.
        return self.pow(a, self.order - 2)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    # -- polynomial helpers (coefficient lists, index = degree) ----------

    def poly_eval(self, coeffs: List[int], x: int) -> int:
        """Evaluate sum(coeffs[i] * x^i) by Horner's rule."""
        acc = 0
        for c in reversed(coeffs):
            acc = self.mul(acc, x) ^ c
        return acc

    def validate(self, a: int) -> None:
        if not 0 <= a < self.order:
            raise ValueError(f"{a} is not an element of GF(2^{self.m})")


def field_for_universe(max_element: int) -> GF2m:
    """The smallest tabulated field whose nonzero elements cover
    1..max_element."""
    m = max(2, max_element.bit_length())
    if m not in IRREDUCIBLE_POLYS:
        raise ValueError(f"universe too large: need GF(2^{m})")
    return GF2m(m)
