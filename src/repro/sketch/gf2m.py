"""Arithmetic in the binary extension fields GF(2^m).

This is the algebra underneath the deterministic one-round graph
reconstruction of Becker et al. [2] as we implement it (DESIGN.md
substitution #2): node neighbourhoods are encoded as BCH-style power-sum
syndromes over GF(2^m), which decode any set of size <= k from O(k·m)
bits.  Elements are plain Python ints in [0, 2^m); addition is XOR.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["GF2m", "IRREDUCIBLE_POLYS"]

# One irreducible polynomial per degree, represented as an int whose bits
# are coefficients (bit m = x^m term).  Standard low-weight choices.
IRREDUCIBLE_POLYS: Dict[int, int] = {
    1: 0b11,                 # x + 1
    2: 0b111,                # x^2 + x + 1
    3: 0b1011,               # x^3 + x + 1
    4: 0b10011,              # x^4 + x + 1
    5: 0b100101,             # x^5 + x^2 + 1
    6: 0b1000011,            # x^6 + x + 1
    7: 0b10000011,           # x^7 + x + 1
    8: 0b100011011,          # x^8 + x^4 + x^3 + x + 1
    9: 0b1000010001,         # x^9 + x^4 + 1
    10: 0b10000001001,       # x^10 + x^3 + 1
    11: 0b100000000101,      # x^11 + x^2 + 1
    12: 0b1000001010011,     # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,    # x^13 + x^4 + x^3 + x + 1
    14: 0b100000101000011,   # x^14 + x^8 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0b10001000000001011, # x^16 + x^12 + x^3 + x + 1
}


class GF2m:
    """The field GF(2^m) with fixed irreducible modulus."""

    __slots__ = ("m", "modulus", "order", "_mask")

    def __init__(self, m: int) -> None:
        if m not in IRREDUCIBLE_POLYS:
            raise ValueError(f"no modulus tabulated for GF(2^{m})")
        self.m = m
        self.modulus = IRREDUCIBLE_POLYS[m]
        self.order = 1 << m
        self._mask = self.order - 1

    # Addition and subtraction coincide in characteristic 2.
    @staticmethod
    def add(a: int, b: int) -> int:
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Carry-less multiplication followed by modular reduction."""
        result = 0
        while b:
            if b & 1:
                result ^= a
            b >>= 1
            a <<= 1
            if a & self.order:
                a ^= self.modulus
        return result & self._mask

    def square(self, a: int) -> int:
        return self.mul(a, a)

    def pow(self, a: int, exponent: int) -> int:
        if exponent < 0:
            return self.pow(self.inv(a), -exponent)
        result = 1
        base = a
        while exponent:
            if exponent & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            exponent >>= 1
        return result

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^m)")
        # a^(2^m - 2) = a^{-1} by Fermat.
        return self.pow(a, self.order - 2)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    # -- polynomial helpers (coefficient lists, index = degree) ----------

    def poly_eval(self, coeffs: List[int], x: int) -> int:
        """Evaluate sum(coeffs[i] * x^i) by Horner's rule."""
        acc = 0
        for c in reversed(coeffs):
            acc = self.mul(acc, x) ^ c
        return acc

    def validate(self, a: int) -> None:
        if not 0 <= a < self.order:
            raise ValueError(f"{a} is not an element of GF(2^{self.m})")


def field_for_universe(max_element: int) -> GF2m:
    """The smallest tabulated field whose nonzero elements cover
    1..max_element."""
    m = max(2, max_element.bit_length())
    if m not in IRREDUCIBLE_POLYS:
        raise ValueError(f"universe too large: need GF(2^{m})")
    return GF2m(m)
