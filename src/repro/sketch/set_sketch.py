"""Deterministic set sketches from BCH power-sum syndromes.

A :class:`SetSketch` of capacity ``t`` over GF(2^m) stores, for a set
S of *nonzero* field elements, the odd power sums

    S_1, S_3, ..., S_{2t-1},      S_j = sum_{x in S} x^j,

which is t·m bits.  In characteristic 2 the even power sums follow by
squaring (S_{2j} = S_j²), so the sketch determines S_1..S_{2t}; by the
classical BCH argument these uniquely determine S whenever |S| <= t, and
Berlekamp–Massey plus a root scan over the universe recovers it.

Sketches support exact deletion (toggling) — the property the Becker
et al. peeling decoder relies on: once an edge is learned from one
endpoint, it is subtracted from the other endpoint's sketch, shrinking
that sketch's effective load until it, too, becomes decodable.

Elements must be nonzero (0 is invisible to power sums); callers encode
vertex v as field element v+1.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.core.bits import BitReader, Bits, BitWriter
from repro.sketch.berlekamp_massey import berlekamp_massey
from repro.sketch.gf2m import GF2m

__all__ = ["SetSketch"]


class SetSketch:
    """Power-sum syndrome sketch of a set of nonzero GF(2^m) elements."""

    __slots__ = ("field", "capacity", "_odd_syndromes")

    def __init__(
        self,
        field: GF2m,
        capacity: int,
        elements: Iterable[int] = (),
        _syndromes: Optional[List[int]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.field = field
        self.capacity = capacity
        if _syndromes is not None:
            self._odd_syndromes = list(_syndromes)
        else:
            self._odd_syndromes = [0] * capacity
            for x in elements:
                self.toggle(x)

    def copy(self) -> "SetSketch":
        return SetSketch(
            self.field, self.capacity, _syndromes=self._odd_syndromes
        )

    def toggle(self, x: int) -> None:
        """Insert x if absent, delete it if present (XOR semantics)."""
        if x == 0:
            raise ValueError("0 cannot be sketched (invisible to power sums)")
        self.field.validate(x)
        power = x
        square = self.field.square(x)
        for j in range(self.capacity):
            self._odd_syndromes[j] ^= power
            power = self.field.mul(power, square)

    def is_zero(self) -> bool:
        return not any(self._odd_syndromes)

    def merge(self, other: "SetSketch") -> None:
        """XOR in another sketch (symmetric difference of the sets)."""
        if other.capacity != self.capacity or other.field.m != self.field.m:
            raise ValueError("sketch shape mismatch")
        for j in range(self.capacity):
            self._odd_syndromes[j] ^= other._odd_syndromes[j]

    # -- decoding ---------------------------------------------------------

    def _full_syndromes(self) -> List[int]:
        """S_1..S_{2t}, index i holding S_{i+1}; evens from squaring."""
        two_t = 2 * self.capacity
        syndromes = [0] * two_t
        for j in range(self.capacity):
            syndromes[2 * j] = self._odd_syndromes[j]
        for even in range(2, two_t + 1, 2):
            half = even // 2
            syndromes[even - 1] = self.field.square(syndromes[half - 1])
        return syndromes

    def decode(
        self,
        universe: Sequence[int],
        expected_size: Optional[int] = None,
    ) -> Optional[Set[int]]:
        """Recover the sketched set, searching roots in ``universe``.

        Guarantees (the classical BCH radius):

        * if the true set has size <= capacity, it is returned exactly —
          any other size-<= capacity set would differ on some syndrome
          (their symmetric difference has <= 2t elements, and a nonempty
          set of <= 2t elements cannot have 2t vanishing power sums);
        * if the true set is *larger* than the capacity, the decoder
          returns None **or a plausible decoy**: a different
          size-<= capacity set with identical syndromes (decoding beyond
          the radius, as in any BCH code).  Callers that know the true
          cardinality — like the Becker peeling decoder, which tracks
          residual degrees — must pass ``expected_size`` to reject
          decoys; with ``expected_size <= capacity`` the answer is
          unconditionally correct.
        """
        if expected_size is not None and expected_size > self.capacity:
            return None
        if self.is_zero():
            return set() if expected_size in (None, 0) else None
        syndromes = self._full_syndromes()
        locator = berlekamp_massey(self.field, syndromes)
        degree = len(locator) - 1
        if degree == 0 or degree > self.capacity:
            return None
        if expected_size is not None and degree != expected_size:
            return None
        roots: Set[int] = set()
        for x in universe:
            if x == 0:
                continue
            if self.field.poly_eval(locator, self.field.inv(x)) == 0:
                roots.add(x)
        if len(roots) != degree:
            return None
        verification = SetSketch(self.field, self.capacity, roots)
        if verification._odd_syndromes != self._odd_syndromes:
            return None
        return roots

    # -- serialization ------------------------------------------------------

    def bit_size(self) -> int:
        return self.capacity * self.field.m

    def to_bits(self) -> Bits:
        writer = BitWriter()
        for syndrome in self._odd_syndromes:
            writer.write_uint(syndrome, self.field.m)
        return writer.getvalue()

    @classmethod
    def from_bits(cls, field: GF2m, capacity: int, bits: Bits) -> "SetSketch":
        reader = BitReader(bits)
        syndromes = [reader.read_uint(field.m) for _ in range(capacity)]
        return cls(field, capacity, _syndromes=syndromes)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SetSketch)
            and self.capacity == other.capacity
            and self.field.m == other.field.m
            and self._odd_syndromes == other._odd_syndromes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SetSketch(capacity={self.capacity}, m={self.field.m})"
