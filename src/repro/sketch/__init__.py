"""Deterministic set sketches over GF(2^m) (BCH power-sum syndromes)."""

from repro.sketch.berlekamp_massey import berlekamp_massey
from repro.sketch.gf2m import GF2m, IRREDUCIBLE_POLYS, field_for_universe
from repro.sketch.set_sketch import SetSketch

__all__ = [
    "GF2m",
    "IRREDUCIBLE_POLYS",
    "field_for_universe",
    "berlekamp_massey",
    "SetSketch",
]
