"""Massey's algorithm over GF(2^m).

Given a sequence s_0, s_1, ..., s_{N-1}, find the shortest linear
recurrence s_j = sum_{i=1}^{L} c_i * s_{j-i} (valid for L <= j < N) and
return its connection polynomial C(x) = 1 + c_1 x + ... + c_L x^L.

For BCH syndromes S_1..S_{2t} of a set of d <= t field elements, the
connection polynomial equals the error-locator polynomial
Λ(x) = Π(1 - X_i x); its roots are the inverses of the set elements.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sketch.gf2m import GF2m

__all__ = ["berlekamp_massey"]


def berlekamp_massey(field: GF2m, sequence: Sequence[int]) -> List[int]:
    """Connection polynomial of the minimal LFSR generating ``sequence``.

    Returns coefficient list ``c`` with ``c[0] == 1``; degree = LFSR
    length L.
    """
    c = [1]  # current connection polynomial
    b = [1]  # previous connection polynomial (before last length change)
    length = 0
    shift = 1  # number of steps since last length change
    last_discrepancy = 1
    for n, s_n in enumerate(sequence):
        # discrepancy d = s_n + sum_{i=1..L} c_i * s_{n-i}
        d = s_n
        for i in range(1, length + 1):
            if i < len(c) and c[i]:
                d ^= field.mul(c[i], sequence[n - i])
        if d == 0:
            shift += 1
            continue
        coefficient = field.mul(d, field.inv(last_discrepancy))
        # c(x) -= coefficient * x^shift * b(x)
        adjusted = [0] * shift + [field.mul(coefficient, bi) for bi in b]
        if 2 * length <= n:
            old_c = list(c)
            length = n + 1 - length
            b = old_c
            last_discrepancy = d
            new_len = max(len(c), len(adjusted))
            c = [
                (c[i] if i < len(c) else 0) ^ (adjusted[i] if i < len(adjusted) else 0)
                for i in range(new_len)
            ]
            shift = 1
        else:
            new_len = max(len(c), len(adjusted))
            c = [
                (c[i] if i < len(c) else 0) ^ (adjusted[i] if i < len(adjusted) else 0)
                for i in range(new_len)
            ]
            shift += 1
    # Trim trailing zeros but keep at least the constant term.
    while len(c) > 1 and c[-1] == 0:
        c.pop()
    return c
