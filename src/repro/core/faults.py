"""Deterministic fault injection for the congested clique.

The paper's model assumes perfectly reliable all-to-all links; a
production service does not get that luxury.  This module lets any run
execute under a *chaos schedule* — dropped, corrupted, duplicated,
delayed messages and crashed (send-omitting) nodes — that is a pure
function of a seed and the message coordinates, so the **same fault
schedule** hits a protocol no matter which engine executes it and no
matter in which order the engine touches the messages.

Design
------

* :class:`FaultPlan` is the immutable description: per-kind
  probabilities, explicit ``(round, src, dst) -> kind`` triggers, a
  round window, and crash parameters.  Every decision is derived by
  hashing ``seed | kind | round | src | dst`` (sha256), never by
  consuming a shared RNG stream — two engines that deliver the same
  logical messages reach identical decisions even if they iterate
  receivers in different orders or batch instances differently.
* :class:`FaultSession` is the per-run applicator: it mutates delivered
  inboxes *after* the wire delivery (bits are charged for what was
  sent, exactly as a real lossy network charges the sender), records
  every injected fault as a :class:`FaultEvent`, and carries the
  delayed-delivery queue between rounds.
* :class:`FaultyDeliveryBackend` is the drop-in
  :class:`~repro.core.engine.delivery.DeliveryBackend` that applies the
  session to its scalar inbox buffers — the plug-in point the fast
  engine uses; the legacy loop and the kernel executor call the session
  directly on their own buffers.

Semantics
---------

Faults are *receive-side*: the transcript and the bit accounting record
what was put on the wire, then the plan decides what each receiver
actually sees.  In broadcast mode a fault is keyed ``(round, src,
dst=None)`` and hits **all** receivers identically (one blackboard word
has one fate — per-receiver divergence of a broadcast is not expressible
in the kernel path and is therefore not expressible at all).

A crashed node suffers send omission: from its crash round onward none
of its messages are delivered.  Its program keeps running locally (crash
≠ halt in this model), which keeps round structure engine-independent.

Scalar engines (legacy, fast) implement all five kinds exactly.  The
kernel path exposes inboxes as structure-indexed matrices, so a dropped
slot reads as ``present=False`` with a zeroed payload, and a
delayed/duplicated payload only resurfaces when a later round's declared
structure carries the same link; the recorded *schedule* (the
:class:`FaultEvent` list) is identical across engines even where the
observable effect is capability-limited — divergence between engines
under faults is exactly what ``verify="cross-engine"`` sweeps exist to
surface.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.bits import Bits
from repro.core.engine.delivery import DeliveryBackend
from repro.core.errors import FaultInjectionError

__all__ = ["FaultEvent", "FaultPlan", "FaultSession", "FaultyDeliveryBackend"]

#: Fault kinds a plan may inject, in decision-priority order: an
#: explicit trigger wins, then the first probabilistic kind whose coin
#: lands decides (one fault per message per round).
FAULT_KINDS = ("drop", "corrupt", "duplicate", "delay", "crash")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what happened to which message.

    ``dst`` is ``None`` for broadcast words and for crash events.
    ``detail`` is kind-specific: the flipped bit index for ``corrupt``,
    the delivery round for ``duplicate``/``delay``, ``None`` otherwise.
    """

    round: int
    src: int
    dst: Optional[int]
    kind: str
    detail: Optional[int] = None

    def key(self) -> Tuple[int, int, int, str]:
        """Canonical per-round sort key (engine-order independent)."""
        return (self.round, self.src, -1 if self.dst is None else self.dst, self.kind)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "round": self.round,
            "src": self.src,
            "dst": self.dst,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic chaos schedule.

    Parameters
    ----------
    seed:
        Hash seed; two plans with equal parameters produce identical
        schedules everywhere.
    drop_rate, corrupt_rate, duplicate_rate, delay_rate:
        Per-message per-round probabilities in ``[0, 1]``.  Decisions
        are independent coins hashed from the message coordinates.
    crash_rate:
        Per-node probability of crashing; a crashed node's crash round
        is drawn uniformly from ``[1, crash_horizon]`` and from then on
        all of its sends are omitted.
    crashes:
        Explicit ``{node: crash_round}`` overrides (applied regardless
        of ``crash_rate``).
    triggers:
        Explicit ``{(round, src, dst): kind}`` faults; ``dst=None``
        targets a broadcast word.  Rounds are 1-based, matching
        :class:`~repro.core.network.RunResult.rounds`.
    from_round, until_round:
        Inclusive round window outside which no probabilistic fault
        fires (triggers are always honoured).
    delay_rounds:
        How many rounds later a delayed or duplicated payload is
        re-delivered (into the slot only if it is empty — a fresh
        message always wins).
    """

    seed: int = 0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    crash_rate: float = 0.0
    crash_horizon: int = 16
    crashes: Dict[int, int] = field(default_factory=dict)
    triggers: Dict[Tuple[int, int, Optional[int]], str] = field(default_factory=dict)
    from_round: int = 1
    until_round: Optional[int] = None
    delay_rounds: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`FaultInjectionError` on a malformed plan."""
        for name in ("drop_rate", "corrupt_rate", "duplicate_rate", "delay_rate", "crash_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(f"{name} must be in [0, 1], got {rate!r}")
        if self.crash_horizon < 1:
            raise FaultInjectionError("crash_horizon must be at least 1 round")
        if self.delay_rounds < 1:
            raise FaultInjectionError("delay_rounds must be at least 1 round")
        if self.from_round < 1:
            raise FaultInjectionError("from_round is 1-based, must be >= 1")
        if self.until_round is not None and self.until_round < self.from_round:
            raise FaultInjectionError("until_round must be >= from_round")
        for coord, kind in self.triggers.items():
            if kind not in FAULT_KINDS or kind == "crash":
                raise FaultInjectionError(
                    f"trigger {coord!r} names unknown fault kind {kind!r}; "
                    f"use one of {FAULT_KINDS[:-1]} (crashes go in `crashes`)"
                )
            if len(coord) != 3 or coord[0] < 1:
                raise FaultInjectionError(
                    f"trigger key {coord!r} must be (round>=1, src, dst-or-None)"
                )
        for node, crash_round in self.crashes.items():
            if crash_round < 1:
                raise FaultInjectionError(
                    f"crash round for node {node} must be >= 1, got {crash_round}"
                )

    @property
    def is_active(self) -> bool:
        """False for the no-op plan — the zero-overhead fast path: an
        inactive plan never allocates a session, so runs behave exactly
        as if no plan were installed."""
        return bool(
            self.drop_rate
            or self.corrupt_rate
            or self.duplicate_rate
            or self.delay_rate
            or self.crash_rate
            or self.crashes
            or self.triggers
        )

    # -- deterministic coins --------------------------------------------

    def _coin(self, label: str, round_index: int, src: int, dst: Optional[int]) -> float:
        """Uniform in ``[0, 1)``, a pure function of the coordinates —
        no stream, no ordering sensitivity."""
        key = f"{self.seed}|{label}|{round_index}|{src}|{-1 if dst is None else dst}"
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:7], "big") / float(1 << 56)

    def fault_for(self, round_index: int, src: int, dst: Optional[int]) -> Optional[str]:
        """The fault kind (if any) hitting the message ``src -> dst`` in
        ``round_index``; ``dst=None`` is a broadcast word."""
        trigger = self.triggers.get((round_index, src, dst))
        if trigger is not None:
            return trigger
        if round_index < self.from_round:
            return None
        if self.until_round is not None and round_index > self.until_round:
            return None
        if self.drop_rate and self._coin("drop", round_index, src, dst) < self.drop_rate:
            return "drop"
        if self.corrupt_rate and self._coin("corrupt", round_index, src, dst) < self.corrupt_rate:
            return "corrupt"
        if self.duplicate_rate and self._coin("duplicate", round_index, src, dst) < self.duplicate_rate:
            return "duplicate"
        if self.delay_rate and self._coin("delay", round_index, src, dst) < self.delay_rate:
            return "delay"
        return None

    def corrupt_bit(self, round_index: int, src: int, dst: Optional[int], width: int) -> int:
        """Which bit a ``corrupt`` fault flips (deterministic, < width)."""
        return min(width - 1, int(self._coin("bit", round_index, src, dst) * width))

    def crash_round(self, node: int) -> Optional[int]:
        """The round from which ``node`` omits all sends, or ``None``."""
        explicit = self.crashes.get(node)
        if explicit is not None:
            return explicit
        if self.crash_rate and self._coin("crash?", 0, node, None) < self.crash_rate:
            return 1 + int(self._coin("crash@", 0, node, None) * self.crash_horizon)
        return None

    # -- session / serialization ----------------------------------------

    def session(self, network: Any) -> Optional["FaultSession"]:
        """A fresh per-run :class:`FaultSession`, or ``None`` when the
        plan is inactive (the zero-overhead path)."""
        if not self.is_active:
            return None
        return FaultSession(self, network.n, network.mode.value == "broadcast")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "corrupt_rate": self.corrupt_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
            "crash_rate": self.crash_rate,
            "crash_horizon": self.crash_horizon,
            "crashes": {str(k): v for k, v in sorted(self.crashes.items())},
            "triggers": {
                f"{r}:{s}:{'*' if d is None else d}": kind
                for (r, s, d), kind in sorted(
                    self.triggers.items(),
                    key=lambda item: (item[0][0], item[0][1], -1 if item[0][2] is None else item[0][2]),
                )
            },
            "from_round": self.from_round,
            "until_round": self.until_round,
            "delay_rounds": self.delay_rounds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; raises
        :class:`~repro.core.errors.FaultInjectionError` on malformed
        input (unknown keys, unparseable trigger coordinates) so a plan
        read from disk either round-trips exactly or fails loudly."""
        known = {
            "seed", "drop_rate", "corrupt_rate", "duplicate_rate",
            "delay_rate", "crash_rate", "crash_horizon", "crashes",
            "triggers", "from_round", "until_round", "delay_rounds",
        }
        unknown = set(data) - known
        if unknown:
            raise FaultInjectionError(
                f"unknown FaultPlan fields {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        try:
            kwargs["crashes"] = {
                int(node): int(crash_round)
                for node, crash_round in data.get("crashes", {}).items()
            }
            triggers: Dict[Tuple[int, int, Optional[int]], str] = {}
            for coord, kind in data.get("triggers", {}).items():
                r, s, d = coord.split(":")
                triggers[(int(r), int(s), None if d == "*" else int(d))] = kind
            kwargs["triggers"] = triggers
        except (ValueError, AttributeError) as exc:
            raise FaultInjectionError(
                f"malformed FaultPlan serialization: {exc}"
            ) from exc
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON encoding — the form chaos plans cross process
        boundaries and land in sweep journals in."""
        import json

        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`: ``FaultPlan.from_json(p.to_json())``
        equals ``p`` and produces the identical fault schedule."""
        import json

        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultInjectionError(f"FaultPlan JSON does not parse: {exc}") from exc
        if not isinstance(data, dict):
            raise FaultInjectionError(
                f"FaultPlan JSON must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data)


class FaultSession:
    """Per-run fault state: the event log, the delayed-delivery queue
    and the precomputed crash schedule.  One session serves exactly one
    run (``run_many`` instances executed under faults each get their
    own), so the event list is that run's complete, canonical fault
    record: per round, events are sorted by ``(src, dst, kind)`` no
    matter in which order the engine touched the messages.
    """

    __slots__ = ("plan", "n", "broadcast_mode", "events", "_delayed", "_crash_rounds", "_round_events")

    def __init__(self, plan: FaultPlan, n: int, broadcast_mode: bool) -> None:
        self.plan = plan
        self.n = n
        self.broadcast_mode = broadcast_mode
        self.events: List[FaultEvent] = []
        self._delayed: Dict[int, List[Tuple[int, Optional[int], Any]]] = {}
        self._crash_rounds: Dict[int, int] = {}
        for v in range(n):
            crash = plan.crash_round(v)
            if crash is not None:
                self._crash_rounds[v] = crash
        self._round_events: List[FaultEvent] = []

    # -- shared bookkeeping ---------------------------------------------

    def _record(self, round_index: int, src: int, dst: Optional[int], kind: str, detail: Optional[int]) -> None:
        self._round_events.append(FaultEvent(round_index, src, dst, kind, detail))

    def _record_crashes(self, round_index: int) -> None:
        for v, crash in self._crash_rounds.items():
            if crash == round_index:
                self._record(round_index, v, None, "crash", None)

    def _seal_round(self) -> None:
        if self._round_events:
            self._round_events.sort(key=FaultEvent.key)
            self.events.extend(self._round_events)
            self._round_events = []

    def _stash(self, round_index: int, src: int, dst: Optional[int], payload: Any) -> None:
        due = round_index + self.plan.delay_rounds
        self._delayed.setdefault(due, []).append((src, dst, payload))

    # -- scalar path (legacy engine, fast engine) ------------------------

    def apply_scalar(self, round_index: int, inbox_dicts: Any) -> None:
        """Mutate the per-receiver inbox dicts of one delivered round.

        ``inbox_dicts`` is indexable by receiver id (the legacy loop's
        dict-of-dicts and the delivery backend's list both qualify).
        """
        boxes = [inbox_dicts[v] for v in range(self.n)]
        self._record_crashes(round_index)
        if self.broadcast_mode:
            self._apply_scalar_broadcast(round_index, boxes)
        else:
            self._apply_scalar_unicast(round_index, boxes)
        due = self._delayed.pop(round_index, None)
        if due:
            # Late payloads fill only empty slots: a fresh message from
            # the same sender always wins over a stale one.
            for src, dst, payload in due:
                if dst is None:
                    for v, box in enumerate(boxes):
                        if v != src:
                            box.setdefault(src, payload)
                else:
                    boxes[dst].setdefault(src, payload)
        self._seal_round()

    def _apply_scalar_broadcast(self, round_index: int, boxes: List[Dict[int, Bits]]) -> None:
        senders: set = set()
        for box in boxes:
            senders.update(box)
        for src in sorted(senders):
            crash = self._crash_rounds.get(src)
            if crash is not None and round_index >= crash:
                for box in boxes:
                    box.pop(src, None)
                continue
            kind = self.plan.fault_for(round_index, src, None)
            if kind is None:
                continue
            payload = next(box[src] for box in boxes if src in box)
            if kind == "drop":
                for box in boxes:
                    box.pop(src, None)
                self._record(round_index, src, None, "drop", None)
            elif kind == "corrupt":
                width = len(payload)
                bit = self.plan.corrupt_bit(round_index, src, None, width)
                flipped = Bits(payload.to_uint() ^ (1 << bit), width)
                for box in boxes:
                    if src in box:
                        box[src] = flipped
                self._record(round_index, src, None, "corrupt", bit)
            elif kind == "duplicate":
                self._stash(round_index, src, None, payload)
                self._record(round_index, src, None, "duplicate",
                             round_index + self.plan.delay_rounds)
            elif kind == "delay":
                for box in boxes:
                    box.pop(src, None)
                self._stash(round_index, src, None, payload)
                self._record(round_index, src, None, "delay",
                             round_index + self.plan.delay_rounds)

    def _apply_scalar_unicast(self, round_index: int, boxes: List[Dict[int, Bits]]) -> None:
        for dst, box in enumerate(boxes):
            if not box:
                continue
            for src in sorted(box):
                crash = self._crash_rounds.get(src)
                if crash is not None and round_index >= crash:
                    del box[src]
                    continue
                kind = self.plan.fault_for(round_index, src, dst)
                if kind is None:
                    continue
                payload = box[src]
                if kind == "drop":
                    del box[src]
                    self._record(round_index, src, dst, "drop", None)
                elif kind == "corrupt":
                    width = len(payload)
                    bit = self.plan.corrupt_bit(round_index, src, dst, width)
                    box[src] = Bits(payload.to_uint() ^ (1 << bit), width)
                    self._record(round_index, src, dst, "corrupt", bit)
                elif kind == "duplicate":
                    self._stash(round_index, src, dst, payload)
                    self._record(round_index, src, dst, "duplicate",
                                 round_index + self.plan.delay_rounds)
                elif kind == "delay":
                    del box[src]
                    self._stash(round_index, src, dst, payload)
                    self._record(round_index, src, dst, "delay",
                                 round_index + self.plan.delay_rounds)

    # -- kernel path ------------------------------------------------------

    def apply_kernel_unicast(self, round_index, values, present, rows, cols, width, widths):
        """Fault-adjusted copies of one kernel unicast round's delivered
        ``(K × n × n values, n × n present)`` matrices (the originals are
        the lane's live, incrementally-maintained buffers and must never
        be mutated).  Returns the inputs unchanged when no fault hits."""
        self._record_crashes(round_index)
        count = len(rows)
        decisions = []
        for j in range(count):
            src, dst = int(rows[j]), int(cols[j])
            crash = self._crash_rounds.get(src)
            if crash is not None and round_index >= crash:
                decisions.append((j, src, dst, "crash-omit"))
                continue
            kind = self.plan.fault_for(round_index, src, dst)
            if kind is not None:
                decisions.append((j, src, dst, kind))
        due = self._delayed.pop(round_index, None)
        if not decisions and not due:
            self._seal_round()
            return values, present
        vals = values.copy()
        pres = present.copy()
        for j, src, dst, kind in decisions:
            slot_width = width if widths is None else int(widths[j])
            if kind == "crash-omit":
                pres[src, dst] = False
                vals[:, src, dst] = 0
            elif kind == "drop":
                pres[src, dst] = False
                vals[:, src, dst] = 0
                self._record(round_index, src, dst, "drop", None)
            elif kind == "corrupt":
                bit = self.plan.corrupt_bit(round_index, src, dst, slot_width)
                _xor_bit(vals, (slice(None), src, dst), bit)
                self._record(round_index, src, dst, "corrupt", bit)
            else:  # duplicate / delay
                self._stash(round_index, src, dst, values[:, src, dst].copy())
                if kind == "delay":
                    pres[src, dst] = False
                    vals[:, src, dst] = 0
                self._record(round_index, src, dst, kind,
                             round_index + self.plan.delay_rounds)
        if due:
            # A late payload resurfaces only where this round's declared
            # structure carries the link and the fresh slot is empty —
            # the structural limit of matrix-shaped inboxes.
            slots = {(int(rows[j]), int(cols[j])) for j in range(count)}
            for src, dst, column in due:
                if dst is not None and (src, dst) in slots and not pres[src, dst]:
                    vals[:, src, dst] = column
                    pres[src, dst] = True
        self._seal_round()
        return vals, pres

    def apply_kernel_broadcast(self, round_index, values, present, writers, width):
        """Broadcast twin of :meth:`apply_kernel_unicast` over the
        ``(K × n values, n present)`` blackboard buffers."""
        self._record_crashes(round_index)
        decisions = []
        for w in writers:
            src = int(w)
            crash = self._crash_rounds.get(src)
            if crash is not None and round_index >= crash:
                decisions.append((src, "crash-omit"))
                continue
            kind = self.plan.fault_for(round_index, src, None)
            if kind is not None:
                decisions.append((src, kind))
        due = self._delayed.pop(round_index, None)
        if not decisions and not due:
            self._seal_round()
            return values, present
        vals = values.copy()
        pres = present.copy()
        for src, kind in decisions:
            if kind == "crash-omit":
                pres[src] = False
                vals[:, src] = 0
            elif kind == "drop":
                pres[src] = False
                vals[:, src] = 0
                self._record(round_index, src, None, "drop", None)
            elif kind == "corrupt":
                bit = self.plan.corrupt_bit(round_index, src, None, width)
                _xor_bit(vals, (slice(None), src), bit)
                self._record(round_index, src, None, "corrupt", bit)
            else:  # duplicate / delay
                self._stash(round_index, src, None, values[:, src].copy())
                if kind == "delay":
                    pres[src] = False
                    vals[:, src] = 0
                self._record(round_index, src, None, kind,
                             round_index + self.plan.delay_rounds)
        if due:
            writer_set = {int(w) for w in writers}
            for src, _dst, column in due:
                if src in writer_set and not pres[src]:
                    vals[:, src] = column
                    pres[src] = True
        self._seal_round()
        return vals, pres


def _xor_bit(vals, index, bit: int) -> None:
    """Flip one bit in a stacked payload column, dtype-aware (uint64
    matrices XOR natively; object matrices hold Python ints)."""
    if vals.dtype == object:
        column = vals[index]
        vals[index] = [int(v) ^ (1 << bit) for v in column]
    else:
        import numpy as np

        vals[index] ^= np.uint64(1 << bit)


class FaultyDeliveryBackend(DeliveryBackend):
    """A :class:`~repro.core.engine.delivery.DeliveryBackend` that owns a
    :class:`FaultSession` and applies it to its scalar inbox buffers.

    Engines that deliver through a backend (the fast engine) swap this
    in when the network carries an active plan and call
    :meth:`apply_round` after each round's delivery; engines with their
    own buffers (the legacy loop, the kernel executor) call the session
    directly.  Either way the schedule is identical — it depends only on
    the plan and the message coordinates.
    """

    __slots__ = ("session",)

    def __init__(self, n: int, session: FaultSession) -> None:
        super().__init__(n)
        self.session = session

    def apply_round(self, round_index: int) -> None:
        """Apply the session to the scalar buffers of ``round_index``."""
        self.session.apply_scalar(round_index, self.inbox_dicts)
