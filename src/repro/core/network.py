"""Synchronous message-passing engine for the congested clique.

This module implements the three communication models studied in the
paper:

* ``CLIQUE-UCAST(n, b)`` — every round, every node may send a *different*
  message of at most ``b`` bits on each of its ``n-1`` links.
* ``CLIQUE-BCAST(n, b)`` — every round, every node writes a single message
  of at most ``b`` bits that all other nodes receive (the shared-
  blackboard / number-in-hand multiparty model).
* ``CONGEST-UCAST`` — unicast with the communication topology restricted
  to the edges of an arbitrary graph.

Protocols are written as generator coroutines: each node's program yields
an :class:`Outbox` to end its round and is resumed with the
:class:`Inbox` of messages delivered to it.  The generator's return value
is the node's output.  The engine enforces bandwidth per the model,
counts rounds and bits, and can record a full transcript (needed by the
communication-complexity reductions of Section 3).

Engine implementations
----------------------

Two interchangeable round loops produce identical :class:`RunResult`\\ s:

* ``engine="fast"`` (default) keeps per-node inbox buffers alive across
  rounds (cleared, never reconstructed), reuses :class:`Inbox` wrappers,
  hoists model-invariant validation out of the per-message loop, and
  skips all transcript bookkeeping when recording is off.  Rounds in
  which every sender uses a fixed-width outbox
  (:meth:`Outbox.fixed_width` for unicast, :meth:`Outbox.broadcast_uint`
  for the blackboard) are delivered in bulk through numpy array
  writes — see :mod:`repro.core.fastlane`.
* ``engine="legacy"`` is the original per-round-allocation loop, kept as
  the executable reference semantics; the equivalence test suite pins
  the fast engine to it byte-for-byte.

Inboxes are only valid for the round in which they are delivered: the
fast engine recycles the underlying buffers, so a program must not stash
an :class:`Inbox` and read it in a later round (copy what you need).

Compiled schedules
------------------

Programs declared oblivious (via
:func:`~repro.core.compiled.mark_oblivious`) are *compiled* on their
first run: the engine records each round's lane kind, width and
destination structure into a :class:`~repro.core.compiled.CompiledSchedule`
cached on the network.  Later runs replay payload-only — a cheap
structural check per round replaces classification and validation, and
bulk rounds are delivered through precomputed flat index arrays.  A
round that deviates from the recorded structure aborts the replay and
the run falls back to full execution (and re-records).
:meth:`Network.run_many` extends the replay to K instances in lockstep
with stacked payload matrices (see
:class:`~repro.core.fastlane.BatchLane`).
"""

from __future__ import annotations

import enum
import random
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.bits import Bits
from repro.core.compiled import (
    BCAST,
    LANE,
    SCALAR,
    CompiledSchedule,
    ScheduleRecorder,
    oblivious_key,
)
from repro.core.errors import (
    BandwidthExceededError,
    MaxRoundsExceededError,
    ProtocolError,
    TopologyError,
)

__all__ = [
    "Mode",
    "Inbox",
    "Outbox",
    "Context",
    "RoundRecord",
    "RunResult",
    "Network",
    "run_protocol",
    "inbox_uints",
    "EMPTY_INBOX",
]


class Mode(enum.Enum):
    """Communication model selector."""

    UNICAST = "unicast"
    BROADCAST = "broadcast"
    CONGEST = "congest"


class Inbox:
    """Messages delivered to one node in one round, keyed by sender id.

    Inboxes are immutable once delivered, so the sorted views produced by
    :meth:`senders` and :meth:`items` are computed once and cached.
    """

    __slots__ = ("_by_sender", "_senders", "_items")

    def __init__(self, by_sender: Dict[int, Bits]) -> None:
        self._by_sender = by_sender
        self._senders: Optional[Tuple[int, ...]] = None
        self._items: Optional[Tuple[Tuple[int, Bits], ...]] = None

    def get(self, sender: int) -> Optional[Bits]:
        return self._by_sender.get(sender)

    def senders(self) -> Tuple[int, ...]:
        cached = self._senders
        if cached is None:
            cached = self._senders = tuple(sorted(self._by_sender))
        return cached

    def items(self) -> Tuple[Tuple[int, Bits], ...]:
        cached = self._items
        if cached is None:
            cached = self._items = tuple(sorted(self._by_sender.items()))
        return cached

    def uint_items(self) -> List[Tuple[int, int]]:
        """``(sender, payload-as-uint)`` pairs sorted by sender — the same
        accessor the fast lane's array inbox provides."""
        return [(sender, payload.to_uint()) for sender, payload in self.items()]

    def __len__(self) -> int:
        return len(self._by_sender)

    def __contains__(self, sender: int) -> bool:
        return sender in self._by_sender

    def _reset(self) -> None:
        """Drop cached views; the engine calls this when it recycles the
        underlying buffer for a new round."""
        self._senders = None
        self._items = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Inbox({self._by_sender!r})"


EMPTY_INBOX = Inbox({})


def inbox_uints(inbox: Any) -> List[Tuple[int, int]]:
    """``(sender, payload-as-uint)`` pairs sorted by sender, for either
    inbox flavour (dict-backed :class:`Inbox` or the fast lane's
    array-backed :class:`~repro.core.fastlane.FixedWidthInbox`)."""
    return inbox.uint_items()


class Outbox:
    """What one node sends in one round.

    Construct with :meth:`unicast`, :meth:`broadcast`, :meth:`silent`,
    or the bulk fixed-width constructors :meth:`fixed_width` /
    :meth:`fixed_width_map` / :meth:`broadcast_uint`; the engine
    validates the kind against the network's :class:`Mode`.
    """

    __slots__ = (
        "kind",
        "messages",
        "payload",
        "dests",
        "values",
        "width",
        "trusted_unique",
        "_validated_for",
    )

    def __init__(
        self,
        kind: str,
        messages: Optional[Dict[int, Bits]],
        payload: Optional[Bits],
        dests: Any = None,
        values: Any = None,
        width: int = 0,
        trusted_unique: bool = False,
    ):
        self.kind = kind
        self.messages = messages
        self.payload = payload
        self.dests = dests
        self.values = values
        self.width = width
        self.trusted_unique = trusted_unique
        # Outboxes are immutable after construction, so a fixed-width
        # outbox yielded round after round (the zero-churn pattern) is
        # vector-validated once per (network, sender), not once per
        # round.  The memo maps id(network) -> (weakref, {senders}):
        # weakly referenced so a long-lived outbox never pins a network
        # alive, and per-sender so one outbox shared by several senders
        # (also a natural zero-churn pattern) keeps every entry instead
        # of thrashing a single slot.
        self._validated_for: Any = None

    def _is_validated(self, network: Any, sender: int) -> bool:
        memo = self._validated_for
        if memo is None:
            return False
        entry = memo.get(id(network))
        return entry is not None and entry[0]() is network and sender in entry[1]

    def _mark_validated(self, network: Any, sender: int) -> None:
        memo = self._validated_for
        if memo is None:
            memo = self._validated_for = {}
        key = id(network)
        entry = memo.get(key)
        if entry is not None and entry[0]() is network:
            entry[1].add(sender)
            return
        if len(memo) >= 8:
            # Drop entries whose network is gone (ids may be reused).
            for stale in [k for k, e in memo.items() if e[0]() is None]:
                del memo[stale]
        memo[key] = (weakref.ref(network), {sender})

    @classmethod
    def unicast(cls, messages: Mapping[int, Bits]) -> "Outbox":
        return cls("unicast", dict(messages), None)

    @classmethod
    def broadcast(cls, payload: Bits) -> "Outbox":
        return cls("broadcast", None, payload)

    @classmethod
    def broadcast_uint(cls, value: int, width: int) -> "Outbox":
        """Fixed-width broadcast: write ``value`` as exactly ``width``
        bits on the blackboard.  Rounds in which every non-silent sender
        yields a fixed-width broadcast of one width are delivered
        through the numpy broadcast lane (one vector write, array-backed
        inboxes — see :mod:`repro.core.fastlane`); mixed rounds
        materialize the payload as an ordinary :class:`Bits` broadcast.
        Either way one broadcast of ``width`` bits costs ``width``."""
        from repro.core import fastlane

        coerced = fastlane.coerce_broadcast(value, width)
        return cls("bfixed", None, None, values=coerced, width=width)

    @classmethod
    def silent(cls) -> "Outbox":
        return _SILENT_OUTBOX

    @classmethod
    def fixed_width(cls, dests: Sequence[int], values: Sequence[int], width: int) -> "Outbox":
        """Bulk unicast of fixed-width unsigned-integer payloads:
        ``values[i]`` (exactly ``width`` bits on the wire) goes to
        ``dests[i]``.  Rounds in which every sender yields a fixed-width
        outbox of the same width are delivered through the numpy fast
        lane; otherwise the messages are materialized as ordinary
        ``width``-bit :class:`~repro.core.bits.Bits` unicasts."""
        from repro.core import fastlane

        d, v = fastlane.coerce_fixed(dests, values, width)
        return cls("fixed", None, None, dests=d, values=v, width=width)

    @classmethod
    def fixed_width_map(cls, messages: Mapping[int, int], width: int) -> "Outbox":
        """:meth:`fixed_width` from a ``{dest: uint}`` mapping (dict keys
        are unique by construction, so the duplicate-destination check is
        skipped; other Mapping types are copied through ``dict`` first so
        a broken ``keys()`` cannot smuggle a duplicate past it)."""
        from repro.core import fastlane

        if type(messages) is not dict:
            messages = dict(messages)
        d, v = fastlane.coerce_fixed(list(messages.keys()), list(messages.values()), width)
        out = cls("fixed", None, None, dests=d, values=v, width=width)
        out.trusted_unique = True
        return out

    def _materialize(self) -> Dict[int, Bits]:
        """A fixed-width outbox as an ordinary ``{dest: Bits}`` dict (the
        scalar fallback for sparse/mixed rounds and the legacy engine).
        Memoized in the otherwise-unused ``messages`` slot, so a reused
        outbox pays the Bits construction once, not once per round."""
        cached = self.messages
        if cached is None:
            width = self.width
            cached = self.messages = {
                int(dest): Bits(int(value), width)
                for dest, value in zip(self.dests, self.values)
            }
        return cached

    def _materialize_broadcast(self) -> Bits:
        """A fixed-width broadcast outbox's payload as :class:`Bits` (the
        scalar fallback for mixed rounds, the legacy engine, and the
        transcript).  Memoized in the otherwise-unused ``payload`` slot."""
        cached = self.payload
        if cached is None:
            cached = self.payload = Bits(self.values, self.width)
        return cached


_SILENT_OUTBOX = Outbox("silent", None, None)


@dataclass
class Context:
    """Per-node view of the network, handed to each node program.

    ``rng`` is this node's private coin.  ``shared_rng`` is the public
    coin: every node receives its *own* ``random.Random`` instance, but
    all of them are seeded identically, so node ``v``'s k-th draw equals
    node ``u``'s k-th draw no matter how the engine interleaves node
    executions.  The contract is per-node-identical *streams*: nodes
    agree on shared randomness as long as they make the same sequence of
    draw calls (the natural lockstep discipline of a synchronous
    protocol).  A single genuinely shared instance would break exactly
    this — interleaved draws would hand each node a disjoint slice of
    one stream.
    """

    node_id: int
    n: int
    bandwidth: int
    mode: Mode
    neighbors: Tuple[int, ...]
    rng: random.Random
    shared_rng: random.Random
    input: Any = None


@dataclass
class RoundRecord:
    """Transcript of one round: list of (sender, receiver, bits); a
    broadcast is recorded once with ``receiver=None``."""

    sends: List[Tuple[int, Optional[int], Bits]] = field(default_factory=list)

    def bits(self) -> int:
        return sum(len(m) for _, _, m in self.sends)


@dataclass
class RunResult:
    """Outcome of one protocol execution."""

    outputs: List[Any]
    rounds: int
    total_bits: int
    max_round_bits: int
    transcript: Optional[List[RoundRecord]] = None

    def blackboard_bits(self) -> int:
        """Total bits written, counting each broadcast once (the natural
        cost measure for the shared-blackboard model)."""
        return self.total_bits


NodeProgram = Callable[[Context], Any]

# A fixed-width round rides the bulk lane only when it averages at least
# this many messages per sender; sparser rounds are cheaper through the
# scalar dict path than through per-sender array operations.
_LANE_DENSITY = 8


class Network:
    """Synchronous round-based network for ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes (players).
    bandwidth:
        Maximum message size ``b`` in bits (per link per round for
        unicast/CONGEST; per node per round for broadcast).
    mode:
        Which of the three communication models to enforce.
    topology:
        For :attr:`Mode.CONGEST`, an adjacency structure: a sequence of
        neighbour collections, one per node.  Ignored otherwise.
    seed:
        Seeds both the per-node private RNGs and the shared public-coin
        RNG, making every run reproducible.
    max_rounds:
        Safety budget; exceeding it raises :class:`MaxRoundsExceededError`.
    record_transcript:
        When true, the result carries a full per-round transcript (used
        by the lower-bound reductions to charge communication).
    engine:
        ``"fast"`` (default) for the zero-churn loop with the
        fixed-width bulk lane, ``"legacy"`` for the original reference
        loop.  Both produce identical :class:`RunResult`\\ s.
    """

    def __init__(
        self,
        n: int,
        bandwidth: int,
        mode: Mode = Mode.UNICAST,
        topology: Optional[Sequence[Sequence[int]]] = None,
        seed: int = 0,
        max_rounds: int = 1_000_000,
        record_transcript: bool = False,
        engine: str = "fast",
    ) -> None:
        if n < 1:
            raise ValueError("need at least one node")
        if bandwidth < 1:
            raise ValueError("bandwidth must be at least 1 bit")
        if engine not in ("fast", "legacy"):
            raise ValueError(f"unknown engine {engine!r}")
        self.n = n
        self.bandwidth = bandwidth
        self.mode = mode
        self.seed = seed
        self.max_rounds = max_rounds
        self.record_transcript = record_transcript
        self.engine = engine
        if mode is Mode.CONGEST:
            if topology is None:
                raise TopologyError("CONGEST mode requires a topology")
            self._neighbors = [tuple(sorted(set(topology[v]))) for v in range(n)]
            for v, nbrs in enumerate(self._neighbors):
                if v in nbrs:
                    raise TopologyError(f"node {v} may not neighbour itself")
                for u in nbrs:
                    if not 0 <= u < n:
                        raise TopologyError(f"neighbour {u} out of range")
            # Membership checks are model-invariant: hoist them into
            # per-sender frozensets built once, not per message.
            self._allowed: Optional[List[frozenset]] = [
                frozenset(nbrs) for nbrs in self._neighbors
            ]
        else:
            everyone = tuple(range(n))
            self._neighbors = [
                tuple(u for u in everyone if u != v) for v in range(n)
            ]
            self._allowed = None
        # Boolean adjacency rows for vectorized CONGEST validation of
        # fixed-width outboxes; built lazily on first use.
        self._adj_mask = None
        # Compiled schedules for oblivious programs, keyed by their
        # mark_oblivious declaration.  Bounded; correctness never
        # depends on a hit (misses just record, stale entries are
        # caught by the per-round structural check).
        self._compiled: Dict[Any, CompiledSchedule] = {}
        #: Counters for the compilation layer: schedules recorded,
        #: instances replayed (incl. batched), structural-deviation
        #: fallbacks to full execution.
        self.schedule_stats: Dict[str, int] = {
            "compiled": 0,
            "replayed": 0,
            "fallbacks": 0,
        }
        # (seed, per-node states, shared state), captured once per seed:
        # every run (and every run_many instance) restores identical
        # per-node streams by cloning state instead of re-hashing the
        # seed strings.
        self._rng_states: Optional[Tuple[Any, List[Any], Any]] = None
        # Kernel-path delivery buffers, keyed by instance count (see
        # repro.core.kernels); small bounded cache, correctness never
        # depends on a hit.
        self._kernel_lanes: Dict[int, Any] = {}

    # -- execution -------------------------------------------------------

    def _rng_state_bundle(self) -> Tuple[Any, List[Any], Any]:
        """(seed, per-node private states, shared state) — hashed once
        per seed, cloned by every run (and by the kernel runner)."""
        states = self._rng_states
        if states is None or states[0] != self.seed:
            # Hash the seed strings once; later runs clone the captured
            # states, which is cheaper than re-seeding and guarantees
            # every run starts from identical streams.  Keyed on the
            # seed so reassigning ``network.seed`` takes effect.
            private = [
                random.Random(f"{self.seed}:node:{v}").getstate()
                for v in range(self.n)
            ]
            shared = random.Random(f"{self.seed}:shared").getstate()
            states = self._rng_states = (self.seed, private, shared)
        return states

    def _make_contexts(self, inputs: Optional[Sequence[Any]]) -> List[Context]:
        _seed, private_states, shared_state = self._rng_state_bundle()
        new = random.Random.__new__
        contexts = []
        for v in range(self.n):
            rng = new(random.Random)
            rng.setstate(private_states[v])
            # Identically seeded per-node streams — see Context.
            shared_rng = new(random.Random)
            shared_rng.setstate(shared_state)
            contexts.append(
                Context(
                    node_id=v,
                    n=self.n,
                    bandwidth=self.bandwidth,
                    mode=self.mode,
                    neighbors=self._neighbors[v],
                    rng=rng,
                    shared_rng=shared_rng,
                    input=None if inputs is None else inputs[v],
                )
            )
        return contexts

    def run(
        self,
        program: Callable[[Context], Any],
        inputs: Optional[Sequence[Any]] = None,
    ) -> RunResult:
        """Run ``program`` (a generator function taking a Context) on all
        nodes in lockstep and return the :class:`RunResult`.

        ``inputs[v]`` is exposed as ``ctx.input`` on node ``v``.

        ``program`` may also be a
        :class:`~repro.core.kernels.KernelProgram`, in which case the
        whole round loop runs through the vectorized kernel path (the
        engine selector does not apply — a kernel program *is* its own
        execution semantics, pinned to the generator reference by the
        equivalence suites).
        """
        self._check_inputs(inputs)
        if getattr(program, "is_kernel_program", False):
            return self._run_kernel(program, [inputs])[0]
        if self.engine == "legacy":
            return self._run_legacy(program, inputs)
        key = None if self.record_transcript else oblivious_key(program)
        if key is None:
            return self._run_fast(program, inputs)
        compiled = self._compiled_entry(key)
        if compiled is not None:
            replayed = self._try_replay(program, [inputs], compiled, key)
            if replayed is not None:
                return replayed[0]
            # Structural deviation: the stale entry was evicted; fall
            # through to full execution, which re-records.
        return self._run_recording(program, inputs, key)

    def run_many(
        self,
        program: Callable[[Context], Any],
        inputs_list: Sequence[Optional[Sequence[Any]]],
    ) -> List[RunResult]:
        """Run ``program`` once per entry of ``inputs_list`` and return
        one :class:`RunResult` per instance, byte-identical to calling
        :meth:`run` sequentially.

        When ``program`` is declared oblivious
        (:func:`~repro.core.compiled.mark_oblivious`), the first
        instance records (or reuses) the compiled schedule and the
        remaining instances replay it **in lockstep**: each round is
        structurally checked per instance and delivered through stacked
        payload matrices (:class:`~repro.core.fastlane.BatchLane`), so
        classification, validation and accounting are paid once for the
        whole batch.  Any structural deviation falls back to full
        sequential execution of the affected instances.  Undeclared
        programs, the legacy engine, and transcript-recording networks
        always take the sequential path.
        """
        inputs_list = list(inputs_list)
        for inputs in inputs_list:
            self._check_inputs(inputs)
        if getattr(program, "is_kernel_program", False):
            # Kernel programs batch natively: all K instances move
            # through each round as one stacked matrix.  Chunk like the
            # replay path to bound the K×n×n buffers.
            results: List[RunResult] = []
            chunk_size = max(1, (64 << 20) // (self.n * self.n * 8))
            for start in range(0, len(inputs_list), chunk_size):
                chunk = inputs_list[start : start + chunk_size]
                results.extend(self._run_kernel(program, chunk))
            return results
        key = None if self.record_transcript else oblivious_key(program)
        if key is None or self.engine == "legacy" or not inputs_list:
            return [self.run(program, inputs) for inputs in inputs_list]
        results: List[RunResult] = []
        rest = inputs_list
        if self._compiled_entry(key) is None:
            results.append(self._run_recording(program, inputs_list[0], key))
            rest = inputs_list[1:]
        # Bound the stacked replay buffers (~64 MB of uint64 send
        # matrices) by chunking large sweeps; replay state carries over
        # through the schedule cache, so chunking is invisible apart
        # from peak memory.
        chunk_size = max(1, (64 << 20) // (self.n * self.n * 8))
        for start in range(0, len(rest), chunk_size):
            chunk = rest[start : start + chunk_size]
            compiled = self._compiled_entry(key)
            replayed = (
                self._try_replay(program, chunk, compiled, key)
                if compiled is not None
                else None
            )
            if replayed is None:
                # Deviation mid-chunk: re-execute the affected
                # instances from scratch (programs declared oblivious
                # must be side-effect-free, so the abandoned partial
                # executions are unobservable).  The first re-run
                # re-records, so conforming instances later in the
                # sweep regain batching; a second deviation within the
                # same chunk demotes its remainder to plain execution.
                replayed = [self._run_recording(program, chunk[0], key)]
                tail = chunk[1:]
                if tail:
                    compiled = self._compiled_entry(key)
                    again = (
                        self._try_replay(program, tail, compiled, key)
                        if compiled is not None
                        else None
                    )
                    if again is None:
                        again = [self._run_fast(program, inputs) for inputs in tail]
                    replayed.extend(again)
            results.extend(replayed)
        return results

    def _check_inputs(self, inputs: Optional[Sequence[Any]]) -> None:
        if inputs is not None and len(inputs) != self.n:
            raise ProtocolError(
                f"got {len(inputs)} inputs for {self.n} nodes; "
                "Network.run needs exactly one input per node "
                "(pass inputs=None for input-free protocols)"
            )

    def _compiled_entry(self, key) -> Optional[CompiledSchedule]:
        """The cached schedule for ``key``, evicting it first if the
        network's bandwidth or mode was reassigned since it was
        recorded (the recorded rounds were validated under the old
        parameters, so replaying them would skip the new limits)."""
        entry = self._compiled.get(key)
        if entry is not None and entry.params != (self.bandwidth, self.mode):
            del self._compiled[key]
            return None
        return entry

    def _run_kernel(self, program, inputs_list: List[Any]) -> List[RunResult]:
        """Execute a kernel program: compile its declared structure into
        a :class:`~repro.core.compiled.CompiledSchedule` on first use
        (cached keyed by the program object — identity, so a stale hit
        is impossible), then run every instance through the stacked
        kernel loop.  Counts in :attr:`schedule_stats` mirror the
        generator path: the first instance "records" (compiles), every
        further instance is a replay."""
        from repro.core import kernels

        compiled = self._compiled.get(program)
        if compiled is not None and compiled.params != (self.bandwidth, self.mode):
            del self._compiled[program]
            compiled = None
        fresh = compiled is None
        if fresh:
            compiled = kernels.compile_program(program, self)
            if len(self._compiled) >= 32:
                self._compiled.pop(next(iter(self._compiled)))
            self._compiled[program] = compiled
        results = kernels.execute(self, program, compiled, inputs_list)
        if fresh:
            self.schedule_stats["compiled"] += 1
            replays = len(inputs_list) - 1
        else:
            replays = len(inputs_list)
        self.schedule_stats["replayed"] += replays
        compiled.replays += replays
        return results

    def _run_recording(self, program, inputs, key) -> RunResult:
        recorder = ScheduleRecorder()
        result = self._run_fast(program, inputs, recorder=recorder)
        if len(self._compiled) >= 32:
            # Bounded cache: drop the oldest entry (insertion order).
            self._compiled.pop(next(iter(self._compiled)))
        entry = recorder.finish()
        entry.params = (self.bandwidth, self.mode)
        self._compiled[key] = entry
        self.schedule_stats["compiled"] += 1
        return result

    def _start(self, program, inputs, check=None):
        if check is None:
            check = self._check_outbox
        contexts = self._make_contexts(inputs)
        outputs: List[Any] = [None] * self.n
        generators: Dict[int, Any] = {}
        pending_outbox: Dict[int, Outbox] = {}
        for v in range(self.n):
            gen = program(contexts[v])
            if not hasattr(gen, "send"):
                # A plain function: purely local computation, zero rounds.
                outputs[v] = gen
                continue
            try:
                pending_outbox[v] = check(v, next(gen))
                generators[v] = gen
            except StopIteration as stop:
                outputs[v] = stop.value
        return outputs, generators, pending_outbox

    # -- fast engine -----------------------------------------------------

    def _run_fast(self, program, inputs, recorder=None) -> RunResult:
        n = self.n
        outputs, generators, pending = self._start(program, inputs)

        rounds = 0
        total_bits = 0
        max_round_bits = 0
        recording = self.record_transcript
        transcript: Optional[List[RoundRecord]] = [] if recording else None

        # Reusable per-round state: buffers live for the whole run and
        # are cleared, never reconstructed.
        inbox_dicts: List[Dict[int, Bits]] = [dict() for _ in range(n)]
        inbox_views: List[Inbox] = [Inbox(d) for d in inbox_dicts]
        dicts_dirty = False
        fixed_list: List[Tuple[int, Outbox]] = []
        bcast_list: List[Tuple[int, Outbox]] = []
        lane = None  # FixedLane, allocated on the first bulk round
        blane = None  # BroadcastLane, allocated on the first bulk round

        while generators:
            if rounds >= self.max_rounds:
                raise MaxRoundsExceededError(
                    f"protocol still running after {rounds} rounds"
                )
            rounds += 1

            # Classify the round: it can ride the unicast bulk lane iff
            # every non-silent sender yielded a fixed-width outbox of one
            # width AND the round is dense enough that per-sender array
            # operations beat per-message dict writes; it can ride the
            # broadcast lane iff every non-silent sender yielded a
            # fixed-width broadcast of one width (a broadcast write is
            # always denser than its n-1 scalar deliveries, so there is
            # no density threshold).
            fixed_list.clear()
            bcast_list.clear()
            scalar_senders = False
            lane_width = 0
            bcast_width = 0
            fixed_messages = 0
            for v, outbox in pending.items():
                kind = outbox.kind
                if kind == "silent":
                    continue
                if kind == "fixed":
                    width = outbox.width
                    if lane_width == 0:
                        lane_width = width
                    elif width != lane_width:
                        scalar_senders = True
                    fixed_list.append((v, outbox))
                    fixed_messages += outbox.dests.size
                elif kind == "bfixed":
                    width = outbox.width
                    if bcast_width == 0:
                        bcast_width = width
                    elif width != bcast_width:
                        scalar_senders = True
                    bcast_list.append((v, outbox))
                else:
                    scalar_senders = True
            use_lane = (
                bool(fixed_list)
                and not scalar_senders
                and not bcast_list
                and fixed_messages >= _LANE_DENSITY * len(fixed_list)
            )
            use_bcast_lane = (
                bool(bcast_list) and not scalar_senders and not fixed_list
            )

            record = RoundRecord() if recording else None
            if use_lane:
                if lane is None:
                    from repro.core.fastlane import FixedLane

                    lane = FixedLane(n)
                round_bits = lane.deliver(fixed_list, lane_width, record)
            elif use_bcast_lane:
                if blane is None:
                    from repro.core.fastlane import BroadcastLane

                    blane = BroadcastLane(n)
                round_bits = blane.deliver(bcast_list, bcast_width, record)
            else:
                if dicts_dirty:
                    for u in range(n):
                        inbox_dicts[u].clear()
                        inbox_views[u]._reset()
                dicts_dirty = True
                if record is not None:
                    round_bits = 0
                    for v, outbox in pending.items():
                        round_bits += self._deliver(v, outbox, inbox_dicts, record)
                else:
                    round_bits = self._deliver_round_fast(pending, inbox_dicts)
            if recorder is not None:
                if use_lane:
                    recorder.lane_round(fixed_list, lane_width, round_bits)
                elif use_bcast_lane:
                    recorder.bcast_round(bcast_list, bcast_width, round_bits)
                else:
                    recorder.scalar_round(round_bits)
            total_bits += round_bits
            if round_bits > max_round_bits:
                max_round_bits = round_bits
            if record is not None:
                transcript.append(record)

            pending = {}
            finished = []
            if use_lane:
                for v, gen in generators.items():
                    try:
                        pending[v] = self._check_outbox(v, gen.send(lane.inbox(v)))
                    except StopIteration as stop:
                        outputs[v] = stop.value
                        finished.append(v)
            elif use_bcast_lane:
                for v, gen in generators.items():
                    try:
                        pending[v] = self._check_outbox(v, gen.send(blane.inbox(v)))
                    except StopIteration as stop:
                        outputs[v] = stop.value
                        finished.append(v)
            else:
                for v, gen in generators.items():
                    buf = inbox_dicts[v]
                    inbox = inbox_views[v] if buf else EMPTY_INBOX
                    try:
                        pending[v] = self._check_outbox(v, gen.send(inbox))
                    except StopIteration as stop:
                        outputs[v] = stop.value
                        finished.append(v)
            for v in finished:
                del generators[v]

        return RunResult(
            outputs=outputs,
            rounds=rounds,
            total_bits=total_bits,
            max_round_bits=max_round_bits,
            transcript=transcript,
        )

    def _deliver_round_fast(
        self,
        pending: Dict[int, Outbox],
        inbox_dicts: List[Dict[int, Bits]],
    ) -> int:
        """Scalar delivery of one whole round, transcript off: no record
        branches in the loop, reused buffers, hoisted lookups."""
        n = self.n
        bandwidth = self.bandwidth
        neighbors = self._neighbors
        allowed_sets = self._allowed
        bits = 0
        for sender, outbox in pending.items():
            kind = outbox.kind
            if kind == "silent":
                continue
            if kind == "broadcast" or kind == "bfixed":
                payload = (
                    outbox.payload
                    if kind == "broadcast"
                    else outbox._materialize_broadcast()
                )
                if payload.__class__ is not Bits and not isinstance(payload, Bits):
                    raise ProtocolError(f"node {sender} broadcast a non-Bits payload")
                plen = len(payload)
                if plen > bandwidth:
                    raise BandwidthExceededError(
                        f"node {sender} broadcast {plen} bits "
                        f"(bandwidth {bandwidth})"
                    )
                if plen == 0:
                    continue
                for dest in neighbors[sender]:
                    inbox_dicts[dest][sender] = payload
                bits += plen
                continue
            if kind == "fixed":
                # Sparse or mixed round: this outbox was vector-validated
                # at yield time; deliver its messages check-free.
                for dest, payload in outbox._materialize().items():
                    inbox_dicts[dest][sender] = payload
                bits += outbox.width * outbox.dests.size
                continue
            # unicast / CONGEST
            allowed = allowed_sets[sender] if allowed_sets is not None else None
            for dest, payload in outbox.messages.items():
                if payload.__class__ is not Bits and not isinstance(payload, Bits):
                    raise ProtocolError(f"node {sender} sent a non-Bits payload")
                if dest == sender:
                    raise TopologyError(f"node {sender} sent a message to itself")
                if not 0 <= dest < n:
                    raise TopologyError(f"node {sender} sent to out-of-range {dest}")
                if allowed is not None and dest not in allowed:
                    raise TopologyError(
                        f"node {sender} sent to non-neighbour {dest} in CONGEST"
                    )
                plen = len(payload)
                if plen > bandwidth:
                    raise BandwidthExceededError(
                        f"node {sender} sent {plen} bits to {dest} "
                        f"(bandwidth {bandwidth})"
                    )
                if plen == 0:
                    continue
                inbox_dicts[dest][sender] = payload
                bits += plen
        return bits

    # -- compiled replay -------------------------------------------------

    def _bail(self, key) -> None:
        """A replayed round deviated from the compiled structure: evict
        the stale schedule and signal the caller to fall back to full
        execution (which re-records)."""
        self._compiled.pop(key, None)
        self.schedule_stats["fallbacks"] += 1
        return None

    def _check_outbox_light(self, sender: int, yielded: Any) -> Outbox:
        """Replay-mode yield check: type only.  Mode, bandwidth and
        topology conformance are implied by the structural match against
        the compiled (fully validated) round; any mismatch bails to the
        full path, which re-validates from scratch."""
        if yielded is None:
            return _SILENT_OUTBOX
        if isinstance(yielded, Outbox):
            return yielded
        raise ProtocolError(
            f"node {sender} yielded {type(yielded).__name__}, expected Outbox"
        )

    def _try_replay(
        self,
        program,
        inputs_list: Sequence[Optional[Sequence[Any]]],
        compiled: CompiledSchedule,
        key: Any,
    ) -> Optional[List[RunResult]]:
        """Run every instance of ``inputs_list`` against ``compiled`` in
        lockstep; returns per-instance RunResults, or ``None`` if any
        round deviates structurally (after evicting the stale entry)."""
        import numpy as np

        from repro.core.fastlane import NUMERIC_WIDTH_LIMIT, BatchLane, BroadcastLane

        n = self.n
        num_instances = len(inputs_list)
        crounds = compiled.rounds
        num_rounds = len(crounds)
        light = self._check_outbox_light
        full = self._check_outbox

        def check_for(r):
            # Rounds the compiled schedule will bulk-deliver are checked
            # structurally, so their yields skip validation; scalar
            # rounds (and anything past the schedule, which bails) go
            # through the ordinary fully validating check.
            if r < num_rounds and crounds[r][0] != SCALAR:
                return light
            return full

        check = check_for(0)
        outputs_l: List[List[Any]] = []
        gens_l: List[Dict[int, Any]] = []
        pending_l: List[Dict[int, Outbox]] = []
        for inputs in inputs_list:
            outputs, generators, pending = self._start(program, inputs, check=check)
            outputs_l.append(outputs)
            gens_l.append(generators)
            pending_l.append(pending)
        rounds_l = [0] * num_instances
        bits_l = [0] * num_instances
        maxb_l = [0] * num_instances

        lane: Optional[BatchLane] = None
        blanes: Optional[List[Optional[BroadcastLane]]] = None
        scalar_state: Optional[List[Any]] = None
        vbuf_num = vbuf_obj = dbuf = None
        scalar_bits: Dict[int, int] = {}
        # Per-instance (structure, outbox-list) of the previous lane
        # round.  Outboxes are immutable, so when a program re-yields
        # the *same* outbox objects under the same structure (the
        # zero-churn pattern), the round needs no re-verification and —
        # because the send matrix already holds those exact values — no
        # rewrite either.
        lane_memo: List[Optional[Tuple[Any, List[Any]]]] = [None] * num_instances

        r = 0
        while True:
            active = [k for k in range(num_instances) if gens_l[k]]
            if not active:
                break
            if r >= num_rounds:
                # The protocol outlived its compiled schedule.
                return self._bail(key)
            kind, payload, round_bits = crounds[r]

            if kind == LANE:
                struct = payload
                entries = struct.entries
                n_entries = len(entries)
                width = struct.width
                count = struct.count
                slices = struct.slices
                # Pass 1: match each instance's pending outboxes to the
                # compiled entries.  An outbox identical (by object) to
                # last lane round's at the same position under the same
                # structure is already verified *and* already written.
                need_write: List[int] = []  # instance slots to deliver
                round_outs: List[Tuple[int, List[Any]]] = []
                for k in active:
                    memo = lane_memo[k]
                    prev_outs = (
                        memo[1] if memo is not None and memo[0] is struct else None
                    )
                    outs: List[Any] = []
                    fresh = False
                    j = 0
                    for v, out in pending_l[k].items():
                        if out.kind == "silent":
                            continue
                        if j >= n_entries or v != entries[j][0]:
                            return self._bail(key)
                        if prev_outs is None or prev_outs[j] is not out:
                            if (
                                out.kind != "fixed"
                                or out.width != width
                                or out.dests.size != entries[j][2]
                            ):
                                return self._bail(key)
                            fresh = True
                        outs.append(out)
                        j += 1
                    if j != n_entries:
                        return self._bail(key)
                    lane_memo[k] = (struct, outs)
                    if fresh:
                        need_write.append(k)
                        round_outs.append((k, outs))
                # Pass 2: verify and deliver only the instances with
                # fresh outboxes, through stacked flat writes.
                if need_write and count:
                    written = len(need_write)
                    if width <= NUMERIC_WIDTH_LIMIT:
                        if vbuf_num is None or vbuf_num.shape[1] < count:
                            vbuf_num = np.empty(
                                (num_instances, count), dtype=np.uint64
                            )
                        vbuf = vbuf_num
                    else:
                        if vbuf_obj is None or vbuf_obj.shape[1] < count:
                            vbuf_obj = np.empty(
                                (num_instances, count), dtype=object
                            )
                        vbuf = vbuf_obj
                    if dbuf is None or dbuf.shape[1] < count:
                        dbuf = np.empty((num_instances, count), dtype=np.intp)
                    for i, (_k, outs) in enumerate(round_outs):
                        row_v = vbuf[i]
                        row_d = dbuf[i]
                        for j, out in enumerate(outs):
                            start, stop = slices[j]
                            if start != stop:
                                row_d[start:stop] = out.dests
                                row_v[start:stop] = out.values
                    if (dbuf[:written, :count] != struct.cols).any():
                        # Same shape, different destinations: still a
                        # structural deviation (the flat delivery indices
                        # and the skipped validation both assume the
                        # recorded destination vectors).
                        return self._bail(key)
                    # Payload values wider than the recorded width are
                    # demoted the same way, so the full path raises the
                    # identical ProtocolError a cold-cache run would.
                    if vbuf is vbuf_num:
                        if (vbuf[:written, :count] >> np.uint64(width)).any():
                            return self._bail(key)
                    elif any(
                        value >> width
                        for row in vbuf[:written, :count]
                        for value in row
                    ):
                        return self._bail(key)
                    if lane is None:
                        lane = BatchLane(n, num_instances)
                    lane.deliver_compiled(
                        struct,
                        need_write,
                        [vbuf[i, :count] for i in range(written)],
                    )
                else:
                    # Nothing fresh to write (every instance re-yielded
                    # last round's outboxes, or the structure carries no
                    # messages): keep the lane's presence mask in sync
                    # with this structure — a no-op when unchanged.
                    if lane is None:
                        lane = BatchLane(n, num_instances)
                    lane.deliver_compiled(struct, [], [])
            elif kind == BCAST:
                ids, width = payload
                n_ids = len(ids)
                if blanes is None:
                    blanes = [None] * num_instances
                for k in active:
                    senders = []
                    j = 0
                    for v, out in pending_l[k].items():
                        okind = out.kind
                        if okind == "silent":
                            continue
                        if (
                            j >= n_ids
                            or v != ids[j]
                            or okind != "bfixed"
                            or out.width != width
                        ):
                            return self._bail(key)
                        senders.append((v, out))
                        j += 1
                    if j != n_ids:
                        return self._bail(key)
                    blane = blanes[k]
                    if blane is None:
                        blane = blanes[k] = BroadcastLane(n)
                    blane.deliver(senders, width, None)
            else:  # SCALAR: ordinary validated delivery, per instance.
                if scalar_state is None:
                    scalar_state = [None] * num_instances
                scalar_bits.clear()
                for k in active:
                    state = scalar_state[k]
                    if state is None:
                        dicts = [dict() for _ in range(n)]
                        state = scalar_state[k] = [
                            dicts,
                            [Inbox(d) for d in dicts],
                            False,
                        ]
                    dicts, views, dirty = state
                    if dirty:
                        for u in range(n):
                            dicts[u].clear()
                            views[u]._reset()
                    state[2] = True
                    scalar_bits[k] = self._deliver_round_fast(pending_l[k], dicts)

            check = check_for(r + 1)
            for k in active:
                bits = round_bits if kind != SCALAR else scalar_bits[k]
                rounds_l[k] += 1
                bits_l[k] += bits
                if bits > maxb_l[k]:
                    maxb_l[k] = bits
                generators = gens_l[k]
                outputs = outputs_l[k]
                new_pending: Dict[int, Outbox] = {}
                finished = []
                if kind == LANE:
                    for v, gen in generators.items():
                        try:
                            new_pending[v] = check(v, gen.send(lane.inbox(k, v)))
                        except StopIteration as stop:
                            outputs[v] = stop.value
                            finished.append(v)
                elif kind == BCAST:
                    blane = blanes[k]
                    for v, gen in generators.items():
                        try:
                            new_pending[v] = check(v, gen.send(blane.inbox(v)))
                        except StopIteration as stop:
                            outputs[v] = stop.value
                            finished.append(v)
                else:
                    dicts, views, _dirty = scalar_state[k]
                    for v, gen in generators.items():
                        inbox = views[v] if dicts[v] else EMPTY_INBOX
                        try:
                            new_pending[v] = check(v, gen.send(inbox))
                        except StopIteration as stop:
                            outputs[v] = stop.value
                            finished.append(v)
                for v in finished:
                    del generators[v]
                pending_l[k] = new_pending
            r += 1

        compiled.replays += num_instances
        self.schedule_stats["replayed"] += num_instances
        return [
            RunResult(
                outputs=outputs_l[k],
                rounds=rounds_l[k],
                total_bits=bits_l[k],
                max_round_bits=maxb_l[k],
                transcript=None,
            )
            for k in range(num_instances)
        ]

    # -- legacy engine (reference semantics) -----------------------------

    def _run_legacy(self, program, inputs) -> RunResult:
        outputs, generators, pending_outbox = self._start(program, inputs)

        rounds = 0
        total_bits = 0
        max_round_bits = 0
        transcript: Optional[List[RoundRecord]] = [] if self.record_transcript else None

        while generators:
            if rounds >= self.max_rounds:
                raise MaxRoundsExceededError(
                    f"protocol still running after {rounds} rounds"
                )
            rounds += 1
            inboxes: Dict[int, Dict[int, Bits]] = {v: {} for v in range(self.n)}
            record = RoundRecord() if self.record_transcript else None
            round_bits = 0
            for v, outbox in pending_outbox.items():
                round_bits += self._deliver(v, outbox, inboxes, record)
            total_bits += round_bits
            max_round_bits = max(max_round_bits, round_bits)
            if record is not None:
                transcript.append(record)

            pending_outbox = {}
            finished = []
            for v, gen in generators.items():
                inbox = Inbox(inboxes[v]) if inboxes[v] else EMPTY_INBOX
                try:
                    pending_outbox[v] = self._check_outbox(v, gen.send(inbox))
                except StopIteration as stop:
                    outputs[v] = stop.value
                    finished.append(v)
            for v in finished:
                del generators[v]

        return RunResult(
            outputs=outputs,
            rounds=rounds,
            total_bits=total_bits,
            max_round_bits=max_round_bits,
            transcript=transcript,
        )

    # -- internals -------------------------------------------------------

    def _check_outbox(self, sender: int, yielded: Any) -> Outbox:
        if yielded is None:
            return _SILENT_OUTBOX
        if not isinstance(yielded, Outbox):
            raise ProtocolError(
                f"node {sender} yielded {type(yielded).__name__}, expected Outbox"
            )
        kind = yielded.kind
        if kind in ("broadcast", "bfixed") and self.mode is not Mode.BROADCAST:
            raise ProtocolError(
                f"node {sender} broadcast in a {self.mode.value} network"
            )
        if kind in ("unicast", "fixed") and self.mode is Mode.BROADCAST:
            raise ProtocolError(
                f"node {sender} unicast in a broadcast network"
            )
        if kind == "bfixed" and yielded.width > self.bandwidth:
            # The payload itself was validated at construction; only the
            # network-dependent bandwidth bound is checked here.
            raise BandwidthExceededError(
                f"node {sender} broadcast {yielded.width} bits "
                f"(bandwidth {self.bandwidth})"
            )
        if kind == "fixed" and not yielded._is_validated(self, sender):
            # Whole-outbox vectorized validation, hoisted out of delivery
            # (and out of the round loop entirely for reused outboxes).
            from repro.core import fastlane

            adj_row = None
            allowed_set = None
            if self._allowed is not None:
                # Small outboxes check against the per-sender frozenset;
                # the dense n×n mask is only worth building (O(n²)
                # memory) for genuinely bulk senders.
                if yielded.dests.size < 32:
                    allowed_set = self._allowed[sender]
                else:
                    if self._adj_mask is None:
                        self._adj_mask = fastlane.adjacency_mask(
                            self.n, self._neighbors
                        )
                    adj_row = self._adj_mask[sender]
            fastlane.validate_fixed(
                yielded, sender, self.n, self.bandwidth, adj_row, allowed_set
            )
            yielded._mark_validated(self, sender)
        return yielded

    def _deliver(
        self,
        sender: int,
        outbox: Outbox,
        inboxes,
        record: Optional[RoundRecord],
    ) -> int:
        bits_sent = 0
        kind = outbox.kind
        if kind == "silent":
            return 0
        if kind == "broadcast" or kind == "bfixed":
            payload = (
                outbox.payload
                if kind == "broadcast"
                else outbox._materialize_broadcast()
            )
            if not isinstance(payload, Bits):
                raise ProtocolError(f"node {sender} broadcast a non-Bits payload")
            if len(payload) > self.bandwidth:
                raise BandwidthExceededError(
                    f"node {sender} broadcast {len(payload)} bits "
                    f"(bandwidth {self.bandwidth})"
                )
            if len(payload) == 0:
                return 0
            for dest in self._neighbors[sender]:
                inboxes[dest][sender] = payload
            bits_sent = len(payload)
            if record is not None:
                record.sends.append((sender, None, payload))
            return bits_sent
        # unicast / CONGEST (fixed-width outboxes are materialized first)
        messages = outbox.messages if kind == "unicast" else outbox._materialize()
        allowed = None
        if self.mode is Mode.CONGEST:
            allowed = self._allowed[sender]
        for dest, payload in messages.items():
            if not isinstance(payload, Bits):
                raise ProtocolError(f"node {sender} sent a non-Bits payload")
            if dest == sender:
                raise TopologyError(f"node {sender} sent a message to itself")
            if not 0 <= dest < self.n:
                raise TopologyError(f"node {sender} sent to out-of-range {dest}")
            if allowed is not None and dest not in allowed:
                raise TopologyError(
                    f"node {sender} sent to non-neighbour {dest} in CONGEST"
                )
            if len(payload) > self.bandwidth:
                raise BandwidthExceededError(
                    f"node {sender} sent {len(payload)} bits to {dest} "
                    f"(bandwidth {self.bandwidth})"
                )
            if len(payload) == 0:
                continue
            inboxes[dest][sender] = payload
            bits_sent += len(payload)
            if record is not None:
                record.sends.append((sender, dest, payload))
        return bits_sent


def run_protocol(
    program: Callable[[Context], Any],
    n: int,
    bandwidth: int,
    mode: Mode = Mode.UNICAST,
    inputs: Optional[Sequence[Any]] = None,
    **kwargs: Any,
) -> RunResult:
    """Convenience wrapper: build a :class:`Network` and run ``program``."""
    network = Network(n=n, bandwidth=bandwidth, mode=mode, **kwargs)
    return network.run(program, inputs=inputs)
