"""Synchronous message-passing front door for the congested clique.

This module implements the three communication models studied in the
paper:

* ``CLIQUE-UCAST(n, b)`` — every round, every node may send a *different*
  message of at most ``b`` bits on each of its ``n-1`` links.
* ``CLIQUE-BCAST(n, b)`` — every round, every node writes a single message
  of at most ``b`` bits that all other nodes receive (the shared-
  blackboard / number-in-hand multiparty model).
* ``CONGEST-UCAST`` — unicast with the communication topology restricted
  to the edges of an arbitrary graph.

Protocols are written as generator coroutines: each node's program yields
an :class:`Outbox` to end its round and is resumed with the
:class:`Inbox` of messages delivered to it.  The generator's return value
is the node's output.  The engine enforces bandwidth per the model,
counts rounds and bits, and can record a full transcript (needed by the
communication-complexity reductions of Section 3).

Execution engines
-----------------

*How* a program executes is not decided here: :meth:`Network.run` and
:meth:`Network.run_many` hand the program to an
:class:`~repro.core.engine.planner.ExecutionPlanner`, which selects one
of the pluggable backends in :mod:`repro.core.engine`:

* :class:`~repro.core.engine.fast.FastEngine` (default) — zero-churn
  round loop with the numpy bulk lanes of :mod:`repro.core.fastlane`,
  plus compiled record/replay for programs declared oblivious via
  :func:`~repro.core.compiled.mark_oblivious` and batched lockstep
  ``run_many``.
* :class:`~repro.core.engine.legacy.LegacyEngine` — the original
  per-round-allocation loop, kept as the executable reference
  semantics; the equivalence suites pin every other backend to it
  byte-for-byte.
* :class:`~repro.core.engine.kernel.KernelEngine` — declared
  :class:`~repro.core.kernels.KernelProgram`\\ s executed as stacked
  matrix operations, zero generator steps.

The ``engine="fast"|"legacy"`` constructor argument is kept as a thin
compatibility shim over the planner: it pins the named backend for
generator programs (kernel programs always take the kernel path — they
have no other semantics).  New code can pass any
:class:`~repro.core.engine.base.Engine` instance instead, which is how
additional backends plug in without touching this module.

Inboxes are only valid for the round in which they are delivered: the
fast engine recycles the underlying buffers, so a program must not stash
an :class:`Inbox` and read it in a later round (copy what you need).

All cross-run state lives on the :class:`Network` — the compiled
schedule cache, the RNG state bundle, the kernel lane buffers and the
``schedule_stats`` counters — so the stateless engine singletons can
serve any number of networks.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.bits import Bits
from repro.core.compiled import CompiledSchedule
from repro.core.mailbox import (
    EMPTY_INBOX,
    _SILENT_OUTBOX,
    Inbox,
    Outbox,
    inbox_uints,
)
from repro.core.errors import (
    BandwidthExceededError,
    MaxRoundsExceededError,
    ProtocolError,
    RoundLimitExceeded,
    TopologyError,
)

__all__ = [
    "Mode",
    "Inbox",
    "Outbox",
    "Context",
    "RoundRecord",
    "RunResult",
    "Network",
    "run_protocol",
    "inbox_uints",
    "EMPTY_INBOX",
]


class Mode(enum.Enum):
    """Communication model selector."""

    UNICAST = "unicast"
    BROADCAST = "broadcast"
    CONGEST = "congest"


# Message containers live in repro.core.mailbox; re-exported here for
# compatibility (every protocol module historically imports them from
# repro.core.network).
_ = (Inbox, Outbox, inbox_uints, EMPTY_INBOX, _SILENT_OUTBOX)


@dataclass
class Context:
    """Per-node view of the network, handed to each node program.

    ``rng`` is this node's private coin.  ``shared_rng`` is the public
    coin: every node receives its *own* ``random.Random`` instance, but
    all of them are seeded identically, so node ``v``'s k-th draw equals
    node ``u``'s k-th draw no matter how the engine interleaves node
    executions.  The contract is per-node-identical *streams*: nodes
    agree on shared randomness as long as they make the same sequence of
    draw calls (the natural lockstep discipline of a synchronous
    protocol).  A single genuinely shared instance would break exactly
    this — interleaved draws would hand each node a disjoint slice of
    one stream.
    """

    node_id: int
    n: int
    bandwidth: int
    mode: Mode
    neighbors: Tuple[int, ...]
    rng: random.Random
    shared_rng: random.Random
    input: Any = None


@dataclass
class RoundRecord:
    """Transcript of one round: list of (sender, receiver, bits); a
    broadcast is recorded once with ``receiver=None``."""

    sends: List[Tuple[int, Optional[int], Bits]] = field(default_factory=list)

    def bits(self) -> int:
        return sum(len(m) for _, _, m in self.sends)


@dataclass
class RunResult:
    """Outcome of one protocol execution.

    ``faults`` is the canonical list of
    :class:`~repro.core.faults.FaultEvent`\\ s injected by an active
    :class:`~repro.core.faults.FaultPlan` (``None`` when no plan was
    active).  ``fallback`` records a graceful engine degradation —
    ``{"from": ..., "to": ..., "error": ...}`` — when the planned
    backend failed and the chain re-executed the run elsewhere.
    """

    outputs: List[Any]
    rounds: int
    total_bits: int
    max_round_bits: int
    transcript: Optional[List[RoundRecord]] = None
    faults: Optional[List[Any]] = None
    fallback: Optional[Dict[str, str]] = None
    #: Resume provenance when this run was restored from a
    #: :mod:`repro.core.checkpoint` snapshot — ``{"mode": "native" |
    #: "replay", "round": <completed rounds restored>, "checkpoint":
    #: <snapshot path>, ...}``; ``None`` for an uninterrupted run.
    resume: Optional[Dict[str, Any]] = None

    def blackboard_bits(self) -> int:
        """Total bits written, counting each broadcast once (the natural
        cost measure for the shared-blackboard model)."""
        return self.total_bits


NodeProgram = Callable[[Context], Any]


class Network:
    """Synchronous round-based network for ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes (players).
    bandwidth:
        Maximum message size ``b`` in bits (per link per round for
        unicast/CONGEST; per node per round for broadcast).
    mode:
        Which of the three communication models to enforce.
    topology:
        For :attr:`Mode.CONGEST`, an adjacency structure: a sequence of
        neighbour collections, one per node.  Ignored otherwise.
    seed:
        Seeds both the per-node private RNGs and the shared public-coin
        RNG, making every run reproducible.
    max_rounds:
        Safety budget; exceeding it raises :class:`MaxRoundsExceededError`.
    record_transcript:
        When true, the result carries a full per-round transcript (used
        by the lower-bound reductions to charge communication).
    fault_plan:
        An optional :class:`~repro.core.faults.FaultPlan`.  When the
        plan is *active*, every run executes under its deterministic
        chaos schedule (applied receive-side, identically on every
        engine) and the result's ``faults`` field lists the injected
        events; an inactive (all-zero) plan — and ``None`` — cost
        nothing on the hot path.
    round_limit:
        Watchdog bound on the round loop, independent of ``max_rounds``:
        exceeding it raises :class:`~repro.core.errors.RoundLimitExceeded`
        (a ``MaxRoundsExceededError`` subclass).  Use it to bound
        retransmission loops under fault injection without touching the
        safety budget.
    degrade:
        When true (the default), an engine that fails with a
        *non-protocol* error (a bug, a resource failure) triggers the
        planner's graceful-degradation chain — kernel → fast → legacy —
        and the fallback is recorded on the result.  Protocol-semantic
        errors (any :class:`~repro.core.errors.ReproError`) always
        propagate: they are the program's behaviour, not the engine's.
    engine:
        Which execution backend runs node programs.  ``"fast"`` (the
        default) and ``"legacy"`` are the historical string shim, kept
        for compatibility and resolved through the planner's engine
        registry; ``"auto"`` (or ``None``) lets the planner choose
        freely.  Any :class:`~repro.core.engine.base.Engine` instance is
        accepted too — the plug-in point for custom backends.  All
        backends produce identical :class:`RunResult`\\ s for the
        programs they support.
    """

    def __init__(
        self,
        n: int,
        bandwidth: int,
        mode: Mode = Mode.UNICAST,
        topology: Optional[Sequence[Sequence[int]]] = None,
        seed: int = 0,
        max_rounds: int = 1_000_000,
        record_transcript: bool = False,
        engine: Any = "fast",
        fault_plan: Optional[Any] = None,
        round_limit: Optional[int] = None,
        degrade: bool = True,
        schedule_cache: Optional[Any] = None,
        lane_allocator: Optional[Any] = None,
    ) -> None:
        from repro.core.engine.planner import DEFAULT_PLANNER, resolve_engine

        if n < 1:
            raise ValueError("need at least one node")
        if bandwidth < 1:
            raise ValueError("bandwidth must be at least 1 bit")
        if round_limit is not None and round_limit < 1:
            raise ValueError("round_limit must be at least 1 round")
        if fault_plan is not None:
            fault_plan.validate()
        self.n = n
        self.bandwidth = bandwidth
        self.mode = mode
        self.seed = seed
        self.max_rounds = max_rounds
        self.record_transcript = record_transcript
        self.fault_plan = fault_plan
        self.round_limit = round_limit
        self.degrade = degrade
        # Persistent cross-process schedule store (a directory path or
        # a ScheduleCache handle); None disables persistence.  Hit/miss
        # counters live on the handle, so each network's share of cache
        # traffic is observable.
        if schedule_cache is not None and not hasattr(schedule_cache, "load"):
            from repro.core.engine.schedule_cache import ScheduleCache

            schedule_cache = ScheduleCache(schedule_cache)
        self.schedule_cache = schedule_cache
        #: Optional zero-copy arena for stacked batch-lane buffers (see
        #: :class:`~repro.core.engine.delivery.SharedLaneArena`); the
        #: batch lanes call ``lane_allocator.zeros`` instead of
        #: ``np.zeros`` when set.
        self.lane_allocator = lane_allocator
        #: The engine argument as given (string shim or Engine instance).
        self.engine = engine
        #: Resolved backend pin (None = planner's choice), and the
        #: planner that maps each program to a backend.
        self._requested_engine = resolve_engine(engine)
        self._planner = DEFAULT_PLANNER
        if mode is Mode.CONGEST:
            if topology is None:
                raise TopologyError("CONGEST mode requires a topology")
            self._neighbors = [tuple(sorted(set(topology[v]))) for v in range(n)]
            for v, nbrs in enumerate(self._neighbors):
                if v in nbrs:
                    raise TopologyError(f"node {v} may not neighbour itself")
                for u in nbrs:
                    if not 0 <= u < n:
                        raise TopologyError(f"neighbour {u} out of range")
            # Membership checks are model-invariant: hoist them into
            # per-sender frozensets built once, not per message.
            self._allowed: Optional[List[frozenset]] = [
                frozenset(nbrs) for nbrs in self._neighbors
            ]
        else:
            everyone = tuple(range(n))
            self._neighbors = [
                tuple(u for u in everyone if u != v) for v in range(n)
            ]
            self._allowed = None
        # Boolean adjacency rows for vectorized CONGEST validation of
        # fixed-width outboxes; built lazily on first use.
        self._adj_mask = None
        # Compiled schedules for oblivious programs, keyed by their
        # mark_oblivious declaration (kernel programs key by object
        # identity).  Bounded; correctness never depends on a hit
        # (misses just record, stale entries are caught by the
        # per-round structural check).
        self._compiled: Dict[Any, CompiledSchedule] = {}
        #: Counters for the compilation layer: schedules recorded,
        #: instances replayed (incl. batched), structural-deviation
        #: fallbacks to full execution.
        self.schedule_stats: Dict[str, int] = {
            "compiled": 0,
            "replayed": 0,
            "fallbacks": 0,
        }
        #: Human-readable description of the program behind the most
        #: recent replay eviction (``None`` until a fallback happens);
        #: mirrors the :class:`~repro.core.errors.ReplayEvictionWarning`
        #: emitted at eviction time.
        self.last_eviction: Optional[str] = None
        # (seed, per-node states, shared state), captured once per seed:
        # every run (and every run_many instance) restores identical
        # per-node streams by cloning state instead of re-hashing the
        # seed strings.
        self._rng_states: Optional[Tuple[Any, List[Any], Any]] = None
        # Kernel-path delivery buffers, keyed by instance count (see
        # repro.core.kernels); small bounded cache, correctness never
        # depends on a hit.
        self._kernel_lanes: Dict[int, Any] = {}
        #: Counters of the most recent *checkpointed* run (see
        #: :mod:`repro.core.checkpoint`): snapshots written, rounds
        #: restored vs executed, resume provenance, corrupt snapshots
        #: skipped.  Untouched by ordinary runs.
        self.checkpoint_stats: Dict[str, Any] = {
            "engine": None,
            "run_id": None,
            "supported": None,
            "mode": None,
            "snapshots": 0,
            "rounds_executed": 0,
            "rounds_restored": 0,
            "resumed_from": None,
            "resumed_round": 0,
            "last_checkpoint": None,
            "corrupt_skipped": [],
        }

    # -- execution -------------------------------------------------------

    def run(
        self,
        program: Callable[[Context], Any],
        inputs: Optional[Sequence[Any]] = None,
        *,
        checkpoint: Any = None,
        resume_from: Any = None,
    ) -> RunResult:
        """Run ``program`` (a generator function taking a Context) on all
        nodes in lockstep and return the :class:`RunResult`.

        ``inputs[v]`` is exposed as ``ctx.input`` on node ``v``.

        ``program`` may also be a
        :class:`~repro.core.kernels.KernelProgram`, in which case the
        planner routes the whole round loop through the vectorized
        kernel backend (a kernel program *is* its own execution
        semantics, pinned to the generator reference by the equivalence
        suites).

        ``checkpoint`` takes a
        :class:`~repro.core.checkpoint.CheckpointPolicy` to snapshot the
        run at round boundaries; ``resume_from`` (``"auto"``, a snapshot
        path, or a loaded :class:`~repro.core.checkpoint.RunCheckpoint`)
        restores a previous snapshot — byte-identical to the
        uninterrupted run.  Both default to ``None``: the ordinary hot
        path is untouched.
        """
        if checkpoint is None and resume_from is None:
            return self._planner.execute(self, program, inputs)
        return self._planner.execute(
            self, program, inputs,
            checkpoint=checkpoint, resume_from=resume_from,
        )

    def run_many(
        self,
        program: Callable[[Context], Any],
        inputs_list: Sequence[Optional[Sequence[Any]]],
        *,
        checkpoint: Any = None,
        resume_from: Any = None,
    ) -> List[RunResult]:
        """Run ``program`` once per entry of ``inputs_list`` and return
        one :class:`RunResult` per instance, byte-identical to calling
        :meth:`run` sequentially.

        When ``program`` is declared oblivious
        (:func:`~repro.core.compiled.mark_oblivious`), the fast backend
        records one compiled schedule and replays the remaining
        instances **in lockstep** through stacked payload matrices
        (:class:`~repro.core.fastlane.BatchLane`); kernel programs batch
        natively.  Undeclared programs, the legacy backend, and
        transcript-recording networks take the sequential path.
        """
        if checkpoint is None and resume_from is None:
            return self._planner.execute_many(self, program, inputs_list)
        return self._planner.execute_many(
            self, program, inputs_list,
            checkpoint=checkpoint, resume_from=resume_from,
        )

    def _check_inputs(self, inputs: Optional[Sequence[Any]]) -> None:
        if inputs is not None and len(inputs) != self.n:
            raise ProtocolError(
                f"got {len(inputs)} inputs for {self.n} nodes; "
                "Network.run needs exactly one input per node "
                "(pass inputs=None for input-free protocols)"
            )

    def _compiled_entry(self, key) -> Optional[CompiledSchedule]:
        """The cached schedule for ``key``, evicting it first if the
        network's bandwidth or mode was reassigned since it was
        recorded (the recorded rounds were validated under the old
        parameters, so replaying them would skip the new limits)."""
        entry = self._compiled.get(key)
        if entry is not None and entry.params != (self.bandwidth, self.mode):
            del self._compiled[key]
            return None
        return entry

    # -- resilience hooks the engines consume ----------------------------

    def _fault_session(self) -> Optional[Any]:
        """A fresh per-run fault session, or ``None`` when no active
        plan is installed (one attribute check — the zero-overhead
        contract of disabled fault injection)."""
        plan = self.fault_plan
        if plan is None:
            return None
        return plan.session(self)

    def _round_cap(self) -> int:
        """The binding round bound: the watchdog ``round_limit`` when it
        is tighter than ``max_rounds``."""
        limit = self.round_limit
        if limit is not None and limit < self.max_rounds:
            return limit
        return self.max_rounds

    def _round_cap_error(self, rounds: int) -> MaxRoundsExceededError:
        """The exception matching whichever bound ``rounds`` hit."""
        limit = self.round_limit
        if limit is not None and rounds >= limit:
            return RoundLimitExceeded(
                f"watchdog: protocol still running after {rounds} rounds "
                f"(round_limit {limit})"
            )
        return MaxRoundsExceededError(
            f"protocol still running after {rounds} rounds"
        )

    # -- per-run state the engines consume -------------------------------

    def _rng_state_bundle(self) -> Tuple[Any, List[Any], Any]:
        """(seed, per-node private states, shared state) — hashed once
        per seed, cloned by every run (and by the kernel runner)."""
        states = self._rng_states
        if states is None or states[0] != self.seed:
            # Hash the seed strings once; later runs clone the captured
            # states, which is cheaper than re-seeding and guarantees
            # every run starts from identical streams.  Keyed on the
            # seed so reassigning ``network.seed`` takes effect.
            private = [
                random.Random(f"{self.seed}:node:{v}").getstate()
                for v in range(self.n)
            ]
            shared = random.Random(f"{self.seed}:shared").getstate()
            states = self._rng_states = (self.seed, private, shared)
        return states

    def _make_contexts(self, inputs: Optional[Sequence[Any]]) -> List[Context]:
        _seed, private_states, shared_state = self._rng_state_bundle()
        new = random.Random.__new__
        contexts = []
        for v in range(self.n):
            rng = new(random.Random)
            rng.setstate(private_states[v])
            # Identically seeded per-node streams — see Context.
            shared_rng = new(random.Random)
            shared_rng.setstate(shared_state)
            contexts.append(
                Context(
                    node_id=v,
                    n=self.n,
                    bandwidth=self.bandwidth,
                    mode=self.mode,
                    neighbors=self._neighbors[v],
                    rng=rng,
                    shared_rng=shared_rng,
                    input=None if inputs is None else inputs[v],
                )
            )
        return contexts

    def _start(self, program, inputs, check=None):
        if check is None:
            check = self._check_outbox
        contexts = self._make_contexts(inputs)
        outputs: List[Any] = [None] * self.n
        generators: Dict[int, Any] = {}
        pending_outbox: Dict[int, Outbox] = {}
        for v in range(self.n):
            gen = program(contexts[v])
            if not hasattr(gen, "send"):
                # A plain function: purely local computation, zero rounds.
                outputs[v] = gen
                continue
            try:
                pending_outbox[v] = check(v, next(gen))
                generators[v] = gen
            except StopIteration as stop:
                outputs[v] = stop.value
        return outputs, generators, pending_outbox

    def _check_outbox(self, sender: int, yielded: Any) -> Outbox:
        if yielded is None:
            return _SILENT_OUTBOX
        if not isinstance(yielded, Outbox):
            raise ProtocolError(
                f"node {sender} yielded {type(yielded).__name__}, expected Outbox"
            )
        kind = yielded.kind
        if kind in ("broadcast", "bfixed") and self.mode is not Mode.BROADCAST:
            raise ProtocolError(
                f"node {sender} broadcast in a {self.mode.value} network"
            )
        if kind in ("unicast", "fixed") and self.mode is Mode.BROADCAST:
            raise ProtocolError(
                f"node {sender} unicast in a broadcast network"
            )
        if kind == "bfixed" and yielded.width > self.bandwidth:
            # The payload itself was validated at construction; only the
            # network-dependent bandwidth bound is checked here.
            raise BandwidthExceededError(
                f"node {sender} broadcast {yielded.width} bits "
                f"(bandwidth {self.bandwidth})"
            )
        if kind == "fixed" and not yielded._is_validated(self, sender):
            # Whole-outbox vectorized validation, hoisted out of delivery
            # (and out of the round loop entirely for reused outboxes).
            from repro.core import fastlane

            adj_row = None
            allowed_set = None
            if self._allowed is not None:
                # Small outboxes check against the per-sender frozenset;
                # the dense n×n mask is only worth building (O(n²)
                # memory) for genuinely bulk senders.
                if yielded.dests.size < 32:
                    allowed_set = self._allowed[sender]
                else:
                    if self._adj_mask is None:
                        self._adj_mask = fastlane.adjacency_mask(
                            self.n, self._neighbors
                        )
                    adj_row = self._adj_mask[sender]
            fastlane.validate_fixed(
                yielded, sender, self.n, self.bandwidth, adj_row, allowed_set
            )
            yielded._mark_validated(self, sender)
        return yielded


def run_protocol(
    program: Callable[[Context], Any],
    n: int,
    bandwidth: int,
    mode: Mode = Mode.UNICAST,
    inputs: Optional[Sequence[Any]] = None,
    **kwargs: Any,
) -> RunResult:
    """Convenience wrapper: build a :class:`Network` and run ``program``."""
    network = Network(n=n, bandwidth=bandwidth, mode=mode, **kwargs)
    return network.run(program, inputs=inputs)
