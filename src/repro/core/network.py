"""Synchronous message-passing engine for the congested clique.

This module implements the three communication models studied in the
paper:

* ``CLIQUE-UCAST(n, b)`` — every round, every node may send a *different*
  message of at most ``b`` bits on each of its ``n-1`` links.
* ``CLIQUE-BCAST(n, b)`` — every round, every node writes a single message
  of at most ``b`` bits that all other nodes receive (the shared-
  blackboard / number-in-hand multiparty model).
* ``CONGEST-UCAST`` — unicast with the communication topology restricted
  to the edges of an arbitrary graph.

Protocols are written as generator coroutines: each node's program yields
an :class:`Outbox` to end its round and is resumed with the
:class:`Inbox` of messages delivered to it.  The generator's return value
is the node's output.  The engine enforces bandwidth per the model,
counts rounds and bits, and can record a full transcript (needed by the
communication-complexity reductions of Section 3).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.bits import Bits
from repro.core.errors import (
    BandwidthExceededError,
    MaxRoundsExceededError,
    ProtocolError,
    TopologyError,
)

__all__ = [
    "Mode",
    "Inbox",
    "Outbox",
    "Context",
    "RoundRecord",
    "RunResult",
    "Network",
    "run_protocol",
]


class Mode(enum.Enum):
    """Communication model selector."""

    UNICAST = "unicast"
    BROADCAST = "broadcast"
    CONGEST = "congest"


class Inbox:
    """Messages delivered to one node in one round, keyed by sender id."""

    __slots__ = ("_by_sender",)

    def __init__(self, by_sender: Dict[int, Bits]) -> None:
        self._by_sender = by_sender

    def get(self, sender: int) -> Optional[Bits]:
        return self._by_sender.get(sender)

    def senders(self) -> Tuple[int, ...]:
        return tuple(sorted(self._by_sender))

    def items(self):
        return sorted(self._by_sender.items())

    def __len__(self) -> int:
        return len(self._by_sender)

    def __contains__(self, sender: int) -> bool:
        return sender in self._by_sender

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Inbox({self._by_sender!r})"


EMPTY_INBOX = Inbox({})


class Outbox:
    """What one node sends in one round.

    Construct with :meth:`unicast`, :meth:`broadcast` or :meth:`silent`;
    the engine validates the kind against the network's :class:`Mode`.
    """

    __slots__ = ("kind", "messages", "payload")

    def __init__(self, kind: str, messages: Optional[Dict[int, Bits]], payload: Optional[Bits]):
        self.kind = kind
        self.messages = messages
        self.payload = payload

    @classmethod
    def unicast(cls, messages: Mapping[int, Bits]) -> "Outbox":
        return cls("unicast", dict(messages), None)

    @classmethod
    def broadcast(cls, payload: Bits) -> "Outbox":
        return cls("broadcast", None, payload)

    @classmethod
    def silent(cls) -> "Outbox":
        return cls("silent", None, None)


@dataclass
class Context:
    """Per-node view of the network, handed to each node program."""

    node_id: int
    n: int
    bandwidth: int
    mode: Mode
    neighbors: Tuple[int, ...]
    rng: random.Random
    shared_rng: random.Random
    input: Any = None


@dataclass
class RoundRecord:
    """Transcript of one round: list of (sender, receiver, bits); a
    broadcast is recorded once with ``receiver=None``."""

    sends: List[Tuple[int, Optional[int], Bits]] = field(default_factory=list)

    def bits(self) -> int:
        return sum(len(m) for _, _, m in self.sends)


@dataclass
class RunResult:
    """Outcome of one protocol execution."""

    outputs: List[Any]
    rounds: int
    total_bits: int
    max_round_bits: int
    transcript: Optional[List[RoundRecord]] = None

    def blackboard_bits(self) -> int:
        """Total bits written, counting each broadcast once (the natural
        cost measure for the shared-blackboard model)."""
        return self.total_bits


NodeProgram = Callable[[Context], Any]


class Network:
    """Synchronous round-based network for ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes (players).
    bandwidth:
        Maximum message size ``b`` in bits (per link per round for
        unicast/CONGEST; per node per round for broadcast).
    mode:
        Which of the three communication models to enforce.
    topology:
        For :attr:`Mode.CONGEST`, an adjacency structure: a sequence of
        neighbour collections, one per node.  Ignored otherwise.
    seed:
        Seeds both the per-node private RNGs and the shared public-coin
        RNG, making every run reproducible.
    max_rounds:
        Safety budget; exceeding it raises :class:`MaxRoundsExceededError`.
    record_transcript:
        When true, the result carries a full per-round transcript (used
        by the lower-bound reductions to charge communication).
    """

    def __init__(
        self,
        n: int,
        bandwidth: int,
        mode: Mode = Mode.UNICAST,
        topology: Optional[Sequence[Sequence[int]]] = None,
        seed: int = 0,
        max_rounds: int = 1_000_000,
        record_transcript: bool = False,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one node")
        if bandwidth < 1:
            raise ValueError("bandwidth must be at least 1 bit")
        self.n = n
        self.bandwidth = bandwidth
        self.mode = mode
        self.seed = seed
        self.max_rounds = max_rounds
        self.record_transcript = record_transcript
        if mode is Mode.CONGEST:
            if topology is None:
                raise TopologyError("CONGEST mode requires a topology")
            self._neighbors = [tuple(sorted(set(topology[v]))) for v in range(n)]
            for v, nbrs in enumerate(self._neighbors):
                if v in nbrs:
                    raise TopologyError(f"node {v} may not neighbour itself")
                for u in nbrs:
                    if not 0 <= u < n:
                        raise TopologyError(f"neighbour {u} out of range")
        else:
            everyone = tuple(range(n))
            self._neighbors = [
                tuple(u for u in everyone if u != v) for v in range(n)
            ]

    # -- execution -------------------------------------------------------

    def run(
        self,
        program: Callable[[Context], Any],
        inputs: Optional[Sequence[Any]] = None,
    ) -> RunResult:
        """Run ``program`` (a generator function taking a Context) on all
        nodes in lockstep and return the :class:`RunResult`.

        ``inputs[v]`` is exposed as ``ctx.input`` on node ``v``.
        """
        contexts = [
            Context(
                node_id=v,
                n=self.n,
                bandwidth=self.bandwidth,
                mode=self.mode,
                neighbors=self._neighbors[v],
                rng=random.Random(f"{self.seed}:node:{v}"),
                shared_rng=random.Random(f"{self.seed}:shared"),
                input=None if inputs is None else inputs[v],
            )
            for v in range(self.n)
        ]

        outputs: List[Any] = [None] * self.n
        generators: Dict[int, Any] = {}
        pending_outbox: Dict[int, Outbox] = {}

        for v in range(self.n):
            gen = program(contexts[v])
            if not hasattr(gen, "send"):
                # A plain function: purely local computation, zero rounds.
                outputs[v] = gen
                continue
            try:
                pending_outbox[v] = self._check_outbox(v, next(gen))
                generators[v] = gen
            except StopIteration as stop:
                outputs[v] = stop.value

        rounds = 0
        total_bits = 0
        max_round_bits = 0
        transcript: Optional[List[RoundRecord]] = [] if self.record_transcript else None

        while generators:
            if rounds >= self.max_rounds:
                raise MaxRoundsExceededError(
                    f"protocol still running after {rounds} rounds"
                )
            rounds += 1
            inboxes: Dict[int, Dict[int, Bits]] = {v: {} for v in range(self.n)}
            record = RoundRecord() if self.record_transcript else None
            round_bits = 0
            for v, outbox in pending_outbox.items():
                round_bits += self._deliver(v, outbox, inboxes, record)
            total_bits += round_bits
            max_round_bits = max(max_round_bits, round_bits)
            if record is not None:
                transcript.append(record)

            pending_outbox = {}
            finished = []
            for v, gen in generators.items():
                inbox = Inbox(inboxes[v]) if inboxes[v] else EMPTY_INBOX
                try:
                    pending_outbox[v] = self._check_outbox(v, gen.send(inbox))
                except StopIteration as stop:
                    outputs[v] = stop.value
                    finished.append(v)
            for v in finished:
                del generators[v]

        return RunResult(
            outputs=outputs,
            rounds=rounds,
            total_bits=total_bits,
            max_round_bits=max_round_bits,
            transcript=transcript,
        )

    # -- internals -------------------------------------------------------

    def _check_outbox(self, sender: int, yielded: Any) -> Outbox:
        if yielded is None:
            return Outbox.silent()
        if not isinstance(yielded, Outbox):
            raise ProtocolError(
                f"node {sender} yielded {type(yielded).__name__}, expected Outbox"
            )
        if yielded.kind == "broadcast" and self.mode is not Mode.BROADCAST:
            raise ProtocolError(
                f"node {sender} broadcast in a {self.mode.value} network"
            )
        if yielded.kind == "unicast" and self.mode is Mode.BROADCAST:
            raise ProtocolError(
                f"node {sender} unicast in a broadcast network"
            )
        return yielded

    def _deliver(
        self,
        sender: int,
        outbox: Outbox,
        inboxes: Dict[int, Dict[int, Bits]],
        record: Optional[RoundRecord],
    ) -> int:
        bits_sent = 0
        if outbox.kind == "silent":
            return 0
        if outbox.kind == "broadcast":
            payload = outbox.payload
            if not isinstance(payload, Bits):
                raise ProtocolError(f"node {sender} broadcast a non-Bits payload")
            if len(payload) > self.bandwidth:
                raise BandwidthExceededError(
                    f"node {sender} broadcast {len(payload)} bits "
                    f"(bandwidth {self.bandwidth})"
                )
            if len(payload) == 0:
                return 0
            for dest in self._neighbors[sender]:
                inboxes[dest][sender] = payload
            bits_sent = len(payload)
            if record is not None:
                record.sends.append((sender, None, payload))
            return bits_sent
        # unicast / CONGEST
        allowed = None
        if self.mode is Mode.CONGEST:
            allowed = set(self._neighbors[sender])
        for dest, payload in outbox.messages.items():
            if not isinstance(payload, Bits):
                raise ProtocolError(f"node {sender} sent a non-Bits payload")
            if dest == sender:
                raise TopologyError(f"node {sender} sent a message to itself")
            if not 0 <= dest < self.n:
                raise TopologyError(f"node {sender} sent to out-of-range {dest}")
            if allowed is not None and dest not in allowed:
                raise TopologyError(
                    f"node {sender} sent to non-neighbour {dest} in CONGEST"
                )
            if len(payload) > self.bandwidth:
                raise BandwidthExceededError(
                    f"node {sender} sent {len(payload)} bits to {dest} "
                    f"(bandwidth {self.bandwidth})"
                )
            if len(payload) == 0:
                continue
            inboxes[dest][sender] = payload
            bits_sent += len(payload)
            if record is not None:
                record.sends.append((sender, dest, payload))
        return bits_sent


def run_protocol(
    program: Callable[[Context], Any],
    n: int,
    bandwidth: int,
    mode: Mode = Mode.UNICAST,
    inputs: Optional[Sequence[Any]] = None,
    **kwargs: Any,
) -> RunResult:
    """Convenience wrapper: build a :class:`Network` and run ``program``."""
    network = Network(n=n, bandwidth=bandwidth, mode=mode, **kwargs)
    return network.run(program, inputs=inputs)
