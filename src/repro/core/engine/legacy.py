"""The legacy reference engine: per-round allocation, scalar delivery.

This is the original round loop the project started from, kept as the
*executable reference semantics*: every other backend is pinned
byte-for-byte to its results by the equivalence suites.  It allocates
fresh inbox dicts every round, delivers every message through the fully
validating scalar path, and never caches or replays anything — slow,
simple, and obviously correct.

It executes generator node programs only; kernel programs declare their
round structure instead of yielding it, so there is no legacy semantics
for them to fall back to (the planner routes them to the kernel engine,
and :meth:`Engine.check_program` rejects a direct request).

Checkpointing: live generator frames cannot be pickled, so this engine
honestly reports ``supports_checkpoint=False``.  A checkpoint/resume
request still works — through the base class's deterministic
replay-restore path: the run re-executes from round 0 (same seed, same
inputs, byte-identical result) and the result records
``resume={"mode": "replay", ...}`` so provenance never overstates what
was saved.  No snapshots are ever written by this engine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.engine.base import Engine
from repro.core.engine.delivery import deliver_outbox

__all__ = ["LegacyEngine"]


class LegacyEngine(Engine):
    """Reference per-round-allocation loop (``engine="legacy"``)."""

    name = "legacy"
    supports_generator_programs = True
    supports_kernel_programs = False
    supports_transcript = True
    supports_compiled_replay = False
    supports_batched_replay = False
    # Live generators cannot be pickled: restores replay from round 0.
    supports_checkpoint = False

    def _run(self, network: Any, program, inputs) -> Any:
        from repro.core.network import EMPTY_INBOX, Inbox, RoundRecord, RunResult

        outputs, generators, pending_outbox = network._start(program, inputs)

        rounds = 0
        total_bits = 0
        max_round_bits = 0
        recording = network.record_transcript
        transcript: Optional[List[Any]] = [] if recording else None
        faults = network._fault_session()
        round_cap = network._round_cap()

        while generators:
            if rounds >= round_cap:
                raise network._round_cap_error(rounds)
            rounds += 1
            inboxes: Dict[int, Dict[int, Any]] = {v: {} for v in range(network.n)}
            record = RoundRecord() if recording else None
            round_bits = 0
            for v, outbox in pending_outbox.items():
                round_bits += deliver_outbox(
                    network, v, outbox, inboxes, record, rounds
                )
            total_bits += round_bits
            max_round_bits = max(max_round_bits, round_bits)
            if record is not None:
                transcript.append(record)
            if faults is not None:
                # Receive-side chaos: the wire (transcript, bit counts)
                # saw the real sends; what each node reads is the plan's
                # business from here on.
                faults.apply_scalar(rounds, inboxes)

            pending_outbox = {}
            finished = []
            for v, gen in generators.items():
                inbox = Inbox(inboxes[v]) if inboxes[v] else EMPTY_INBOX
                try:
                    pending_outbox[v] = network._check_outbox(v, gen.send(inbox))
                except StopIteration as stop:
                    outputs[v] = stop.value
                    finished.append(v)
            for v in finished:
                del generators[v]

        return RunResult(
            outputs=outputs,
            rounds=rounds,
            total_bits=total_bits,
            max_round_bits=max_round_bits,
            transcript=transcript,
            faults=faults.events if faults is not None else None,
        )
