"""The fast engine: zero-churn round loop, bulk lanes, compiled replay.

One backend owns the whole generator-program fast path:

* **Full execution** — per-round classification dispatches each round to
  the unicast bulk lane, the broadcast lane, or the scalar path, with
  reusable buffers provided by
  :class:`~repro.core.engine.delivery.DeliveryBackend`.
* **Recording** — a program declared oblivious
  (:func:`~repro.core.compiled.mark_oblivious`) has its first run
  recorded into a :class:`~repro.core.compiled.CompiledSchedule` cached
  on the network.
* **Replay** — later runs (and :meth:`run_many` sweeps, in lockstep
  through stacked :class:`~repro.core.fastlane.BatchLane` matrices)
  re-execute payload-only against the compiled structure; any
  structural deviation evicts the stale entry and falls back to full
  execution, which re-records.

The fallback chain is the engine's invariant: every path lands on
results byte-identical to :class:`~repro.core.engine.legacy.LegacyEngine`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.compiled import (
    BCAST,
    LANE,
    SCALAR,
    CompiledSchedule,
    ScheduleRecorder,
    oblivious_key,
)
from repro.core.engine.base import Engine
from repro.core.engine.delivery import (
    DeliveryBackend,
    batch_chunk_size,
    deliver_outbox,
    deliver_round_scalar,
)
from repro.core.errors import ProtocolError

__all__ = ["FastEngine"]

# A fixed-width round rides the bulk lane only when it averages at least
# this many messages per sender; sparser rounds are cheaper through the
# scalar dict path than through per-sender array operations.
_LANE_DENSITY = 8


class FastEngine(Engine):
    """Zero-churn loop with bulk lanes and compiled replay
    (``engine="fast"``, the default)."""

    name = "fast"
    supports_generator_programs = True
    supports_kernel_programs = False
    supports_transcript = True
    supports_compiled_replay = True
    supports_batched_replay = True
    # Checkpointed runs log the delivered wire per round and restore by
    # re-stepping fresh generators through the log (generator frames
    # themselves cannot be pickled); restored rounds are never
    # re-delivered, so a resumed run executes strictly fewer rounds.
    supports_checkpoint = True

    # -- front door ------------------------------------------------------

    def _run(self, network: Any, program, inputs) -> Any:
        plan = network.fault_plan
        if plan is not None and plan.is_active:
            # Chaos mode: replay and recording assume fault-free
            # structure (a fault changes what nodes receive, hence what
            # they send next), so every faulty run takes the full
            # scalar-delivery path under its own fresh session.
            return self._run_full(network, program, inputs)
        key = None if network.record_transcript else oblivious_key(program)
        if key is None:
            return self._run_full(network, program, inputs)
        compiled = network._compiled_entry(key)
        if compiled is None:
            compiled = self._load_cached(network, program, key)
        if compiled is not None:
            replayed = self._try_replay(network, program, [inputs], compiled, key)
            if replayed is not None:
                return replayed[0]
            # Structural deviation: the stale entry was evicted; fall
            # through to full execution, which re-records.
        return self._run_recording(network, program, inputs, key)

    def _run_many(self, network: Any, program, inputs_list) -> List[Any]:
        plan = network.fault_plan
        if plan is not None and plan.is_active:
            # One fresh session per instance: the schedule is a pure
            # function of (plan, coordinates), so sequential execution
            # matches run() exactly — the determinism contract.
            return [
                self._run_full(network, program, inputs)
                for inputs in inputs_list
            ]
        key = None if network.record_transcript else oblivious_key(program)
        if key is None or not inputs_list:
            return [self._run(network, program, inputs) for inputs in inputs_list]
        results: List[Any] = []
        rest = inputs_list
        if (
            network._compiled_entry(key) is None
            and self._load_cached(network, program, key) is None
        ):
            results.append(self._run_recording(network, program, inputs_list[0], key))
            rest = inputs_list[1:]
        # Bound the stacked replay buffers (~64 MB of uint64 send
        # matrices) by chunking large sweeps; replay state carries over
        # through the schedule cache, so chunking is invisible apart
        # from peak memory.
        chunk_size = batch_chunk_size(network.n)
        for start in range(0, len(rest), chunk_size):
            chunk = rest[start : start + chunk_size]
            compiled = network._compiled_entry(key)
            replayed = (
                self._try_replay(network, program, chunk, compiled, key)
                if compiled is not None
                else None
            )
            if replayed is None:
                # Deviation mid-chunk: re-execute the affected
                # instances from scratch (programs declared oblivious
                # must be side-effect-free, so the abandoned partial
                # executions are unobservable).  The first re-run
                # re-records, so conforming instances later in the
                # sweep regain batching; a second deviation within the
                # same chunk demotes its remainder to plain execution.
                replayed = [self._run_recording(network, program, chunk[0], key)]
                tail = chunk[1:]
                if tail:
                    compiled = network._compiled_entry(key)
                    again = (
                        self._try_replay(network, program, tail, compiled, key)
                        if compiled is not None
                        else None
                    )
                    if again is None:
                        again = [
                            self._run_full(network, program, inputs)
                            for inputs in tail
                        ]
                    replayed.extend(again)
            results.extend(replayed)
        return results

    # -- full execution --------------------------------------------------

    def _run_full(self, network: Any, program, inputs, recorder=None) -> Any:
        from repro.core.network import EMPTY_INBOX, RoundRecord, RunResult

        n = network.n
        outputs, generators, pending = network._start(program, inputs)

        rounds = 0
        total_bits = 0
        max_round_bits = 0
        recording = network.record_transcript
        transcript: Optional[List[Any]] = [] if recording else None

        faults = network._fault_session()
        round_cap = network._round_cap()

        # Reusable per-round state: buffers live for the whole run and
        # are cleared, never reconstructed; bulk lanes plug in lazily.
        # Under an active fault plan the backend is the fault-applying
        # wrapper and every round is forced through it (scalar), so the
        # plan sees each delivered message individually.
        if faults is not None:
            from repro.core.faults import FaultyDeliveryBackend

            backend: DeliveryBackend = FaultyDeliveryBackend(n, faults)
        else:
            backend = DeliveryBackend(n)
        inbox_dicts = backend.inbox_dicts
        inbox_views = backend.inbox_views
        fixed_list: List[Tuple[int, Any]] = []
        bcast_list: List[Tuple[int, Any]] = []
        lane = None  # FixedLane, allocated on the first bulk round
        blane = None  # BroadcastLane, allocated on the first bulk round
        check_outbox = network._check_outbox

        while generators:
            if rounds >= round_cap:
                raise network._round_cap_error(rounds)
            rounds += 1

            # Classify the round: it can ride the unicast bulk lane iff
            # every non-silent sender yielded a fixed-width outbox of one
            # width AND the round is dense enough that per-sender array
            # operations beat per-message dict writes; it can ride the
            # broadcast lane iff every non-silent sender yielded a
            # fixed-width broadcast of one width (a broadcast write is
            # always denser than its n-1 scalar deliveries, so there is
            # no density threshold).
            fixed_list.clear()
            bcast_list.clear()
            scalar_senders = False
            lane_width = 0
            bcast_width = 0
            fixed_messages = 0
            for v, outbox in pending.items():
                kind = outbox.kind
                if kind == "silent":
                    continue
                if kind == "fixed":
                    width = outbox.width
                    if lane_width == 0:
                        lane_width = width
                    elif width != lane_width:
                        scalar_senders = True
                    fixed_list.append((v, outbox))
                    fixed_messages += outbox.dests.size
                elif kind == "bfixed":
                    width = outbox.width
                    if bcast_width == 0:
                        bcast_width = width
                    elif width != bcast_width:
                        scalar_senders = True
                    bcast_list.append((v, outbox))
                else:
                    scalar_senders = True
            use_lane = (
                faults is None
                and bool(fixed_list)
                and not scalar_senders
                and not bcast_list
                and fixed_messages >= _LANE_DENSITY * len(fixed_list)
            )
            use_bcast_lane = (
                faults is None
                and bool(bcast_list)
                and not scalar_senders
                and not fixed_list
            )

            record = RoundRecord() if recording else None
            if use_lane:
                if lane is None:
                    lane = backend.fixed_lane()
                round_bits = lane.deliver(fixed_list, lane_width, record)
            elif use_bcast_lane:
                if blane is None:
                    blane = backend.bcast_lane()
                round_bits = blane.deliver(bcast_list, bcast_width, record)
            else:
                backend.begin_scalar_round()
                if record is not None:
                    round_bits = 0
                    for v, outbox in pending.items():
                        round_bits += deliver_outbox(
                            network, v, outbox, inbox_dicts, record, rounds
                        )
                else:
                    round_bits = deliver_round_scalar(
                        network, pending, inbox_dicts, rounds
                    )
                if faults is not None:
                    backend.apply_round(rounds)
            if recorder is not None:
                if use_lane:
                    recorder.lane_round(fixed_list, lane_width, round_bits)
                elif use_bcast_lane:
                    recorder.bcast_round(bcast_list, bcast_width, round_bits)
                else:
                    recorder.scalar_round(round_bits)
            total_bits += round_bits
            if round_bits > max_round_bits:
                max_round_bits = round_bits
            if record is not None:
                transcript.append(record)

            pending = {}
            finished = []
            if use_lane:
                for v, gen in generators.items():
                    try:
                        pending[v] = check_outbox(v, gen.send(lane.inbox(v)))
                    except StopIteration as stop:
                        outputs[v] = stop.value
                        finished.append(v)
            elif use_bcast_lane:
                for v, gen in generators.items():
                    try:
                        pending[v] = check_outbox(v, gen.send(blane.inbox(v)))
                    except StopIteration as stop:
                        outputs[v] = stop.value
                        finished.append(v)
            else:
                for v, gen in generators.items():
                    buf = inbox_dicts[v]
                    inbox = inbox_views[v] if buf else EMPTY_INBOX
                    try:
                        pending[v] = check_outbox(v, gen.send(inbox))
                    except StopIteration as stop:
                        outputs[v] = stop.value
                        finished.append(v)
            for v in finished:
                del generators[v]

        return RunResult(
            outputs=outputs,
            rounds=rounds,
            total_bits=total_bits,
            max_round_bits=max_round_bits,
            transcript=transcript,
            faults=faults.events if faults is not None else None,
        )

    # -- checkpointed execution ------------------------------------------

    def _run_checkpointed(self, network: Any, program, inputs, session) -> Any:
        """One checkpointed execution.

        The round loop is forced onto the fully validating scalar
        delivery path (no bulk lanes, no compiled replay) so the
        delivered wire of each round — per-receiver ``{sender: Bits}``
        maps, exactly what the legacy reference feeds its generators —
        can be captured into a wire log.  A snapshot is the log plus the
        accounting counters; restore re-runs ``_start`` and re-steps the
        fresh generators through the log (node-local compute replays,
        but no round is re-delivered), then continues the live loop.
        Byte-identical to the uninterrupted run: the scalar path is the
        reference semantics the equivalence suites pin every lane to.
        """
        import pickle

        from repro.core.compiled import describe_program
        from repro.core.network import EMPTY_INBOX, Inbox, RoundRecord, RunResult

        session.raise_if_preempted_at_start()
        n = network.n
        recording = network.record_transcript
        round_cap = network._round_cap()
        check_outbox = network._check_outbox
        light = self._check_outbox_light

        # -- restore: load the wire log and replay generators through it
        wire_log: List[Dict[int, Dict[int, Any]]] = []
        transcript: Optional[List[Any]] = [] if recording else None
        rounds = 0
        total_bits = 0
        max_round_bits = 0
        ckpt = session.resume_checkpoint()
        if ckpt is not None:
            try:
                wire_log = pickle.loads(ckpt.blobs["wire_log"])
                rounds = int(ckpt.counters["rounds"])
                total_bits = int(ckpt.counters["total_bits"])
                max_round_bits = int(ckpt.counters["max_round_bits"])
                if rounds != len(wire_log):
                    raise ValueError(
                        f"wire log holds {len(wire_log)} rounds, "
                        f"manifest says {rounds}"
                    )
                if recording:
                    transcript = pickle.loads(ckpt.blobs["transcript"])
            except Exception as exc:  # noqa: BLE001 - treat as unusable
                session.discard_resume(
                    "restore-failed", f"snapshot unusable: {exc}"
                )
                wire_log = []
                transcript = [] if recording else None
                rounds = total_bits = max_round_bits = 0
                ckpt = None

        outputs, generators, pending = network._start(
            program, inputs, check=light if wire_log else None
        )
        if wire_log:
            restore_failed = None
            try:
                last_index = len(wire_log) - 1
                for i, entry in enumerate(wire_log):
                    if not generators:
                        restore_failed = (
                            "generators finished before the logged "
                            "rounds ran out"
                        )
                        break
                    check = check_outbox if i == last_index else light
                    new_pending: Dict[int, Any] = {}
                    finished = []
                    for v, gen in generators.items():
                        delivered = entry.get(v)
                        inbox = Inbox(delivered) if delivered else EMPTY_INBOX
                        try:
                            new_pending[v] = check(v, gen.send(inbox))
                        except StopIteration as stop:
                            outputs[v] = stop.value
                            finished.append(v)
                    for v in finished:
                        del generators[v]
                    pending = new_pending
            except Exception as exc:  # noqa: BLE001 - inconsistent log
                restore_failed = f"replaying the wire log failed: {exc}"
            if restore_failed is not None:
                session.discard_resume("restore-failed", restore_failed)
                wire_log = []
                transcript = [] if recording else None
                rounds = total_bits = max_round_bits = 0
                outputs, generators, pending = network._start(program, inputs)
            else:
                session.mark_resumed(rounds)

        # -- live loop: scalar delivery + wire capture + snapshots
        backend = DeliveryBackend(n)
        inbox_dicts = backend.inbox_dicts
        inbox_views = backend.inbox_views
        schedule = describe_program(program)
        while generators:
            if rounds >= round_cap:
                raise network._round_cap_error(rounds)
            rounds += 1
            session.note_round()
            record = RoundRecord() if recording else None
            backend.begin_scalar_round()
            if record is not None:
                round_bits = 0
                for v, outbox in pending.items():
                    round_bits += deliver_outbox(
                        network, v, outbox, inbox_dicts, record, rounds
                    )
            else:
                round_bits = deliver_round_scalar(
                    network, pending, inbox_dicts, rounds
                )
            total_bits += round_bits
            if round_bits > max_round_bits:
                max_round_bits = round_bits
            if record is not None:
                transcript.append(record)
            wire_log.append(
                {v: dict(inbox_dicts[v]) for v in range(n) if inbox_dicts[v]}
            )

            pending = {}
            finished = []
            for v, gen in generators.items():
                buf = inbox_dicts[v]
                inbox = inbox_views[v] if buf else EMPTY_INBOX
                try:
                    pending[v] = check_outbox(v, gen.send(inbox))
                except StopIteration as stop:
                    outputs[v] = stop.value
                    finished.append(v)
            for v in finished:
                del generators[v]

            def build(r=rounds, bits=total_bits, maxb=max_round_bits):
                blobs = {"wire_log": pickle.dumps(wire_log)}
                if recording:
                    blobs["transcript"] = pickle.dumps(transcript)
                counters = {
                    "rounds": r,
                    "total_bits": bits,
                    "max_round_bits": maxb,
                }
                return {}, blobs, counters, {
                    "kind": "rounds",
                    "schedule": schedule,
                }

            session.maybe_snapshot(rounds, build, final_round=not generators)

        result = RunResult(
            outputs=outputs,
            rounds=rounds,
            total_bits=total_bits,
            max_round_bits=max_round_bits,
            transcript=transcript,
        )
        return session.finish(result)

    # -- persistent cache ------------------------------------------------

    def _load_cached(self, network: Any, program, key) -> Optional[CompiledSchedule]:
        """Try the cross-process schedule store; a hit is installed in
        the in-memory cache (so this runs once per program) and counts
        as neither a compile nor a replay.  A loaded schedule is a hint
        like any other: every replayed round is still structurally
        compared, so a wrong entry demotes to re-recording."""
        cache = network.schedule_cache
        if cache is None:
            return None
        from repro.core.engine.schedule_cache import program_digest

        identity = program_digest(program, network)
        if identity is None:
            return None
        entry = cache.load(identity[0], identity[1], network)
        if entry is None:
            return None
        if len(network._compiled) >= 32:
            network._compiled.pop(next(iter(network._compiled)))
        network._compiled[key] = entry
        return entry

    def _store_cached(self, network: Any, program, entry) -> None:
        cache = network.schedule_cache
        if cache is None:
            return
        from repro.core.engine.schedule_cache import program_digest

        identity = program_digest(program, network)
        if identity is not None:
            cache.store(identity[0], identity[1], entry, network, program)

    # -- recording -------------------------------------------------------

    def _run_recording(self, network: Any, program, inputs, key) -> Any:
        recorder = ScheduleRecorder()
        result = self._run_full(network, program, inputs, recorder=recorder)
        if len(network._compiled) >= 32:
            # Bounded cache: drop the oldest entry (insertion order).
            network._compiled.pop(next(iter(network._compiled)))
        entry = recorder.finish()
        entry.params = (network.bandwidth, network.mode)
        network._compiled[key] = entry
        network.schedule_stats["compiled"] += 1
        self._store_cached(network, program, entry)
        return result

    # -- compiled replay -------------------------------------------------

    def _bail(self, network: Any, key, program=None) -> None:
        """A replayed round deviated from the compiled structure: evict
        the stale schedule and signal the caller to fall back to full
        execution (which re-records).  Names the offending program (via
        its ``mark_oblivious`` metadata) in a
        :class:`~repro.core.errors.ReplayEvictionWarning` so a wrong
        obliviousness declaration is attributable, not a silent
        slowdown."""
        network._compiled.pop(key, None)
        network.schedule_stats["fallbacks"] += 1
        if network.schedule_cache is not None and program is not None:
            from repro.core.engine.schedule_cache import program_digest

            identity = program_digest(program, network)
            if identity is not None:
                network.schedule_cache.evict(identity[0])
        if program is not None:
            import warnings

            from repro.core.compiled import describe_program
            from repro.core.errors import ReplayEvictionWarning

            described = describe_program(program)
            network.last_eviction = described
            warnings.warn(
                f"compiled schedule evicted: {described} deviated from its "
                f"recorded structure despite being marked oblivious; run "
                f"`python -m repro.analysis` to locate the offending round",
                ReplayEvictionWarning,
                stacklevel=3,
            )
        return None

    @staticmethod
    def _check_outbox_light(sender: int, yielded: Any):
        """Replay-mode yield check: type only.  Mode, bandwidth and
        topology conformance are implied by the structural match against
        the compiled (fully validated) round; any mismatch bails to the
        full path, which re-validates from scratch."""
        from repro.core.network import _SILENT_OUTBOX, Outbox

        if yielded is None:
            return _SILENT_OUTBOX
        if isinstance(yielded, Outbox):
            return yielded
        raise ProtocolError(
            f"node {sender} yielded {type(yielded).__name__}, expected Outbox"
        )

    def _try_replay(
        self,
        network: Any,
        program,
        inputs_list: Sequence[Optional[Sequence[Any]]],
        compiled: CompiledSchedule,
        key: Any,
    ) -> Optional[List[Any]]:
        """Run every instance of ``inputs_list`` against ``compiled`` in
        lockstep; returns per-instance RunResults, or ``None`` if any
        round deviates structurally (after evicting the stale entry)."""
        import numpy as np

        from repro.core.fastlane import NUMERIC_WIDTH_LIMIT, BatchLane, BroadcastLane
        from repro.core.network import EMPTY_INBOX, RunResult

        n = network.n
        num_instances = len(inputs_list)
        crounds = compiled.rounds
        num_rounds = len(crounds)
        light = self._check_outbox_light
        full = network._check_outbox

        def check_for(r):
            # Rounds the compiled schedule will bulk-deliver are checked
            # structurally, so their yields skip validation; scalar
            # rounds (and anything past the schedule, which bails) go
            # through the ordinary fully validating check.
            if r < num_rounds and crounds[r][0] != SCALAR:
                return light
            return full

        check = check_for(0)
        outputs_l: List[List[Any]] = []
        gens_l: List[Dict[int, Any]] = []
        pending_l: List[Dict[int, Any]] = []
        for inputs in inputs_list:
            outputs, generators, pending = network._start(program, inputs, check=check)
            outputs_l.append(outputs)
            gens_l.append(generators)
            pending_l.append(pending)
        rounds_l = [0] * num_instances
        bits_l = [0] * num_instances
        maxb_l = [0] * num_instances

        lane: Optional[BatchLane] = None
        arena = network.lane_allocator
        lane_alloc = None if arena is None else arena.zeros
        blanes: Optional[List[Optional[BroadcastLane]]] = None
        scalar_state: Optional[List[Optional[DeliveryBackend]]] = None
        vbuf_num = vbuf_obj = dbuf = None
        scalar_bits: Dict[int, int] = {}
        # Per-instance (structure, outbox-list) of the previous lane
        # round.  Outboxes are immutable, so when a program re-yields
        # the *same* outbox objects under the same structure (the
        # zero-churn pattern), the round needs no re-verification and —
        # because the send matrix already holds those exact values — no
        # rewrite either.
        lane_memo: List[Optional[Tuple[Any, List[Any]]]] = [None] * num_instances

        round_cap = network._round_cap()
        r = 0
        while True:
            active = [k for k in range(num_instances) if gens_l[k]]
            if not active:
                break
            if r >= round_cap:
                # The watchdog binds replays too: a schedule recorded
                # under a looser budget must not sneak past the limit.
                raise network._round_cap_error(r)
            if r >= num_rounds:
                # The protocol outlived its compiled schedule.
                return self._bail(network, key, program)
            kind, payload, round_bits = crounds[r]

            if kind == LANE:
                struct = payload
                entries = struct.entries
                n_entries = len(entries)
                width = struct.width
                count = struct.count
                slices = struct.slices
                # Pass 1: match each instance's pending outboxes to the
                # compiled entries.  An outbox identical (by object) to
                # last lane round's at the same position under the same
                # structure is already verified *and* already written.
                need_write: List[int] = []  # instance slots to deliver
                round_outs: List[Tuple[int, List[Any]]] = []
                for k in active:
                    memo = lane_memo[k]
                    prev_outs = (
                        memo[1] if memo is not None and memo[0] is struct else None
                    )
                    outs: List[Any] = []
                    fresh = False
                    j = 0
                    for v, out in pending_l[k].items():
                        if out.kind == "silent":
                            continue
                        if j >= n_entries or v != entries[j][0]:
                            return self._bail(network, key, program)
                        if prev_outs is None or prev_outs[j] is not out:
                            if (
                                out.kind != "fixed"
                                or out.width != width
                                or out.dests.size != entries[j][2]
                            ):
                                return self._bail(network, key, program)
                            fresh = True
                        outs.append(out)
                        j += 1
                    if j != n_entries:
                        return self._bail(network, key, program)
                    lane_memo[k] = (struct, outs)
                    if fresh:
                        need_write.append(k)
                        round_outs.append((k, outs))
                # Pass 2: verify and deliver only the instances with
                # fresh outboxes, through stacked flat writes.
                if need_write and count:
                    written = len(need_write)
                    if width <= NUMERIC_WIDTH_LIMIT:
                        if vbuf_num is None or vbuf_num.shape[1] < count:
                            vbuf_num = np.empty(
                                (num_instances, count), dtype=np.uint64
                            )
                        vbuf = vbuf_num
                    else:
                        if vbuf_obj is None or vbuf_obj.shape[1] < count:
                            vbuf_obj = np.empty(
                                (num_instances, count), dtype=object
                            )
                        vbuf = vbuf_obj
                    if dbuf is None or dbuf.shape[1] < count:
                        dbuf = np.empty((num_instances, count), dtype=np.intp)
                    for i, (_k, outs) in enumerate(round_outs):
                        row_v = vbuf[i]
                        row_d = dbuf[i]
                        for j, out in enumerate(outs):
                            start, stop = slices[j]
                            if start != stop:
                                row_d[start:stop] = out.dests
                                row_v[start:stop] = out.values
                    if (dbuf[:written, :count] != struct.cols).any():
                        # Same shape, different destinations: still a
                        # structural deviation (the flat delivery indices
                        # and the skipped validation both assume the
                        # recorded destination vectors).
                        return self._bail(network, key, program)
                    # Payload values wider than the recorded width are
                    # demoted the same way, so the full path raises the
                    # identical ProtocolError a cold-cache run would.
                    if vbuf is vbuf_num:
                        if (vbuf[:written, :count] >> np.uint64(width)).any():
                            return self._bail(network, key, program)
                    elif any(
                        value >> width
                        for row in vbuf[:written, :count]
                        for value in row
                    ):
                        return self._bail(network, key, program)
                    if lane is None:
                        lane = BatchLane(n, num_instances, alloc=lane_alloc)
                    lane.deliver_compiled(
                        struct,
                        need_write,
                        [vbuf[i, :count] for i in range(written)],
                    )
                else:
                    # Nothing fresh to write (every instance re-yielded
                    # last round's outboxes, or the structure carries no
                    # messages): keep the lane's presence mask in sync
                    # with this structure — a no-op when unchanged.
                    if lane is None:
                        lane = BatchLane(n, num_instances, alloc=lane_alloc)
                    lane.deliver_compiled(struct, [], [])
            elif kind == BCAST:
                ids, width = payload
                n_ids = len(ids)
                if blanes is None:
                    blanes = [None] * num_instances
                for k in active:
                    senders = []
                    j = 0
                    for v, out in pending_l[k].items():
                        okind = out.kind
                        if okind == "silent":
                            continue
                        if (
                            j >= n_ids
                            or v != ids[j]
                            or okind != "bfixed"
                            or out.width != width
                        ):
                            return self._bail(network, key, program)
                        senders.append((v, out))
                        j += 1
                    if j != n_ids:
                        return self._bail(network, key, program)
                    blane = blanes[k]
                    if blane is None:
                        blane = blanes[k] = BroadcastLane(n)
                    blane.deliver(senders, width, None)
            else:  # SCALAR: ordinary validated delivery, per instance.
                if scalar_state is None:
                    scalar_state = [None] * num_instances
                scalar_bits.clear()
                for k in active:
                    backend = scalar_state[k]
                    if backend is None:
                        backend = scalar_state[k] = DeliveryBackend(n)
                    backend.begin_scalar_round()
                    scalar_bits[k] = deliver_round_scalar(
                        network, pending_l[k], backend.inbox_dicts, r + 1
                    )

            check = check_for(r + 1)
            for k in active:
                bits = round_bits if kind != SCALAR else scalar_bits[k]
                rounds_l[k] += 1
                bits_l[k] += bits
                if bits > maxb_l[k]:
                    maxb_l[k] = bits
                generators = gens_l[k]
                outputs = outputs_l[k]
                new_pending: Dict[int, Any] = {}
                finished = []
                if kind == LANE:
                    for v, gen in generators.items():
                        try:
                            new_pending[v] = check(v, gen.send(lane.inbox(k, v)))
                        except StopIteration as stop:
                            outputs[v] = stop.value
                            finished.append(v)
                elif kind == BCAST:
                    blane = blanes[k]
                    for v, gen in generators.items():
                        try:
                            new_pending[v] = check(v, gen.send(blane.inbox(v)))
                        except StopIteration as stop:
                            outputs[v] = stop.value
                            finished.append(v)
                else:
                    backend = scalar_state[k]
                    dicts = backend.inbox_dicts
                    views = backend.inbox_views
                    for v, gen in generators.items():
                        inbox = views[v] if dicts[v] else EMPTY_INBOX
                        try:
                            new_pending[v] = check(v, gen.send(inbox))
                        except StopIteration as stop:
                            outputs[v] = stop.value
                            finished.append(v)
                for v in finished:
                    del generators[v]
                pending_l[k] = new_pending
            r += 1

        compiled.replays += num_instances
        network.schedule_stats["replayed"] += num_instances
        return [
            RunResult(
                outputs=outputs_l[k],
                rounds=rounds_l[k],
                total_bits=bits_l[k],
                max_round_bits=maxb_l[k],
                transcript=None,
            )
            for k in range(num_instances)
        ]
