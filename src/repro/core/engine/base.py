"""The :class:`Engine` interface every execution backend implements.

An engine is a *stateless* strategy object: all per-network state (the
compiled-schedule cache, RNG state bundles, kernel lane buffers,
``schedule_stats``) lives on the :class:`~repro.core.network.Network`
that is passed into every call, so one engine instance can serve any
number of networks concurrently.  The module-level singletons in
:mod:`repro.core.engine.planner` are the instances the planner hands
out; custom backends (a process pool, a GPU lane) subclass
:class:`Engine`, set the capability flags honestly, and become
selectable by passing the instance as ``Network(engine=...)`` — no new
branch in :meth:`Network.run` required.

Capability flags
----------------

``supports_generator_programs`` / ``supports_kernel_programs`` describe
which program flavours the backend can execute at all; :meth:`Engine.run`
rejects a mismatch with :class:`~repro.core.errors.ProtocolError` before
any node code runs (and the planner's kernel-program rule consults
``supports_kernel_programs`` when honouring an explicitly requested
backend).  The remaining flags — ``supports_transcript``,
``supports_compiled_replay``, ``supports_batched_replay`` — are
descriptive metadata for tooling, docs and tests: they state what the
implementation does, they do not change routing or enforcement.

Contract
--------

``run``/``run_many`` must produce :class:`~repro.core.network.RunResult`
objects **byte-identical** to the legacy reference loop
(:class:`~repro.core.engine.legacy.LegacyEngine`) for every program the
backend accepts: same outputs, same round count, same bit accounting,
same exception types on protocol violations.  The equivalence suites
(``tests/test_engine_equivalence.py``, ``tests/test_compiled.py``,
``tests/test_kernels.py``) pin this contract.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.core.errors import ProtocolError

__all__ = ["Engine", "is_kernel_program"]


def is_kernel_program(program: Any) -> bool:
    """True when ``program`` is a declared
    :class:`~repro.core.kernels.KernelProgram` rather than a generator
    node program."""
    return bool(getattr(program, "is_kernel_program", False))


class Engine:
    """Abstract execution backend for :class:`~repro.core.network.Network`.

    Subclasses implement :meth:`_run` (one instance) and may override
    :meth:`_run_many` (K instances, default: sequential :meth:`_run`
    calls).  The public :meth:`run`/:meth:`run_many` wrappers perform
    the program-flavour check and per-instance input-length validation
    so every backend enforces the same front-door contract.
    """

    #: Short identifier, also the key in the planner's engine registry.
    name: str = "abstract"
    #: Can execute generator-coroutine node programs.
    supports_generator_programs: bool = True
    #: Can execute declared :class:`~repro.core.kernels.KernelProgram`\ s.
    supports_kernel_programs: bool = False
    #: Honours ``record_transcript`` networks.
    supports_transcript: bool = True
    #: Caches and replays compiled round schedules for oblivious programs.
    supports_compiled_replay: bool = False
    #: Executes ``run_many`` sweeps through stacked payload matrices.
    supports_batched_replay: bool = False

    # -- front door ------------------------------------------------------

    def run(
        self,
        network: Any,
        program: Callable,
        inputs: Optional[Sequence[Any]] = None,
    ) -> Any:
        """Execute ``program`` once on ``network`` and return its
        :class:`~repro.core.network.RunResult`."""
        self.check_program(network, program)
        network._check_inputs(inputs)
        return self._run(network, program, inputs)

    def run_many(
        self,
        network: Any,
        program: Callable,
        inputs_list: Sequence[Optional[Sequence[Any]]],
    ) -> List[Any]:
        """Execute ``program`` once per entry of ``inputs_list``,
        byte-identical to sequential :meth:`run` calls."""
        self.check_program(network, program)
        inputs_list = list(inputs_list)
        for inputs in inputs_list:
            network._check_inputs(inputs)
        return self._run_many(network, program, inputs_list)

    def check_program(self, network: Any, program: Callable) -> None:
        """Reject program flavours this backend cannot execute."""
        if is_kernel_program(program):
            if not self.supports_kernel_programs:
                raise ProtocolError(
                    f"the {self.name!r} engine cannot execute kernel "
                    "programs (use the kernel engine, or let the "
                    "planner pick automatically)"
                )
        elif not self.supports_generator_programs:
            raise ProtocolError(
                f"the {self.name!r} engine only executes kernel "
                "programs, got a generator node program"
            )

    # -- backend hooks ---------------------------------------------------

    def _run(self, network: Any, program: Callable, inputs) -> Any:
        raise NotImplementedError

    def _run_many(self, network: Any, program: Callable, inputs_list) -> List[Any]:
        return [self._run(network, program, inputs) for inputs in inputs_list]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
