"""The :class:`Engine` interface every execution backend implements.

An engine is a *stateless* strategy object: all per-network state (the
compiled-schedule cache, RNG state bundles, kernel lane buffers,
``schedule_stats``) lives on the :class:`~repro.core.network.Network`
that is passed into every call, so one engine instance can serve any
number of networks concurrently.  The module-level singletons in
:mod:`repro.core.engine.planner` are the instances the planner hands
out; custom backends (a process pool, a GPU lane) subclass
:class:`Engine`, set the capability flags honestly, and become
selectable by passing the instance as ``Network(engine=...)`` — no new
branch in :meth:`Network.run` required.

Capability flags
----------------

``supports_generator_programs`` / ``supports_kernel_programs`` describe
which program flavours the backend can execute at all; :meth:`Engine.run`
rejects a mismatch with :class:`~repro.core.errors.ProtocolError` before
any node code runs (and the planner's kernel-program rule consults
``supports_kernel_programs`` when honouring an explicitly requested
backend).  The remaining flags — ``supports_transcript``,
``supports_compiled_replay``, ``supports_batched_replay`` — are
descriptive metadata for tooling, docs and tests: they state what the
implementation does, they do not change routing or enforcement.

Contract
--------

``run``/``run_many`` must produce :class:`~repro.core.network.RunResult`
objects **byte-identical** to the legacy reference loop
(:class:`~repro.core.engine.legacy.LegacyEngine`) for every program the
backend accepts: same outputs, same round count, same bit accounting,
same exception types on protocol violations.  The equivalence suites
(``tests/test_engine_equivalence.py``, ``tests/test_compiled.py``,
``tests/test_kernels.py``) pin this contract.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.core.errors import ProtocolError

__all__ = ["Engine", "is_kernel_program"]


def is_kernel_program(program: Any) -> bool:
    """True when ``program`` is a declared
    :class:`~repro.core.kernels.KernelProgram` rather than a generator
    node program."""
    return bool(getattr(program, "is_kernel_program", False))


class Engine:
    """Abstract execution backend for :class:`~repro.core.network.Network`.

    Subclasses implement :meth:`_run` (one instance) and may override
    :meth:`_run_many` (K instances, default: sequential :meth:`_run`
    calls).  The public :meth:`run`/:meth:`run_many` wrappers perform
    the program-flavour check and per-instance input-length validation
    so every backend enforces the same front-door contract.
    """

    #: Short identifier, also the key in the planner's engine registry.
    name: str = "abstract"
    #: Can execute generator-coroutine node programs.
    supports_generator_programs: bool = True
    #: Can execute declared :class:`~repro.core.kernels.KernelProgram`\ s.
    supports_kernel_programs: bool = False
    #: Honours ``record_transcript`` networks.
    supports_transcript: bool = True
    #: Caches and replays compiled round schedules for oblivious programs.
    supports_compiled_replay: bool = False
    #: Executes ``run_many`` sweeps through stacked payload matrices.
    supports_batched_replay: bool = False
    #: Can snapshot a run mid-execution and restore it at a round
    #: boundary (see :mod:`repro.core.checkpoint`).  Backends without
    #: native support still honour checkpoint/resume requests through
    #: the deterministic replay-restore path — honestly reported as
    #: ``mode='replay'`` on the result.
    supports_checkpoint: bool = False

    # -- front door ------------------------------------------------------

    def run(
        self,
        network: Any,
        program: Callable,
        inputs: Optional[Sequence[Any]] = None,
        *,
        checkpoint: Any = None,
        resume_from: Any = None,
    ) -> Any:
        """Execute ``program`` once on ``network`` and return its
        :class:`~repro.core.network.RunResult`.

        ``checkpoint`` is an optional
        :class:`~repro.core.checkpoint.CheckpointPolicy`; ``resume_from``
        is ``"auto"``, a snapshot path, or a loaded
        :class:`~repro.core.checkpoint.RunCheckpoint`.  With both left
        ``None`` (the default) the call takes exactly the pre-checkpoint
        hot path."""
        self.check_program(network, program)
        network._check_inputs(inputs)
        if checkpoint is None and resume_from is None:
            return self._run(network, program, inputs)
        from repro.core.checkpoint import CheckpointSession

        session = CheckpointSession(
            self, network, program, inputs, checkpoint, resume_from
        )
        if not self.supports_checkpoint:
            return session.run_replay_restore(
                lambda: self._run(network, program, inputs)
            )
        return self._run_checkpointed(network, program, inputs, session)

    def run_many(
        self,
        network: Any,
        program: Callable,
        inputs_list: Sequence[Optional[Sequence[Any]]],
        *,
        checkpoint: Any = None,
        resume_from: Any = None,
    ) -> List[Any]:
        """Execute ``program`` once per entry of ``inputs_list``,
        byte-identical to sequential :meth:`run` calls.  Checkpointing
        snapshots at instance boundaries (the kernel engine additionally
        at its K-chunk boundaries)."""
        self.check_program(network, program)
        inputs_list = list(inputs_list)
        for inputs in inputs_list:
            network._check_inputs(inputs)
        if checkpoint is None and resume_from is None:
            return self._run_many(network, program, inputs_list)
        from repro.core.checkpoint import CheckpointSession

        session = CheckpointSession(
            self, network, program, list(inputs_list), checkpoint,
            resume_from, flavor=f"run_many/{len(inputs_list)}",
        )
        if not self.supports_checkpoint:
            return session.run_replay_restore_many(
                lambda: self._run_many(network, program, inputs_list)
            )
        return self._run_many_checkpointed(
            network, program, inputs_list, session
        )

    def check_program(self, network: Any, program: Callable) -> None:
        """Reject program flavours this backend cannot execute."""
        if is_kernel_program(program):
            if not self.supports_kernel_programs:
                raise ProtocolError(
                    f"the {self.name!r} engine cannot execute kernel "
                    "programs (use the kernel engine, or let the "
                    "planner pick automatically)"
                )
        elif not self.supports_generator_programs:
            raise ProtocolError(
                f"the {self.name!r} engine only executes kernel "
                "programs, got a generator node program"
            )

    # -- backend hooks ---------------------------------------------------

    def _run(self, network: Any, program: Callable, inputs) -> Any:
        raise NotImplementedError

    def _run_many(self, network: Any, program: Callable, inputs_list) -> List[Any]:
        return [self._run(network, program, inputs) for inputs in inputs_list]

    def _run_checkpointed(
        self, network: Any, program: Callable, inputs, session
    ) -> Any:
        """One checkpointed execution.  Backends that declare
        ``supports_checkpoint=True`` must implement this: honour the
        session's resume payload, call ``session.maybe_snapshot`` at
        every round boundary, and return ``session.finish(result)``."""
        raise NotImplementedError(
            f"{self.name!r} declares supports_checkpoint but does not "
            "implement _run_checkpointed"
        )

    def _run_many_checkpointed(
        self, network: Any, program: Callable, inputs_list, session
    ) -> List[Any]:
        """Checkpointed ``run_many``: the default snapshots the list of
        completed :class:`RunResult`\\ s at every *instance* boundary
        (one pickled blob), restores by skipping the completed prefix,
        and runs the remaining instances through the ordinary
        :meth:`_run`.  Backends with a cheaper natural boundary (the
        kernel engine's K-chunks) override it."""
        import pickle

        session.raise_if_preempted_at_start()
        completed: List[Any] = []
        ckpt = session.resume_checkpoint()
        if ckpt is not None:
            if (
                ckpt.meta.get("kind") != "instances"
                or ckpt.round_index > len(inputs_list)
            ):
                session.discard_resume(
                    "restore-failed",
                    "snapshot does not describe an instance boundary "
                    "of this sweep",
                )
            else:
                try:
                    completed = list(pickle.loads(ckpt.blobs["results"]))
                except Exception as exc:  # noqa: BLE001 - treat as corrupt
                    session.discard_resume(
                        "restore-failed",
                        f"results blob undecodable: {exc}",
                    )
                    completed = []
                else:
                    session.mark_resumed(ckpt.round_index)
        for index in range(len(completed), len(inputs_list)):
            result = self._run(network, program, inputs_list[index])
            completed.append(result)
            session.note_round()
            done = len(completed)

            def build(snapshot=tuple(completed)):
                return (
                    {},
                    {"results": pickle.dumps(list(snapshot))},
                    {"instances": len(snapshot)},
                    {"kind": "instances"},
                )

            session.maybe_snapshot(
                done, build, final_round=done == len(inputs_list)
            )
        return session.finish_many(completed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
