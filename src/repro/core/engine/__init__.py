"""Pluggable execution backends for the congested-clique network.

This package is the engine subsystem extracted from
:mod:`repro.core.network`.  The :class:`~repro.core.network.Network`
front door validates inputs and owns all cross-run state (compiled
schedules, RNG bundles, stats); *how* a program executes is delegated
through an :class:`~repro.core.engine.planner.ExecutionPlanner` to one
of the backends here:

========  ==========================================================
backend   strategy
========  ==========================================================
legacy    reference loop — fresh dicts each round, scalar delivery
fast      zero-churn loop, bulk lanes, compiled record/replay,
          batched ``run_many``
kernel    declared SPMD rounds executed as stacked matrix ops
========  ==========================================================

The planner contract: selection happens once per ``run``/``run_many``
call, purely from ``(network, program)`` — kernel programs go to the
kernel engine, an explicitly requested backend (``Network(engine=...)``,
string name or :class:`Engine` instance) is honoured, everything else
takes the fast engine.  Every backend must produce results
byte-identical to :class:`~repro.core.engine.legacy.LegacyEngine` for
the programs it accepts; capability flags on :class:`Engine` declare
what it accepts.  Adding a backend means subclassing
:class:`Engine` and passing an instance as ``engine=`` — not adding a
branch to ``Network.run``.

Delivery is shared, not per-engine: the lanes in
:mod:`repro.core.fastlane` plug into
:class:`~repro.core.engine.delivery.DeliveryBackend`, and the fully
validating scalar paths live in :mod:`repro.core.engine.delivery` so
every backend charges bits and raises protocol errors identically.

Resilience rides the same seams: a
:class:`~repro.core.faults.FaultPlan` on the network swaps the fast
engine's backend for the fault-applying
:class:`~repro.core.faults.FaultyDeliveryBackend` (the legacy loop and
kernel executor apply the same per-run
:class:`~repro.core.faults.FaultSession` to their own buffers), so an
identical deterministic chaos schedule hits every backend; and the
planner's ``execute``/``execute_many`` front door adds the graceful
kernel → fast → legacy degradation chain for engine failures.
"""

from repro.core.engine.base import Engine, is_kernel_program
from repro.core.engine.delivery import (
    DeliveryBackend,
    deliver_outbox,
    deliver_round_scalar,
)
from repro.core.engine.fast import FastEngine
from repro.core.engine.kernel import KernelEngine
from repro.core.engine.legacy import LegacyEngine
from repro.core.engine.planner import (
    DEFAULT_PLANNER,
    ENGINES,
    FAST_ENGINE,
    KERNEL_ENGINE,
    LEGACY_ENGINE,
    ExecutionPlanner,
    resolve_engine,
)

__all__ = [
    "Engine",
    "is_kernel_program",
    "DeliveryBackend",
    "deliver_outbox",
    "deliver_round_scalar",
    "LegacyEngine",
    "FastEngine",
    "KernelEngine",
    "ExecutionPlanner",
    "resolve_engine",
    "ENGINES",
    "LEGACY_ENGINE",
    "FAST_ENGINE",
    "KERNEL_ENGINE",
    "DEFAULT_PLANNER",
]
