"""The execution planner: one front door, the best backend per program.

:class:`ExecutionPlanner` replaces the attribute-sniffing dispatch that
used to live inline in :meth:`Network.run`.  Selection walks an ordered
**dispatch table** of named rules; the first rule that returns an engine
wins:

1. ``kernel-program`` — a declared
   :class:`~repro.core.kernels.KernelProgram` runs on the kernel engine
   (a kernel program *is* its own execution semantics; an explicitly
   requested backend is honoured only if it advertises
   ``supports_kernel_programs``).
2. ``requested`` — the backend the network was constructed with, via the
   ``Network(engine=...)`` shim: a string naming a registered engine, or
   any :class:`~repro.core.engine.base.Engine` instance (the plug-in
   point for new backends).
3. ``default`` — the fast engine, whose own fallback chain covers
   compiled replay for oblivious programs and full execution otherwise.

The planner never re-routes around a capability mismatch below rule 1:
if a requested backend cannot execute the program, the engine's own
``check_program`` raises, keeping surprises loud.  Selection is pure —
it never mutates the network — so ``plan`` can also be used to ask
"which backend *would* run this?" (the scenario matrix does).

Graceful degradation
--------------------

:meth:`ExecutionPlanner.execute` / :meth:`~ExecutionPlanner.execute_many`
wrap selection with the degradation chain: when the planned backend dies
with a *non-protocol* exception (an engine bug, a resource failure — not
a :class:`~repro.core.errors.ReproError`, which is the program's own
semantics and always propagates), the run is re-executed on the next
capable backend in kernel → fast → legacy order and the fallback is
recorded on the result.  The legacy engine is the reference semantics,
so *its* exceptions propagate unchanged; if the chain is exhausted
without reaching it, :class:`~repro.core.errors.EngineFallbackError`
chains the original failure.  ``Network(degrade=False)`` opts out.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.core.engine.base import Engine, is_kernel_program
from repro.core.engine.fast import FastEngine
from repro.core.engine.kernel import KernelEngine
from repro.core.engine.legacy import LegacyEngine
from repro.core.errors import EngineFallbackError, ReproError

__all__ = [
    "LEGACY_ENGINE",
    "FAST_ENGINE",
    "KERNEL_ENGINE",
    "ENGINES",
    "ExecutionPlanner",
    "resolve_engine",
]

#: Shared stateless singletons (all per-run state lives on the network).
LEGACY_ENGINE = LegacyEngine()
FAST_ENGINE = FastEngine()
KERNEL_ENGINE = KernelEngine()

#: Registry of built-in backends by name — the values accepted by the
#: ``Network(engine=...)`` shim besides direct Engine instances.
ENGINES = {
    LEGACY_ENGINE.name: LEGACY_ENGINE,
    FAST_ENGINE.name: FAST_ENGINE,
    KERNEL_ENGINE.name: KERNEL_ENGINE,
}


def resolve_engine(engine: Any) -> Optional[Engine]:
    """Normalize a ``Network(engine=...)`` value to an Engine instance.

    ``None`` and ``"auto"`` mean "let the planner choose" and resolve to
    ``None``; a known name resolves through :data:`ENGINES`; an
    :class:`Engine` instance passes through.  Anything else raises
    ``ValueError`` (the shim's historical contract).
    """
    if engine is None or engine == "auto":
        return None
    if isinstance(engine, Engine):
        return engine
    resolved = ENGINES.get(engine)
    if resolved is None:
        raise ValueError(f"unknown engine {engine!r}")
    return resolved


def _kernel_program_rule(network: Any, program: Any) -> Optional[Engine]:
    if not is_kernel_program(program):
        return None
    requested = network._requested_engine
    if requested is not None and requested.supports_kernel_programs:
        return requested
    return KERNEL_ENGINE


def _requested_rule(network: Any, program: Any) -> Optional[Engine]:
    return network._requested_engine


def _default_rule(network: Any, program: Any) -> Optional[Engine]:
    return FAST_ENGINE


class ExecutionPlanner:
    """Ordered rule table mapping ``(network, program)`` to an Engine."""

    #: Default dispatch table; each entry is ``(label, rule)`` with
    #: ``rule(network, program) -> Optional[Engine]``.
    DEFAULT_TABLE: Tuple[Tuple[str, Callable[[Any, Any], Optional[Engine]]], ...] = (
        ("kernel-program", _kernel_program_rule),
        ("requested", _requested_rule),
        ("default", _default_rule),
    )

    __slots__ = ("table",)

    def __init__(
        self,
        table: Optional[
            List[Tuple[str, Callable[[Any, Any], Optional[Engine]]]]
        ] = None,
    ) -> None:
        self.table = tuple(table) if table is not None else self.DEFAULT_TABLE

    def plan(self, network: Any, program: Any) -> Engine:
        """The backend that will execute ``program`` on ``network``."""
        for _label, rule in self.table:
            engine = rule(network, program)
            if engine is not None:
                return engine
        raise AssertionError("planner table has no default rule")

    def explain(self, network: Any, program: Any) -> Tuple[str, Engine]:
        """``(rule label, engine)`` — which table entry decided."""
        for label, rule in self.table:
            engine = rule(network, program)
            if engine is not None:
                return label, engine
        raise AssertionError("planner table has no default rule")

    # -- graceful degradation --------------------------------------------

    def fallback_chain(self, program: Any, failed: Engine) -> List[Engine]:
        """The engines that may stand in for ``failed`` on ``program``,
        most capable first (kernel → fast → legacy), restricted to
        backends that can execute the program's flavour at all."""
        kernel = is_kernel_program(program)
        chain: List[Engine] = []
        for engine in (KERNEL_ENGINE, FAST_ENGINE, LEGACY_ENGINE):
            if engine is failed or engine.name == failed.name:
                continue
            if kernel and not engine.supports_kernel_programs:
                continue
            if not kernel and not engine.supports_generator_programs:
                continue
            chain.append(engine)
        return chain

    def execute(
        self,
        network: Any,
        program: Any,
        inputs: Any = None,
        checkpoint: Any = None,
        resume_from: Any = None,
    ) -> Any:
        """Plan and run one execution, degrading on engine failure.
        Checkpoint/resume requests travel with the call: a fallback
        engine honours them too (natively or via replay-restore), and a
        :class:`~repro.core.errors.RunPreempted` — a ``ReproError`` —
        always propagates instead of degrading."""
        if checkpoint is None and resume_from is None:
            return self._degrade(
                network,
                program,
                lambda engine: engine.run(network, program, inputs),
            )
        return self._degrade(
            network,
            program,
            lambda engine: engine.run(
                network, program, inputs,
                checkpoint=checkpoint, resume_from=resume_from,
            ),
        )

    def execute_many(
        self,
        network: Any,
        program: Any,
        inputs_list: Any,
        checkpoint: Any = None,
        resume_from: Any = None,
    ) -> Any:
        """Plan and run a sweep, degrading on engine failure."""
        if checkpoint is None and resume_from is None:
            return self._degrade(
                network,
                program,
                lambda engine: engine.run_many(network, program, inputs_list),
            )
        return self._degrade(
            network,
            program,
            lambda engine: engine.run_many(
                network, program, inputs_list,
                checkpoint=checkpoint, resume_from=resume_from,
            ),
        )

    def _degrade(self, network: Any, program: Any, call: Callable[[Engine], Any]) -> Any:
        planned = self.plan(network, program)
        if not getattr(network, "degrade", True):
            return call(planned)
        try:
            return call(planned)
        except ReproError:
            # Protocol semantics (bandwidth, topology, round budget,
            # program contract): deterministic behaviour of the program
            # itself, identical on every backend — never masked.
            raise
        except Exception as exc:
            failures = [(planned.name, f"{type(exc).__name__}: {exc}")]
            chain = self.fallback_chain(program, planned)
            if not chain:
                raise
            last_exc: BaseException = exc
            for engine in chain:
                try:
                    result = call(engine)
                except ReproError:
                    raise
                except Exception as fallback_exc:  # noqa: BLE001
                    if engine is LEGACY_ENGINE:
                        # The reference semantics failed too: its
                        # exception *is* the truth about the program.
                        raise
                    failures.append(
                        (engine.name, f"{type(fallback_exc).__name__}: {fallback_exc}")
                    )
                    last_exc = fallback_exc
                    continue
                info = {
                    "from": planned.name,
                    "to": engine.name,
                    "error": failures[0][1],
                }
                for item in result if isinstance(result, list) else (result,):
                    item.fallback = dict(info)
                return result
            raise EngineFallbackError(
                "every engine in the degradation chain failed: "
                + "; ".join(f"{name}: {error}" for name, error in failures)
            ) from last_exc


#: The planner every network uses unless given its own.
DEFAULT_PLANNER = ExecutionPlanner()
