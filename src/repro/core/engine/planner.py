"""The execution planner: one front door, the best backend per program.

:class:`ExecutionPlanner` replaces the attribute-sniffing dispatch that
used to live inline in :meth:`Network.run`.  Selection walks an ordered
**dispatch table** of named rules; the first rule that returns an engine
wins:

1. ``kernel-program`` — a declared
   :class:`~repro.core.kernels.KernelProgram` runs on the kernel engine
   (a kernel program *is* its own execution semantics; an explicitly
   requested backend is honoured only if it advertises
   ``supports_kernel_programs``).
2. ``requested`` — the backend the network was constructed with, via the
   ``Network(engine=...)`` shim: a string naming a registered engine, or
   any :class:`~repro.core.engine.base.Engine` instance (the plug-in
   point for new backends).
3. ``default`` — the fast engine, whose own fallback chain covers
   compiled replay for oblivious programs and full execution otherwise.

The planner never re-routes around a capability mismatch below rule 1:
if a requested backend cannot execute the program, the engine's own
``check_program`` raises, keeping surprises loud.  Selection is pure —
it never mutates the network — so ``plan`` can also be used to ask
"which backend *would* run this?" (the scenario matrix does).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.core.engine.base import Engine, is_kernel_program
from repro.core.engine.fast import FastEngine
from repro.core.engine.kernel import KernelEngine
from repro.core.engine.legacy import LegacyEngine

__all__ = [
    "LEGACY_ENGINE",
    "FAST_ENGINE",
    "KERNEL_ENGINE",
    "ENGINES",
    "ExecutionPlanner",
    "resolve_engine",
]

#: Shared stateless singletons (all per-run state lives on the network).
LEGACY_ENGINE = LegacyEngine()
FAST_ENGINE = FastEngine()
KERNEL_ENGINE = KernelEngine()

#: Registry of built-in backends by name — the values accepted by the
#: ``Network(engine=...)`` shim besides direct Engine instances.
ENGINES = {
    LEGACY_ENGINE.name: LEGACY_ENGINE,
    FAST_ENGINE.name: FAST_ENGINE,
    KERNEL_ENGINE.name: KERNEL_ENGINE,
}


def resolve_engine(engine: Any) -> Optional[Engine]:
    """Normalize a ``Network(engine=...)`` value to an Engine instance.

    ``None`` and ``"auto"`` mean "let the planner choose" and resolve to
    ``None``; a known name resolves through :data:`ENGINES`; an
    :class:`Engine` instance passes through.  Anything else raises
    ``ValueError`` (the shim's historical contract).
    """
    if engine is None or engine == "auto":
        return None
    if isinstance(engine, Engine):
        return engine
    resolved = ENGINES.get(engine)
    if resolved is None:
        raise ValueError(f"unknown engine {engine!r}")
    return resolved


def _kernel_program_rule(network: Any, program: Any) -> Optional[Engine]:
    if not is_kernel_program(program):
        return None
    requested = network._requested_engine
    if requested is not None and requested.supports_kernel_programs:
        return requested
    return KERNEL_ENGINE


def _requested_rule(network: Any, program: Any) -> Optional[Engine]:
    return network._requested_engine


def _default_rule(network: Any, program: Any) -> Optional[Engine]:
    return FAST_ENGINE


class ExecutionPlanner:
    """Ordered rule table mapping ``(network, program)`` to an Engine."""

    #: Default dispatch table; each entry is ``(label, rule)`` with
    #: ``rule(network, program) -> Optional[Engine]``.
    DEFAULT_TABLE: Tuple[Tuple[str, Callable[[Any, Any], Optional[Engine]]], ...] = (
        ("kernel-program", _kernel_program_rule),
        ("requested", _requested_rule),
        ("default", _default_rule),
    )

    __slots__ = ("table",)

    def __init__(
        self,
        table: Optional[
            List[Tuple[str, Callable[[Any, Any], Optional[Engine]]]]
        ] = None,
    ) -> None:
        self.table = tuple(table) if table is not None else self.DEFAULT_TABLE

    def plan(self, network: Any, program: Any) -> Engine:
        """The backend that will execute ``program`` on ``network``."""
        for _label, rule in self.table:
            engine = rule(network, program)
            if engine is not None:
                return engine
        raise AssertionError("planner table has no default rule")

    def explain(self, network: Any, program: Any) -> Tuple[str, Engine]:
        """``(rule label, engine)`` — which table entry decided."""
        for label, rule in self.table:
            engine = rule(network, program)
            if engine is not None:
                return label, engine
        raise AssertionError("planner table has no default rule")


#: The planner every network uses unless given its own.
DEFAULT_PLANNER = ExecutionPlanner()
