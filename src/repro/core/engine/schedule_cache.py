"""Persistent, content-addressed cache of compiled round schedules.

The paper's protocols are oblivious: a program's round structure is a
pure function of its public parameters, never of the inputs.  The
in-process caches (the fast engine's recorded schedules, the kernel
engine's compiled exec rounds) already exploit that within one
``Network``; this module extends the amortization across *processes* —
a sweep's worker pool shares one cache directory, so each distinct
program is recorded or compiled exactly once for the whole sweep
instead of once per worker.

Layout (one directory per entry, checkpoint-store idiom)::

    <cache>/<digest>/manifest.json   # schema, full key, round table,
                                     # params, payload sha256
    <cache>/<digest>/payload.npz     # flat arrays of every distinct
                                     # LaneStructure (cols/sizes/senders
                                     # and optional per-message widths)

``digest`` is the first 16 hex digits of a sha256 over the program's
*cross-process stable* identity — its declared structure (kernel
programs) or the parts declared via
:func:`~repro.core.compiled.declare_schedule_digest` (generator
programs) — plus everything the schedule was validated against:
``n``, bandwidth, mode, and the topology.  The full 64-digit key lives
in the manifest and is compared on load, so a truncated-digest
collision is detected and rejected rather than served.

Trust model: a cache entry is a *hint*, exactly like the in-memory
key.  Loads are sha256-verified and any corruption (truncated payload,
bad JSON, schema drift) evicts the entry and degrades to a clean
re-record.  For generator programs the fast engine's per-round replay
comparison still pins every round to the loaded structure; for kernel
programs :func:`repro.core.kernels.rebuild_kernel_schedule` re-checks
the loaded structures against the program's declared rounds byte for
byte before they are trusted.  A wrong entry can cost a re-record; it
cannot corrupt results.

Writes are atomic (stage into a pid-unique temp directory, publish
with one ``os.rename``), so concurrent workers racing to store the
same digest are safe — the loser discards its copy.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.compiled import (
    BCAST,
    LANE,
    SCALAR,
    CompiledSchedule,
    LaneStructure,
    describe_program,
    schedule_digest_parts,
)

__all__ = [
    "SCHEDULE_CACHE_SCHEMA",
    "ScheduleCache",
    "program_digest",
    "network_digest_context",
]

#: Bump when the on-disk layout changes; mismatched entries are evicted
#: and re-recorded, never migrated.
SCHEDULE_CACHE_SCHEMA = 1


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def network_digest_context(network: Any) -> Tuple[Any, ...]:
    """The validation context a schedule is keyed under: everything
    ``compile_program`` / the recorder checked the structure against.
    Topology enters as a digest of the adjacency sets, so a CONGEST
    entry can never be served to a different graph."""
    from repro.core.checkpoint import stable_digest

    allowed = getattr(network, "_allowed", None)
    topology = (
        None
        if allowed is None
        else stable_digest([sorted(neigh) for neigh in allowed])
    )
    return (network.n, network.bandwidth, network.mode.value, topology)


def program_digest(program: Any, network: Any) -> Optional[Tuple[str, str]]:
    """``(dirname digest, full key)`` for ``program`` on ``network``.

    Kernel programs are digested over their full declared structure —
    the key *is* the schedule, so it self-verifies.  Generator programs
    need a :func:`~repro.core.compiled.declare_schedule_digest`
    declaration; undeclared programs return ``None`` and are simply not
    persisted.
    """
    from repro.core.checkpoint import stable_digest

    context = network_digest_context(network)
    if getattr(program, "is_kernel_program", False):
        from repro.core.kernels import UnicastRound

        declared: List[Any] = []
        for spec in program.rounds:
            if isinstance(spec, UnicastRound):
                declared.append(
                    (
                        "u",
                        spec.width,
                        tuple(int(v) for v, _ in spec.pairs),
                        tuple(int(dests.size) for _, dests in spec.pairs),
                        b"".join(dests.tobytes() for _, dests in spec.pairs),
                        None if spec.widths is None else spec.widths.tobytes(),
                    )
                )
            else:
                declared.append(("b", spec.width, spec.writers.tobytes()))
        material: Tuple[Any, ...] = ("kernel", program.name, context, tuple(declared))
    else:
        parts = schedule_digest_parts(program)
        if parts is None:
            return None
        material = ("generator", stable_digest(list(parts)), context)
    full_key = hashlib.sha256(
        stable_digest(list(material)).encode("ascii")
    ).hexdigest()
    return full_key[:16], full_key


class ScheduleCache:
    """One process's handle on a shared on-disk schedule store.

    Counters in :attr:`stats` (hits / misses / stores / evictions /
    corrupt_evictions / key_mismatches) are per-handle, so a sweep cell
    that builds its own :class:`~repro.core.network.Network` per sample
    can journal exactly what that cell did.
    """

    __slots__ = ("directory", "stats")

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
            "corrupt_evictions": 0,
            "key_mismatches": 0,
        }

    # -- load -------------------------------------------------------------

    def load(self, digest: str, full_key: str, network: Any) -> Optional[CompiledSchedule]:
        """Rebuild the entry at ``digest``, or ``None`` (counted as a
        miss, key mismatch, or corrupt eviction as appropriate)."""
        entry_dir = self.directory / digest
        manifest_path = entry_dir / "manifest.json"
        payload_path = entry_dir / "payload.npz"
        if not manifest_path.is_file() or not payload_path.is_file():
            self.stats["misses"] += 1
            return None
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return self._evict_corrupt(entry_dir)
        if manifest.get("schema") != SCHEDULE_CACHE_SCHEMA:
            return self._evict_corrupt(entry_dir)
        if manifest.get("key") != full_key:
            # Truncated-digest collision: the entry belongs to a
            # different program.  Reject, but leave it in place — it is
            # not corrupt, merely not ours.
            self.stats["key_mismatches"] += 1
            self.stats["misses"] += 1
            return None
        try:
            if _sha256_file(payload_path) != manifest["payload_sha256"]:
                return self._evict_corrupt(entry_dir)
            compiled = _decode_entry(manifest, payload_path, network)
        except Exception:
            return self._evict_corrupt(entry_dir)
        self.stats["hits"] += 1
        return compiled

    def _evict_corrupt(self, entry_dir: Path) -> None:
        shutil.rmtree(entry_dir, ignore_errors=True)
        self.stats["corrupt_evictions"] += 1
        self.stats["misses"] += 1
        return None

    # -- store ------------------------------------------------------------

    def store(
        self,
        digest: str,
        full_key: str,
        compiled: CompiledSchedule,
        network: Any,
        program: Any = None,
    ) -> bool:
        """Persist ``compiled`` under ``digest``; atomic and race-safe.
        Returns True when this process published the entry."""
        import numpy as np

        entry_dir = self.directory / digest
        if entry_dir.exists():
            return False
        structs: List[LaneStructure] = []
        struct_index: Dict[int, int] = {}
        bcasts: List[Tuple[Tuple[int, ...], int]] = []
        bcast_index: Dict[Tuple[Tuple[int, ...], int], int] = {}
        rounds: List[List[int]] = []
        for kind, payload, bits in compiled.rounds:
            if kind == LANE:
                ref = struct_index.get(id(payload))
                if ref is None:
                    ref = struct_index[id(payload)] = len(structs)
                    structs.append(payload)
            elif kind == BCAST:
                shape = (tuple(int(v) for v in payload[0]), int(payload[1]))
                ref = bcast_index.get(shape)
                if ref is None:
                    ref = bcast_index[shape] = len(bcasts)
                    bcasts.append(shape)
            else:
                ref = -1
            rounds.append([int(kind), int(ref), int(bits)])
        arrays: Dict[str, Any] = {}
        struct_meta: List[Dict[str, Any]] = []
        for i, struct in enumerate(structs):
            arrays[f"s{i}_senders"] = np.asarray(struct.sender_ids, dtype=np.int64)
            arrays[f"s{i}_sizes"] = np.asarray(
                [size for _, _, size in struct.entries], dtype=np.int64
            )
            arrays[f"s{i}_cols"] = struct.cols.astype(np.int64, copy=False)
            meta = {"width": int(struct.width), "has_widths": struct.widths is not None}
            if struct.widths is not None:
                arrays[f"s{i}_widths"] = np.asarray(struct.widths)
            struct_meta.append(meta)
        bandwidth, mode = compiled.params
        manifest = {
            "schema": SCHEDULE_CACHE_SCHEMA,
            "key": full_key,
            "program": describe_program(program) if program is not None else "",
            "params": [int(bandwidth), mode.value],
            "rounds": rounds,
            "structs": struct_meta,
            "bcasts": [[list(ids), width] for ids, width in bcasts],
        }
        tmp_dir = self.directory / f".tmp-{digest}-{os.getpid()}"
        shutil.rmtree(tmp_dir, ignore_errors=True)
        try:
            tmp_dir.mkdir(parents=True)
            payload_tmp = tmp_dir / "payload.npz"
            with open(payload_tmp, "wb") as handle:
                np.savez(handle, **arrays)
            manifest["payload_sha256"] = _sha256_file(payload_tmp)
            with open(tmp_dir / "manifest.json", "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.rename(tmp_dir, entry_dir)
        except OSError:
            # Lost a store race (entry_dir appeared) or the filesystem
            # objected; either way the cache simply stays cold here.
            shutil.rmtree(tmp_dir, ignore_errors=True)
            return False
        self.stats["stores"] += 1
        return True

    # -- evict ------------------------------------------------------------

    def evict(self, digest: str) -> None:
        """Drop the entry at ``digest`` (replay deviation upstream: the
        stored structure no longer matches reality)."""
        entry_dir = self.directory / digest
        if entry_dir.exists():
            shutil.rmtree(entry_dir, ignore_errors=True)
            self.stats["evictions"] += 1


def _decode_entry(
    manifest: Dict[str, Any], payload_path: Path, network: Any
) -> CompiledSchedule:
    """Rebuild a :class:`CompiledSchedule` from a verified entry.

    Distinct structures are materialized once and shared by reference
    across rounds — the loaded schedule preserves the recorder's dedup,
    which the replay lane's presence-mask reuse and the kernel zero-churn
    memo both key on.
    """
    import numpy as np

    from repro.core.network import Mode

    with np.load(payload_path) as payload:
        structs: List[LaneStructure] = []
        for i, meta in enumerate(manifest["structs"]):
            senders = payload[f"s{i}_senders"]
            sizes = payload[f"s{i}_sizes"]
            cols = payload[f"s{i}_cols"].astype(np.intp, copy=False)
            widths = payload[f"s{i}_widths"] if meta["has_widths"] else None
            splits = np.split(cols, np.cumsum(sizes)[:-1]) if sizes.size else []
            pairs = [
                (int(sender), dests) for sender, dests in zip(senders, splits)
            ]
            structs.append(LaneStructure(int(meta["width"]), pairs, widths=widths))
    bcast_shapes = [
        (tuple(int(v) for v in ids), int(width))
        for ids, width in manifest["bcasts"]
    ]
    rounds: List[Tuple[int, Any, int]] = []
    for kind, ref, bits in manifest["rounds"]:
        if kind == LANE:
            rounds.append((LANE, structs[ref], bits))
        elif kind == BCAST:
            rounds.append((BCAST, bcast_shapes[ref], bits))
        elif kind == SCALAR:
            rounds.append((SCALAR, None, bits))
        else:
            raise ValueError(f"unknown round kind {kind}")
    compiled = CompiledSchedule(rounds)
    bandwidth, mode_value = manifest["params"]
    compiled.params = (int(bandwidth), Mode(mode_value))
    return compiled
