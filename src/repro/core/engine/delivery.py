"""Shared delivery layer: the buffers and lanes a round is written into.

Engines decide *when* a round is delivered; this module owns *how*.  A
:class:`DeliveryBackend` is allocated per run and holds the reusable
scalar inbox buffers plus the bulk lanes from
:mod:`repro.core.fastlane` (unicast :class:`~repro.core.fastlane.FixedLane`,
blackboard :class:`~repro.core.fastlane.BroadcastLane`), created lazily
on the first round that can use them.  New lane implementations plug in
here — an engine only ever asks the backend for a lane, it never
constructs one.

The two module functions are the scalar (per-message, fully validating)
delivery paths shared by the engines:

* :func:`deliver_outbox` — one sender's outbox into per-receiver dicts,
  with optional transcript recording.  The legacy reference loop is
  built entirely from this.
* :func:`deliver_round_scalar` — one whole round, transcript off: no
  record branches in the loop, hoisted lookups.  The fast engine's
  scalar fallback and the compiled replay's SCALAR rounds use it.

Both enforce the model rules (bandwidth, topology, payload types) and
raise the same exceptions a cold run would; bulk lanes may skip these
checks only when an equivalent vectorized validation already ran
(see :func:`repro.core.fastlane.validate_fixed`).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.core.bits import Bits
from repro.core.errors import (
    BandwidthExceededError,
    ProtocolError,
    TopologyError,
)

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "CHUNK_BYTES_ENV",
    "DeliveryBackend",
    "SharedLaneArena",
    "batch_chunk_size",
    "deliver_outbox",
    "deliver_round_scalar",
]

#: Default budget for one stacked K×n×n batch chunk (uint64 values).
DEFAULT_CHUNK_BYTES = 64 << 20

#: Environment override for :func:`batch_chunk_size`.  The sweep layer
#: uses chunk boundaries as the intra-cell K-shard seams, so tests and
#: benchmarks shrink this to force multi-chunk (and hence multi-shard)
#: behaviour at small n.
CHUNK_BYTES_ENV = "REPRO_BATCH_CHUNK_BYTES"


def batch_chunk_size(n: int, *, max_bytes: Optional[int] = None) -> int:
    """How many instances one ``run_many`` batch chunk holds at size ``n``.

    The batched engines stack K instances into K×n×n uint64 lanes and
    cap each chunk's value buffer at ``max_bytes`` (default 64 MiB, or
    the ``REPRO_BATCH_CHUNK_BYTES`` environment variable).  Chunking is
    invisible in results — per-instance outputs are a pure function of
    the instance inputs — so this knob trades peak memory against lane
    reuse, and doubles as the K-shard seam for
    :meth:`repro.scenarios.matrix.ScenarioMatrix.run`.
    """
    if max_bytes is None:
        raw = os.environ.get(CHUNK_BYTES_ENV)
        if raw is not None:
            try:
                max_bytes = int(raw)
            except ValueError:
                max_bytes = DEFAULT_CHUNK_BYTES
        else:
            max_bytes = DEFAULT_CHUNK_BYTES
    return max(1, max_bytes // (n * n * 8))


class SharedLaneArena:
    """Zero-copy backing store for stacked batch-lane buffers.

    Allocates numpy arrays on :mod:`multiprocessing.shared_memory`
    segments instead of private heap pages, so a sweep worker's K×n×n
    lane state lives in ``/dev/shm`` where the supervisor (or a sibling
    process) can attach without a pickle round-trip.  Passed to
    :class:`~repro.core.network.Network` as ``lane_allocator``; the
    batch lanes call :meth:`zeros` exactly where they would call
    ``np.zeros``.  Object-dtype requests fall back to the heap (shared
    memory only holds flat numeric buffers).

    Segments are named ``<prefix>-a<index>`` so an external supervisor
    can sweep leftovers by prefix after a crash; :meth:`close` releases
    everything this arena created.
    """

    __slots__ = ("prefix", "_segments", "_counter")

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._segments: List[Any] = []
        self._counter = 0

    def zeros(self, shape, dtype):
        import numpy as np

        dtype = np.dtype(dtype)
        if dtype.hasobject:
            return np.zeros(shape, dtype=dtype)
        from repro.scenarios.sweep.shm import create_segment

        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        segment = create_segment(f"{self.prefix}-a{self._counter}", max(1, nbytes))
        self._counter += 1
        self._segments.append(segment)
        array = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        array.fill(0)
        return array

    def close(self) -> None:
        from repro.scenarios.sweep.shm import destroy_segment

        segments, self._segments = self._segments, []
        for segment in segments:
            destroy_segment(segment)


def _at(round_index: Optional[int]) -> str:
    """Round context appended to delivery-layer errors (empty when the
    caller did not say which round it is delivering)."""
    return "" if round_index is None else f" in round {round_index}"


class DeliveryBackend:
    """Per-run delivery state: reusable scalar buffers + lazy bulk lanes.

    The scalar buffers (`n` inbox dicts and their
    :class:`~repro.core.network.Inbox` views) live for the whole run and
    are cleared, never reconstructed.  ``scalar_round_started`` tracks
    whether they need clearing before the next scalar round.
    """

    __slots__ = (
        "n",
        "inbox_dicts",
        "inbox_views",
        "scalar_round_started",
        "unicast_lane",
        "broadcast_lane",
    )

    def __init__(self, n: int) -> None:
        from repro.core.network import Inbox

        self.n = n
        self.inbox_dicts: List[Dict[int, Bits]] = [dict() for _ in range(n)]
        self.inbox_views = [Inbox(d) for d in self.inbox_dicts]
        self.scalar_round_started = False
        self.unicast_lane: Any = None
        self.broadcast_lane: Any = None

    def fixed_lane(self):
        """The unicast bulk lane, created on first use."""
        lane = self.unicast_lane
        if lane is None:
            from repro.core.fastlane import FixedLane

            lane = self.unicast_lane = FixedLane(self.n)
        return lane

    def bcast_lane(self):
        """The blackboard bulk lane, created on first use."""
        lane = self.broadcast_lane
        if lane is None:
            from repro.core.fastlane import BroadcastLane

            lane = self.broadcast_lane = BroadcastLane(self.n)
        return lane

    def begin_scalar_round(self) -> None:
        """Make the scalar buffers ready for a fresh round (clears them
        only when a previous scalar round dirtied them)."""
        if self.scalar_round_started:
            dicts = self.inbox_dicts
            views = self.inbox_views
            for u in range(self.n):
                dicts[u].clear()
                views[u]._reset()
        self.scalar_round_started = True


def deliver_outbox(
    network: Any,
    sender: int,
    outbox: Any,
    inboxes,
    record: Optional[Any],
    round_index: Optional[int] = None,
) -> int:
    """Deliver one sender's outbox with full per-message validation and
    optional transcript recording; returns the bits charged.  Errors
    carry (round, sender, receiver) context when ``round_index`` is
    given."""
    bits_sent = 0
    kind = outbox.kind
    if kind == "silent":
        return 0
    if kind == "broadcast" or kind == "bfixed":
        payload = (
            outbox.payload
            if kind == "broadcast"
            else outbox._materialize_broadcast()
        )
        if not isinstance(payload, Bits):
            raise ProtocolError(
                f"node {sender} broadcast a non-Bits payload{_at(round_index)}"
            )
        if len(payload) > network.bandwidth:
            raise BandwidthExceededError(
                f"node {sender} broadcast {len(payload)} bits "
                f"(bandwidth {network.bandwidth}){_at(round_index)}"
            )
        if len(payload) == 0:
            return 0
        for dest in network._neighbors[sender]:
            inboxes[dest][sender] = payload
        bits_sent = len(payload)
        if record is not None:
            record.sends.append((sender, None, payload))
        return bits_sent
    # unicast / CONGEST (fixed-width outboxes are materialized first)
    messages = outbox.messages if kind == "unicast" else outbox._materialize()
    allowed = None
    if network._allowed is not None:
        allowed = network._allowed[sender]
    for dest, payload in messages.items():
        if not isinstance(payload, Bits):
            raise ProtocolError(
                f"node {sender} sent a non-Bits payload to "
                f"{dest}{_at(round_index)}"
            )
        if dest == sender:
            raise TopologyError(
                f"node {sender} sent a message to itself{_at(round_index)}"
            )
        if not 0 <= dest < network.n:
            raise TopologyError(
                f"node {sender} sent to out-of-range {dest}{_at(round_index)}"
            )
        if allowed is not None and dest not in allowed:
            raise TopologyError(
                f"node {sender} sent to non-neighbour {dest} in "
                f"CONGEST{_at(round_index)}"
            )
        if len(payload) > network.bandwidth:
            raise BandwidthExceededError(
                f"node {sender} sent {len(payload)} bits to {dest} "
                f"(bandwidth {network.bandwidth}){_at(round_index)}"
            )
        if len(payload) == 0:
            continue
        inboxes[dest][sender] = payload
        bits_sent += len(payload)
        if record is not None:
            record.sends.append((sender, dest, payload))
    return bits_sent


def deliver_round_scalar(
    network: Any,
    pending: Dict[int, Any],
    inbox_dicts: List[Dict[int, Bits]],
    round_index: Optional[int] = None,
) -> int:
    """Scalar delivery of one whole round, transcript off: no record
    branches in the loop, reused buffers, hoisted lookups.  Errors carry
    (round, sender, receiver) context when ``round_index`` is given."""
    n = network.n
    bandwidth = network.bandwidth
    neighbors = network._neighbors
    allowed_sets = network._allowed
    bits = 0
    for sender, outbox in pending.items():
        kind = outbox.kind
        if kind == "silent":
            continue
        if kind == "broadcast" or kind == "bfixed":
            payload = (
                outbox.payload
                if kind == "broadcast"
                else outbox._materialize_broadcast()
            )
            if payload.__class__ is not Bits and not isinstance(payload, Bits):
                raise ProtocolError(
                    f"node {sender} broadcast a non-Bits "
                    f"payload{_at(round_index)}"
                )
            plen = len(payload)
            if plen > bandwidth:
                raise BandwidthExceededError(
                    f"node {sender} broadcast {plen} bits "
                    f"(bandwidth {bandwidth}){_at(round_index)}"
                )
            if plen == 0:
                continue
            for dest in neighbors[sender]:
                inbox_dicts[dest][sender] = payload
            bits += plen
            continue
        if kind == "fixed":
            # Sparse or mixed round: this outbox was vector-validated
            # at yield time; deliver its messages check-free.
            for dest, payload in outbox._materialize().items():
                inbox_dicts[dest][sender] = payload
            bits += outbox.width * outbox.dests.size
            continue
        # unicast / CONGEST
        allowed = allowed_sets[sender] if allowed_sets is not None else None
        for dest, payload in outbox.messages.items():
            if payload.__class__ is not Bits and not isinstance(payload, Bits):
                raise ProtocolError(
                    f"node {sender} sent a non-Bits payload to "
                    f"{dest}{_at(round_index)}"
                )
            if dest == sender:
                raise TopologyError(
                    f"node {sender} sent a message to itself{_at(round_index)}"
                )
            if not 0 <= dest < n:
                raise TopologyError(
                    f"node {sender} sent to out-of-range "
                    f"{dest}{_at(round_index)}"
                )
            if allowed is not None and dest not in allowed:
                raise TopologyError(
                    f"node {sender} sent to non-neighbour {dest} in "
                    f"CONGEST{_at(round_index)}"
                )
            plen = len(payload)
            if plen > bandwidth:
                raise BandwidthExceededError(
                    f"node {sender} sent {plen} bits to {dest} "
                    f"(bandwidth {bandwidth}){_at(round_index)}"
                )
            if plen == 0:
                continue
            inbox_dicts[dest][sender] = payload
            bits += plen
    return bits
