"""Shared delivery layer: the buffers and lanes a round is written into.

Engines decide *when* a round is delivered; this module owns *how*.  A
:class:`DeliveryBackend` is allocated per run and holds the reusable
scalar inbox buffers plus the bulk lanes from
:mod:`repro.core.fastlane` (unicast :class:`~repro.core.fastlane.FixedLane`,
blackboard :class:`~repro.core.fastlane.BroadcastLane`), created lazily
on the first round that can use them.  New lane implementations plug in
here — an engine only ever asks the backend for a lane, it never
constructs one.

The two module functions are the scalar (per-message, fully validating)
delivery paths shared by the engines:

* :func:`deliver_outbox` — one sender's outbox into per-receiver dicts,
  with optional transcript recording.  The legacy reference loop is
  built entirely from this.
* :func:`deliver_round_scalar` — one whole round, transcript off: no
  record branches in the loop, hoisted lookups.  The fast engine's
  scalar fallback and the compiled replay's SCALAR rounds use it.

Both enforce the model rules (bandwidth, topology, payload types) and
raise the same exceptions a cold run would; bulk lanes may skip these
checks only when an equivalent vectorized validation already ran
(see :func:`repro.core.fastlane.validate_fixed`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.bits import Bits
from repro.core.errors import (
    BandwidthExceededError,
    ProtocolError,
    TopologyError,
)

__all__ = ["DeliveryBackend", "deliver_outbox", "deliver_round_scalar"]


def _at(round_index: Optional[int]) -> str:
    """Round context appended to delivery-layer errors (empty when the
    caller did not say which round it is delivering)."""
    return "" if round_index is None else f" in round {round_index}"


class DeliveryBackend:
    """Per-run delivery state: reusable scalar buffers + lazy bulk lanes.

    The scalar buffers (`n` inbox dicts and their
    :class:`~repro.core.network.Inbox` views) live for the whole run and
    are cleared, never reconstructed.  ``scalar_round_started`` tracks
    whether they need clearing before the next scalar round.
    """

    __slots__ = (
        "n",
        "inbox_dicts",
        "inbox_views",
        "scalar_round_started",
        "unicast_lane",
        "broadcast_lane",
    )

    def __init__(self, n: int) -> None:
        from repro.core.network import Inbox

        self.n = n
        self.inbox_dicts: List[Dict[int, Bits]] = [dict() for _ in range(n)]
        self.inbox_views = [Inbox(d) for d in self.inbox_dicts]
        self.scalar_round_started = False
        self.unicast_lane: Any = None
        self.broadcast_lane: Any = None

    def fixed_lane(self):
        """The unicast bulk lane, created on first use."""
        lane = self.unicast_lane
        if lane is None:
            from repro.core.fastlane import FixedLane

            lane = self.unicast_lane = FixedLane(self.n)
        return lane

    def bcast_lane(self):
        """The blackboard bulk lane, created on first use."""
        lane = self.broadcast_lane
        if lane is None:
            from repro.core.fastlane import BroadcastLane

            lane = self.broadcast_lane = BroadcastLane(self.n)
        return lane

    def begin_scalar_round(self) -> None:
        """Make the scalar buffers ready for a fresh round (clears them
        only when a previous scalar round dirtied them)."""
        if self.scalar_round_started:
            dicts = self.inbox_dicts
            views = self.inbox_views
            for u in range(self.n):
                dicts[u].clear()
                views[u]._reset()
        self.scalar_round_started = True


def deliver_outbox(
    network: Any,
    sender: int,
    outbox: Any,
    inboxes,
    record: Optional[Any],
    round_index: Optional[int] = None,
) -> int:
    """Deliver one sender's outbox with full per-message validation and
    optional transcript recording; returns the bits charged.  Errors
    carry (round, sender, receiver) context when ``round_index`` is
    given."""
    bits_sent = 0
    kind = outbox.kind
    if kind == "silent":
        return 0
    if kind == "broadcast" or kind == "bfixed":
        payload = (
            outbox.payload
            if kind == "broadcast"
            else outbox._materialize_broadcast()
        )
        if not isinstance(payload, Bits):
            raise ProtocolError(
                f"node {sender} broadcast a non-Bits payload{_at(round_index)}"
            )
        if len(payload) > network.bandwidth:
            raise BandwidthExceededError(
                f"node {sender} broadcast {len(payload)} bits "
                f"(bandwidth {network.bandwidth}){_at(round_index)}"
            )
        if len(payload) == 0:
            return 0
        for dest in network._neighbors[sender]:
            inboxes[dest][sender] = payload
        bits_sent = len(payload)
        if record is not None:
            record.sends.append((sender, None, payload))
        return bits_sent
    # unicast / CONGEST (fixed-width outboxes are materialized first)
    messages = outbox.messages if kind == "unicast" else outbox._materialize()
    allowed = None
    if network._allowed is not None:
        allowed = network._allowed[sender]
    for dest, payload in messages.items():
        if not isinstance(payload, Bits):
            raise ProtocolError(
                f"node {sender} sent a non-Bits payload to "
                f"{dest}{_at(round_index)}"
            )
        if dest == sender:
            raise TopologyError(
                f"node {sender} sent a message to itself{_at(round_index)}"
            )
        if not 0 <= dest < network.n:
            raise TopologyError(
                f"node {sender} sent to out-of-range {dest}{_at(round_index)}"
            )
        if allowed is not None and dest not in allowed:
            raise TopologyError(
                f"node {sender} sent to non-neighbour {dest} in "
                f"CONGEST{_at(round_index)}"
            )
        if len(payload) > network.bandwidth:
            raise BandwidthExceededError(
                f"node {sender} sent {len(payload)} bits to {dest} "
                f"(bandwidth {network.bandwidth}){_at(round_index)}"
            )
        if len(payload) == 0:
            continue
        inboxes[dest][sender] = payload
        bits_sent += len(payload)
        if record is not None:
            record.sends.append((sender, dest, payload))
    return bits_sent


def deliver_round_scalar(
    network: Any,
    pending: Dict[int, Any],
    inbox_dicts: List[Dict[int, Bits]],
    round_index: Optional[int] = None,
) -> int:
    """Scalar delivery of one whole round, transcript off: no record
    branches in the loop, reused buffers, hoisted lookups.  Errors carry
    (round, sender, receiver) context when ``round_index`` is given."""
    n = network.n
    bandwidth = network.bandwidth
    neighbors = network._neighbors
    allowed_sets = network._allowed
    bits = 0
    for sender, outbox in pending.items():
        kind = outbox.kind
        if kind == "silent":
            continue
        if kind == "broadcast" or kind == "bfixed":
            payload = (
                outbox.payload
                if kind == "broadcast"
                else outbox._materialize_broadcast()
            )
            if payload.__class__ is not Bits and not isinstance(payload, Bits):
                raise ProtocolError(
                    f"node {sender} broadcast a non-Bits "
                    f"payload{_at(round_index)}"
                )
            plen = len(payload)
            if plen > bandwidth:
                raise BandwidthExceededError(
                    f"node {sender} broadcast {plen} bits "
                    f"(bandwidth {bandwidth}){_at(round_index)}"
                )
            if plen == 0:
                continue
            for dest in neighbors[sender]:
                inbox_dicts[dest][sender] = payload
            bits += plen
            continue
        if kind == "fixed":
            # Sparse or mixed round: this outbox was vector-validated
            # at yield time; deliver its messages check-free.
            for dest, payload in outbox._materialize().items():
                inbox_dicts[dest][sender] = payload
            bits += outbox.width * outbox.dests.size
            continue
        # unicast / CONGEST
        allowed = allowed_sets[sender] if allowed_sets is not None else None
        for dest, payload in outbox.messages.items():
            if payload.__class__ is not Bits and not isinstance(payload, Bits):
                raise ProtocolError(
                    f"node {sender} sent a non-Bits payload to "
                    f"{dest}{_at(round_index)}"
                )
            if dest == sender:
                raise TopologyError(
                    f"node {sender} sent a message to itself{_at(round_index)}"
                )
            if not 0 <= dest < n:
                raise TopologyError(
                    f"node {sender} sent to out-of-range "
                    f"{dest}{_at(round_index)}"
                )
            if allowed is not None and dest not in allowed:
                raise TopologyError(
                    f"node {sender} sent to non-neighbour {dest} in "
                    f"CONGEST{_at(round_index)}"
                )
            plen = len(payload)
            if plen > bandwidth:
                raise BandwidthExceededError(
                    f"node {sender} sent {plen} bits to {dest} "
                    f"(bandwidth {bandwidth}){_at(round_index)}"
                )
            if plen == 0:
                continue
            inbox_dicts[dest][sender] = payload
            bits += plen
    return bits
