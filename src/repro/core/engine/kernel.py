"""The kernel engine: declared SPMD rounds, zero generator steps.

Executes :class:`~repro.core.kernels.KernelProgram`\\ s only — programs
that declare their round structure up front instead of yielding it.
Declaration makes them oblivious by construction, so the engine compiles
the structure straight into a
:class:`~repro.core.compiled.CompiledSchedule` (no recording run) and
executes every instance through stacked ``K × count`` payload matrices
(:func:`repro.core.kernels.execute`).  Generator programs are rejected:
a generator's round structure is only observable by running it, which is
exactly what this backend exists to avoid.

Schedules are cached on the network keyed by the program *object*
(identity — a stale hit is impossible), with the same bandwidth/mode
eviction rule as recorded schedules.  ``run_many`` sweeps are chunked so
the stacked buffers stay within ~64 MB.
"""

from __future__ import annotations

from typing import Any, List

from repro.core.engine.base import Engine
from repro.core.engine.delivery import batch_chunk_size

__all__ = ["KernelEngine"]


class KernelEngine(Engine):
    """Vectorized executor for declared kernel programs."""

    name = "kernel"
    supports_generator_programs = False
    supports_kernel_programs = True
    supports_transcript = True
    supports_compiled_replay = True
    supports_batched_replay = True
    # Kernel state is a dict of stacked arrays: snapshots are native
    # (arrays verbatim + pickled rest) at every round boundary in run(),
    # and at K-chunk boundaries in run_many().
    supports_checkpoint = True

    def _run(self, network: Any, program, inputs) -> Any:
        return self._execute(network, program, [inputs])[0]

    def _run_checkpointed(self, network: Any, program, inputs, session) -> Any:
        result = self._execute(network, program, [inputs], session=session)[0]
        return session.finish(result)

    def _run_many_checkpointed(
        self, network: Any, program, inputs_list, session
    ) -> List[Any]:
        """Checkpointed sweep: snapshot the completed results at every
        K-chunk boundary; restore by skipping the completed chunks."""
        import pickle

        session.raise_if_preempted_at_start()
        chunk_size = batch_chunk_size(network.n)
        starts = list(range(0, len(inputs_list), chunk_size))
        completed: List[Any] = []
        done_chunks = 0
        ckpt = session.resume_checkpoint()
        if ckpt is not None:
            if (
                ckpt.meta.get("kind") != "kernel-chunks"
                or ckpt.meta.get("chunk_size") != chunk_size
                or ckpt.round_index > len(starts)
            ):
                session.discard_resume(
                    "restore-failed",
                    "snapshot does not match this sweep's chunking",
                )
            else:
                try:
                    completed = list(pickle.loads(ckpt.blobs["results"]))
                except Exception as exc:  # noqa: BLE001 - treat as corrupt
                    session.discard_resume(
                        "restore-failed",
                        f"results blob undecodable: {exc}",
                    )
                    completed = []
                else:
                    done_chunks = ckpt.round_index
                    session.mark_resumed(done_chunks)
        for ci in range(done_chunks, len(starts)):
            start = starts[ci]
            chunk = inputs_list[start : start + chunk_size]
            completed.extend(self._execute(network, program, chunk))
            session.note_round()

            def build(snapshot=tuple(completed), done=ci + 1):
                return (
                    {},
                    {"results": pickle.dumps(list(snapshot))},
                    {"chunks": done, "instances": len(snapshot)},
                    {"kind": "kernel-chunks", "chunk_size": chunk_size},
                )

            session.maybe_snapshot(
                ci + 1, build, final_round=ci + 1 == len(starts)
            )
        return session.finish_many(completed)

    def _run_many(self, network: Any, program, inputs_list) -> List[Any]:
        # Kernel programs batch natively: all K instances move through
        # each round as one stacked matrix.  Chunk like the replay path
        # to bound the K×n×n buffers.
        results: List[Any] = []
        chunk_size = batch_chunk_size(network.n)
        for start in range(0, len(inputs_list), chunk_size):
            chunk = inputs_list[start : start + chunk_size]
            results.extend(self._execute(network, program, chunk))
        return results

    def _execute(
        self, network: Any, program, inputs_list: List[Any], session=None
    ) -> List[Any]:
        """Compile ``program``'s declared structure on first use (cached
        keyed by the program object), then run every instance through
        the stacked kernel loop.  Counts in ``schedule_stats`` mirror
        the generator path: the first instance "records" (compiles),
        every further instance is a replay."""
        from repro.core import kernels

        compiled = network._compiled.get(program)
        if compiled is not None and compiled.params != (
            network.bandwidth,
            network.mode,
        ):
            del network._compiled[program]
            compiled = None
        fresh = compiled is None
        compiled_here = False
        if fresh:
            compiled = self._load_cached(network, program)
            if compiled is None:
                compiled = kernels.compile_program(program, network)
                compiled_here = True
                self._store_cached(network, program, compiled)
            if len(network._compiled) >= 32:
                network._compiled.pop(next(iter(network._compiled)))
            network._compiled[program] = compiled
        results = kernels.execute(
            network, program, compiled, inputs_list, session=session
        )
        if compiled_here:
            # A persistent-cache hit is neither a compile nor an extra
            # replay credit: only a genuinely fresh compilation counts,
            # so a warm sweep reports zero compiles.
            network.schedule_stats["compiled"] += 1
            replays = len(inputs_list) - 1
        else:
            replays = len(inputs_list)
        network.schedule_stats["replayed"] += replays
        compiled.replays += replays
        return results

    # -- persistent cache ------------------------------------------------

    def _load_cached(self, network: Any, program):
        """Rebuild this program's exec rounds from the cross-process
        store.  Kernel execution trusts its structures (no per-round
        replay comparison), so :func:`repro.core.kernels.rebuild_kernel_schedule`
        verifies every loaded structure against the program's declared
        rounds byte for byte before anything is trusted — a mismatch is
        just a miss, answered by a fresh compile."""
        cache = network.schedule_cache
        if cache is None:
            return None
        from repro.core import kernels
        from repro.core.engine.schedule_cache import program_digest

        identity = program_digest(program, network)
        if identity is None:
            return None
        loaded = cache.load(identity[0], identity[1], network)
        if loaded is None:
            return None
        rebuilt = kernels.rebuild_kernel_schedule(program, network, loaded)
        if rebuilt is None:
            cache.evict(identity[0])
            return None
        return rebuilt

    def _store_cached(self, network: Any, program, compiled) -> None:
        cache = network.schedule_cache
        if cache is None:
            return
        from repro.core.engine.schedule_cache import program_digest

        identity = program_digest(program, network)
        if identity is not None:
            cache.store(identity[0], identity[1], compiled, network, program)
