"""Human-readable views of protocol transcripts.

Debugging a distributed protocol from raw transcripts is painful; these
helpers render a :class:`~repro.core.network.RunResult` recorded with
``record_transcript=True`` as a per-round timeline and per-node/per-link
traffic summaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.network import RunResult

__all__ = ["render_timeline", "traffic_by_node", "traffic_matrix", "transcript_stats"]


def transcript_stats(result: RunResult) -> Dict[str, int]:
    """Aggregate counts from a recorded transcript: rounds, messages
    (sends; a broadcast counts once) and bits.  Useful for cross-checking
    the engine's own accounting and for benchmark sanity checks."""
    if result.transcript is None:
        raise ValueError("run the network with record_transcript=True")
    messages = 0
    bits = 0
    for record in result.transcript:
        messages += len(record.sends)
        bits += record.bits()
    stats = {"rounds": len(result.transcript), "messages": messages, "bits": bits}
    if result.resume is not None:
        # A resumed run's transcript is still complete (restored rounds
        # included); expose where live execution picked up.
        stats["resumed_at"] = int(result.resume.get("round", 0))
    return stats


def render_timeline(
    result: RunResult, max_rounds: Optional[int] = None, max_events: int = 8
) -> str:
    """A textual round-by-round timeline: who sent how many bits where."""
    if result.transcript is None:
        raise ValueError("run the network with record_transcript=True")
    lines: List[str] = []
    resumed_at = 0
    if result.resume is not None:
        resumed_at = int(result.resume.get("round", 0))
        mode = result.resume.get("mode", "native")
        lines.append(
            f"resumed from checkpoint at round {resumed_at} ({mode})"
        )
    rounds = result.transcript
    if max_rounds is not None:
        rounds = rounds[:max_rounds]
    for index, record in enumerate(rounds):
        restored = " (restored)" if index < resumed_at else ""
        lines.append(f"round {index + 1}: {record.bits()} bits{restored}")
        for sender, receiver, payload in record.sends[:max_events]:
            target = "*" if receiver is None else str(receiver)
            lines.append(f"  {sender} -> {target}  [{len(payload)}b]")
        hidden = len(record.sends) - max_events
        if hidden > 0:
            lines.append(f"  ... {hidden} more sends")
    if max_rounds is not None and len(result.transcript) > max_rounds:
        lines.append(f"... {len(result.transcript) - max_rounds} more rounds")
    return "\n".join(lines)


def traffic_by_node(result: RunResult) -> Dict[int, int]:
    """Total bits each node sent over the whole run (a broadcast is
    charged once, matching the blackboard cost model)."""
    if result.transcript is None:
        raise ValueError("run the network with record_transcript=True")
    totals: Dict[int, int] = {}
    for record in result.transcript:
        for sender, _receiver, payload in record.sends:
            totals[sender] = totals.get(sender, 0) + len(payload)
    return totals


def traffic_matrix(result: RunResult, n: int) -> List[List[int]]:
    """Bits sent per ordered (sender, receiver) pair; broadcasts count
    toward every other node's column."""
    if result.transcript is None:
        raise ValueError("run the network with record_transcript=True")
    matrix = [[0] * n for _ in range(n)]
    for record in result.transcript:
        for sender, receiver, payload in record.sends:
            if receiver is None:
                for other in range(n):
                    if other != sender:
                        matrix[sender][other] += len(payload)
            else:
                matrix[sender][receiver] += len(payload)
    return matrix
