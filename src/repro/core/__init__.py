"""Core substrate: bit-level messages and the synchronous network engine."""

from repro.core.bits import BitReader, Bits, BitWriter
from repro.core.compiled import BatchRunner, CompiledSchedule, mark_oblivious, oblivious_key
from repro.core.errors import (
    BandwidthExceededError,
    DecodeError,
    MaxRoundsExceededError,
    ProtocolError,
    ReproError,
    TopologyError,
)
from repro.core.network import (
    Context,
    Inbox,
    Mode,
    Network,
    Outbox,
    RunResult,
    inbox_uints,
    run_protocol,
)
from repro.core.tracing import (
    render_timeline,
    traffic_by_node,
    traffic_matrix,
    transcript_stats,
)
from repro.core.phases import (
    idle,
    phase_length,
    transmit_broadcast,
    transmit_unicast,
)

__all__ = [
    "Bits",
    "BitReader",
    "BitWriter",
    "ReproError",
    "BandwidthExceededError",
    "TopologyError",
    "ProtocolError",
    "MaxRoundsExceededError",
    "DecodeError",
    "Mode",
    "Network",
    "Context",
    "Inbox",
    "Outbox",
    "RunResult",
    "run_protocol",
    "inbox_uints",
    "phase_length",
    "transmit_unicast",
    "transmit_broadcast",
    "idle",
    "mark_oblivious",
    "oblivious_key",
    "CompiledSchedule",
    "BatchRunner",
    "render_timeline",
    "traffic_by_node",
    "traffic_matrix",
    "transcript_stats",
]
