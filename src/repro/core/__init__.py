"""Core substrate: bit-level messages and the synchronous network engine."""

from repro.core.bits import BitReader, Bits, BitWriter
from repro.core.compiled import BatchRunner, CompiledSchedule, mark_oblivious, oblivious_key
from repro.core.errors import (
    BandwidthExceededError,
    DecodeError,
    MaxRoundsExceededError,
    ProtocolError,
    ReproError,
    TopologyError,
)
from repro.core.network import (
    Context,
    Inbox,
    Mode,
    Network,
    Outbox,
    RunResult,
    inbox_uints,
    run_protocol,
)
from repro.core.tracing import (
    render_timeline,
    traffic_by_node,
    traffic_matrix,
    transcript_stats,
)
from repro.core.phases import (
    idle,
    kernel_transmit_broadcast,
    kernel_transmit_unicast,
    phase_length,
    transmit_broadcast,
    transmit_broadcast_kernel_program,
    transmit_unicast,
    transmit_unicast_kernel_program,
)
# The kernel layer is numpy-backed at module level; load it lazily
# (PEP 562) so `import repro.core` stays numpy-free until a kernel
# program is actually built — the same invariant compiled.py and the
# engine's deferred fastlane imports preserve.
_KERNEL_EXPORTS = ("KernelBuilder", "KernelContext", "KernelProgram")


def __getattr__(name):
    if name in _KERNEL_EXPORTS:
        from repro.core import kernels

        return getattr(kernels, name)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")


__all__ = [
    "Bits",
    "BitReader",
    "BitWriter",
    "ReproError",
    "BandwidthExceededError",
    "TopologyError",
    "ProtocolError",
    "MaxRoundsExceededError",
    "DecodeError",
    "Mode",
    "Network",
    "Context",
    "Inbox",
    "Outbox",
    "RunResult",
    "run_protocol",
    "inbox_uints",
    "phase_length",
    "transmit_unicast",
    "transmit_broadcast",
    "idle",
    "KernelBuilder",
    "KernelContext",
    "KernelProgram",
    "kernel_transmit_unicast",
    "kernel_transmit_broadcast",
    "transmit_unicast_kernel_program",
    "transmit_broadcast_kernel_program",
    "mark_oblivious",
    "oblivious_key",
    "CompiledSchedule",
    "BatchRunner",
    "render_timeline",
    "traffic_by_node",
    "traffic_matrix",
    "transcript_stats",
]
