"""Exception hierarchy for the congested-clique reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class BandwidthExceededError(ReproError):
    """A node tried to send more bits on a link (or blackboard) than the
    per-round bandwidth ``b`` allows."""


class TopologyError(ReproError):
    """A message was addressed to a node that is not reachable in the
    current communication model (e.g. a non-neighbour in CONGEST)."""


class ProtocolError(ReproError):
    """A node program violated the engine's protocol contract (e.g. it
    yielded something that is not an :class:`~repro.core.network.Outbox`)."""


class MaxRoundsExceededError(ReproError):
    """The protocol did not terminate within the configured round budget."""


class DecodeError(ReproError):
    """A bit-level decoder was asked to read past the end of its input or
    encountered a malformed encoding."""
