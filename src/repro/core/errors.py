"""Exception hierarchy for the congested-clique reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class BandwidthExceededError(ReproError):
    """A node tried to send more bits on a link (or blackboard) than the
    per-round bandwidth ``b`` allows."""


class TopologyError(ReproError):
    """A message was addressed to a node that is not reachable in the
    current communication model (e.g. a non-neighbour in CONGEST)."""


class ProtocolError(ReproError):
    """A node program violated the engine's protocol contract (e.g. it
    yielded something that is not an :class:`~repro.core.network.Outbox`)."""


class MaxRoundsExceededError(ReproError):
    """The protocol did not terminate within the configured round budget."""


class RoundLimitExceeded(MaxRoundsExceededError):
    """The watchdog round limit (``Network(round_limit=...)``) fired: the
    protocol was still running after the configured number of rounds.

    Subclasses :class:`MaxRoundsExceededError` so existing handlers of
    the round budget keep working; the distinct type lets chaos harnesses
    tell "the protocol livelocked under faults" apart from "the safety
    budget was simply too small".
    """


class FaultInjectionError(ReproError):
    """A :class:`~repro.core.faults.FaultPlan` is malformed (bad
    probabilities, bad triggers) or was applied in a context it cannot
    express (e.g. per-receiver corruption of a broadcast word)."""


class EngineFallbackError(ReproError):
    """Every engine in the graceful-degradation chain failed to execute
    the program.  Raised by
    :meth:`~repro.core.engine.planner.ExecutionPlanner.execute` after the
    kernel → fast → legacy chain is exhausted; the original engine's
    exception is chained as ``__cause__``."""


class DecodeError(ReproError):
    """A bit-level decoder was asked to read past the end of its input or
    encountered a malformed encoding."""


class SweepExecutionError(ReproError):
    """Base class for failures of the sharded sweep executor
    (:mod:`repro.scenarios.sweep`): infrastructure faults of the harness
    itself, as opposed to protocol-semantic errors of the cell being run.

    Every instance carries the failing cell's ``coordinate`` (the
    ``seed:protocol:family:n:engine`` journal key, or ``None`` when the
    failure is not tied to one cell), the ``attempts`` already spent on
    it, and a short ``traceback_digest`` deduplicating crash signatures
    across a sweep — the same forensics triple the PR 6 fault taxonomy
    records on failed matrix cells.
    """

    def __init__(
        self,
        message: str,
        coordinate: "str | None" = None,
        attempts: int = 0,
        traceback_digest: "str | None" = None,
    ) -> None:
        detail = message
        if coordinate is not None:
            detail += f" [cell {coordinate}, attempt {attempts}]"
        super().__init__(detail)
        self.coordinate = coordinate
        self.attempts = attempts
        self.traceback_digest = traceback_digest


class WorkerCrashError(SweepExecutionError):
    """A sweep worker process died (segfault, SIGKILL, lost heartbeat,
    unclean exit) while executing — or assigned — a matrix cell.  The
    supervisor retries the cell with backoff; after ``max_attempts`` the
    cell lands in the poison quarantine with this error recorded."""


class CellTimeoutError(SweepExecutionError):
    """A sweep cell exceeded its wall-clock deadline and the supervisor
    SIGKILLed the worker running it.  Distinct from
    :class:`RoundLimitExceeded`, which is the *in-protocol* watchdog: a
    cell that hangs outside the round loop (in ``prepare``, in native
    code) only this deadline can catch."""


class SweepResumeError(SweepExecutionError):
    """A sweep journal could not be resumed: it belongs to a different
    sweep (fingerprint mismatch), is corrupted beyond the tolerated
    torn trailing line, or would be silently overwritten."""


class CheckpointCorruptError(ReproError):
    """A run checkpoint failed integrity verification on load: the
    payload digest does not match the manifest, the manifest itself is
    unreadable, or the schema version is unknown.

    Carries ``path`` (the checkpoint directory) and ``reason`` (a short
    machine-readable tag: ``digest-mismatch``, ``manifest-unreadable``,
    ``payload-unreadable``, ``schema-mismatch``, ``missing``).  The
    checkpoint loader treats a corrupt snapshot as *absent* — discovery
    skips it with a structured report and the run restarts cleanly —
    so this error only propagates when a caller loads an explicit path.
    """

    def __init__(self, message: str, path: "str | None" = None,
                 reason: str = "corrupt") -> None:
        super().__init__(message)
        self.path = path
        self.reason = reason


class RunPreempted(ReproError):
    """A checkpointed run was preempted mid-execution: the checkpoint
    policy's ``preempt`` signal fired, the engine flushed a final
    snapshot at the current round boundary, and execution stopped.

    Carries ``round_index`` (completed rounds at the flush) and
    ``checkpoint`` (path of the flushed snapshot, ``None`` when the run
    was preempted before any round completed and nothing was written).
    A :class:`ReproError` on purpose: the planner's graceful-degradation
    chain must *propagate* a preemption, never re-run the program on
    another engine."""

    def __init__(self, message: str, round_index: int = 0,
                 checkpoint: "str | None" = None) -> None:
        super().__init__(message)
        self.round_index = round_index
        self.checkpoint = checkpoint


class ReplayEvictionWarning(UserWarning):
    """A program declared oblivious (:func:`~repro.core.compiled.mark_oblivious`)
    deviated structurally from its compiled schedule: the stale entry was
    evicted and the run fell back to full execution.

    Results stay byte-identical — the warning exists because a deviating
    declaration wastes the recording run and usually means the
    ``mark_oblivious`` mark is wrong.  The message names the offending
    program via its :class:`~repro.core.compiled.ObliviousInfo`; run the
    static verifier (``python -m repro.analysis``) to find the offending
    round before the first recording run."""
