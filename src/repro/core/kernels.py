"""Kernel programs: whole-network SPMD rounds with zero generator steps.

The generator API runs ``n`` Python coroutines in lockstep; even with
bulk delivery lanes and compiled replay, every round still pays ``n``
generator resumptions on the hot path.  The algebraic congested-clique
literature (Censor-Hillel et al.; Le Gall) instead treats a round as one
matrix operation over *all* nodes simultaneously — and an oblivious
protocol can be executed exactly that way.

A :class:`KernelProgram` is a declared sequence of *round kernels*.
Each round names its structure up front — which nodes send how many
bits to whom (:meth:`KernelBuilder.unicast_round`) or which nodes write
the blackboard (:meth:`KernelBuilder.broadcast_round`) — and supplies
two callbacks:

* ``send(state) -> values`` — one ``K × count`` array (instances ×
  messages, flat structure order) holding every node's payloads for the
  round: a single numpy expression replaces ``n`` generator resumptions,
  for all ``K`` instances of a :meth:`~repro.core.network.Network.run_many`
  sweep at once.
* ``recv(state, inbox)`` — consumes the delivered matrices
  (:class:`KernelUnicastInbox` / :class:`KernelBroadcastInbox`, thin
  views over the :class:`~repro.core.fastlane.BatchLane` /
  :class:`~repro.core.fastlane.BatchBroadcastLane` buffers).

``state`` is a plain dict the program threads through the run (per-node
data lives in arrays with a leading instance axis).  Because the round
structure is declared rather than observed, a kernel program is
*oblivious by construction*: it compiles directly into a
:class:`~repro.core.compiled.CompiledSchedule` — per-round
:class:`~repro.core.compiled.LaneStructure` index arrays, bit totals,
validation — without a recording run, and every execution replays that
schedule.  Round and bit accounting is byte-identical to the generator
engine's: equivalence suites pin the migrated protocols (transmit
phases, Lenzen routing, the Theorem 2 simulation, matmul triangle
detection) to their generator reference implementations.

Discipline
----------

The runner hands each ``recv`` the *global* delivered matrices — kernel
code is trusted to honour per-node visibility (read only entries
addressed to the node whose state it updates), exactly as generator
programs are trusted not to share Python state between nodes.  The
equivalence tests are the enforcement: a kernel that peeks at bits that
were never sent cannot stay byte-identical to its honest generator twin
under fuzzed inputs.  Inboxes are views over per-run buffers and are
only valid inside the ``recv`` call that receives them (copy what you
need); payload arrays returned by ``send`` are read by the engine once,
immediately — except that an array with ``writeable=False`` returned
for the *same round structure* as the previous round is assumed
unchanged and is neither re-validated nor re-written (the zero-churn
fast path; freeze constant payloads to opt in).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bits import Bits
from repro.core.compiled import BCAST, LANE, CompiledSchedule, LaneStructure
from repro.core.errors import (
    BandwidthExceededError,
    MaxRoundsExceededError,
    ProtocolError,
    RoundLimitExceeded,
    TopologyError,
)
from repro.core.fastlane import NUMERIC_WIDTH_LIMIT, BatchBroadcastLane, BatchLane
from repro.core.network import Mode, RoundRecord, RunResult

__all__ = [
    "KernelContext",
    "KernelUnicastInbox",
    "KernelBroadcastInbox",
    "UnicastRound",
    "BroadcastRound",
    "KernelProgram",
    "KernelBuilder",
    "compile_program",
    "rebuild_kernel_schedule",
    "execute",
    "pack_rows",
    "unpack_rows",
]


class KernelContext:
    """What a kernel program may know about the run besides its inputs.

    ``inputs_list[k][v]`` is node ``v``'s input in instance ``k`` (an
    entry of ``inputs_list`` may be ``None`` for an input-free
    instance).  :meth:`shared_rng` / :meth:`node_rng` return *fresh
    clones* of the engine's seed-derived streams, so every call starts
    from the same state the generator engine hands each node — draws
    made for one purpose never perturb another (mirroring the
    per-node-identical-streams contract of
    :class:`~repro.core.network.Context`).
    """

    __slots__ = (
        "n",
        "bandwidth",
        "mode",
        "instances",
        "inputs_list",
        "_private_states",
        "_shared_state",
    )

    def __init__(
        self,
        n: int,
        bandwidth: int,
        mode: Mode,
        inputs_list: Sequence[Any],
        private_states: Sequence[Any],
        shared_state: Any,
    ) -> None:
        self.n = n
        self.bandwidth = bandwidth
        self.mode = mode
        self.instances = len(inputs_list)
        self.inputs_list = inputs_list
        self._private_states = private_states
        self._shared_state = shared_state

    def shared_rng(self) -> random.Random:
        """A fresh clone of the public coin (identical on every call and
        in every instance, like each generator node's ``ctx.shared_rng``)."""
        rng = random.Random.__new__(random.Random)
        rng.setstate(self._shared_state)
        return rng

    def node_rng(self, v: int) -> random.Random:
        """A fresh clone of node ``v``'s private coin."""
        rng = random.Random.__new__(random.Random)
        rng.setstate(self._private_states[v])
        return rng


class KernelUnicastInbox:
    """One unicast round's delivered matrices, for all instances.

    ``values[k, s, d]`` is the payload node ``s`` sent node ``d`` in
    instance ``k`` (entries where ``present[s, d]`` is False are stale
    buffer contents — never read them); :meth:`gather` returns the flat
    ``K × count`` payload matrix in the round's structure order, the
    mirror of what ``send`` produced.
    """

    __slots__ = ("values", "present", "width", "widths", "rows", "cols")

    def __init__(self, values, present, width, widths, rows, cols) -> None:
        self.values = values
        self.present = present
        self.width = width
        self.widths = widths
        self.rows = rows
        self.cols = cols

    def gather(self) -> np.ndarray:
        """Delivered payloads as ``K × count`` in structure order."""
        return self.values[:, self.rows, self.cols]


class KernelBroadcastInbox:
    """One broadcast round's blackboard, for all instances.

    ``values[k, w]`` is writer ``w``'s blackboard word in instance ``k``
    (valid where ``present[w]``).  A broadcast is never echoed back to
    its writer: kernel code reading "everything node ``v`` heard" must
    skip ``values[:, v]`` itself, as the generator engine's
    :class:`~repro.core.fastlane.BroadcastInbox` does.
    """

    __slots__ = ("values", "present", "width", "writers")

    def __init__(self, values, present, width, writers) -> None:
        self.values = values
        self.present = present
        self.width = width
        self.writers = writers

    def gather(self) -> np.ndarray:
        """Delivered blackboard words as ``K × len(writers)`` in writer
        order."""
        return self.values[:, self.writers]


class UnicastRound:
    """Declared structure + kernels of one fixed-width unicast round."""

    __slots__ = ("pairs", "width", "widths", "send", "recv")

    def __init__(self, pairs, width, widths, send, recv) -> None:
        self.pairs = pairs  # ((sender, dests-array), ...) node order
        self.width = width  # max width (selects storage dtype)
        self.widths = widths  # per-message widths, or None if uniform
        self.send = send
        self.recv = recv


class BroadcastRound:
    """Declared structure + kernels of one fixed-width broadcast round."""

    __slots__ = ("writers", "width", "send", "recv")

    def __init__(self, writers, width, send, recv) -> None:
        self.writers = writers  # np.intp array of writer ids, ascending
        self.width = width
        self.send = send
        self.recv = recv


class KernelProgram:
    """A fully declared SPMD protocol: init hooks, round specs, finish.

    Build with :class:`KernelBuilder`.  Pass instances directly to
    :meth:`~repro.core.network.Network.run` /
    :meth:`~repro.core.network.Network.run_many` — the engine dispatches
    on :attr:`is_kernel_program`.
    """

    is_kernel_program = True

    __slots__ = ("n", "mode", "bandwidth", "rounds", "init_hooks", "finish", "name")

    def __init__(self, n, mode, bandwidth, rounds, init_hooks, finish, name) -> None:
        self.n = n
        self.mode = mode
        self.bandwidth = bandwidth
        self.rounds = rounds
        self.init_hooks = init_hooks
        self.finish = finish
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelProgram({self.name!r}, n={self.n}, "
            f"rounds={len(self.rounds)})"
        )

    def declared_structure(self):
        """Per-round communication shape, read off the declarations
        without executing any send/recv callback.

        Returns a list with one entry per round: ``("unicast",
        message_count, max_width, total_bits)`` for a
        :class:`UnicastRound`, ``("broadcast", writer_count, width,
        total_bits)`` for a :class:`BroadcastRound`.  This is the static
        analyzer's entry point — kernel programs declare their entire
        structure up front, so obliviousness holds by construction and
        worst-case per-round bit counts are exact.
        """
        shapes = []
        for rnd in self.rounds:
            if isinstance(rnd, UnicastRound):
                count = sum(int(dests.size) for _, dests in rnd.pairs)
                if rnd.widths is not None:
                    total = int(rnd.widths.sum())
                else:
                    total = count * rnd.width
                shapes.append(("unicast", count, rnd.width, total))
            else:
                writers = int(rnd.writers.size)
                shapes.append(("broadcast", writers, rnd.width, writers * rnd.width))
        return shapes


def _as_dests(dests, sender: int, n: int) -> np.ndarray:
    arr = np.asarray(dests, dtype=np.intp).reshape(-1).copy()
    if arr.size:
        if (arr == sender).any():
            raise TopologyError(f"node {sender} sent a message to itself")
        if int(arr.min()) < 0 or int(arr.max()) >= n:
            raise TopologyError(
                f"node {sender} sent to an out-of-range destination"
            )
        if np.unique(arr).size != arr.size:
            raise ProtocolError(
                f"node {sender} listed a destination twice in a kernel round"
            )
    arr.flags.writeable = False
    return arr


class KernelBuilder:
    """Accumulates the declared rounds of a :class:`KernelProgram`.

    Structural validation (self-sends, range, duplicate destinations)
    happens here, at declaration; network-dependent validation (mode,
    bandwidth, topology) happens once per network when the program is
    compiled.  ``on_init`` hooks run before round 0 with
    ``(state, kctx)``; ``before`` attaches a prologue to the *next*
    appended round's ``send`` (phase helpers use it to stage data at a
    phase boundary).  ``build(finish)`` seals the program; ``finish``
    receives ``(state, kctx)`` and must return per-instance per-node
    outputs (``outputs[k][v]``).
    """

    def __init__(
        self,
        n: int,
        mode: Mode = Mode.UNICAST,
        bandwidth: Optional[int] = None,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one node")
        self.n = n
        self.mode = mode
        # Declared bandwidth: phase helpers need it to fix their round
        # counts at build time (generators read ctx.bandwidth instead).
        # When set, the program only compiles against a network with
        # exactly this bandwidth.
        self.bandwidth = bandwidth
        self.rounds: List[Any] = []
        self._init_hooks: List[Callable] = []
        self._prologues: List[Callable] = []
        self._keys = 0

    def fresh_key(self, prefix: str = "k") -> str:
        """A state-dict key unique within this program, for phase
        helpers that stash phase-local data."""
        self._keys += 1
        return f"{prefix}#{self._keys}"

    def on_init(self, hook: Callable) -> None:
        self._init_hooks.append(hook)

    def before(self, fn: Callable) -> None:
        """Run ``fn(state)`` just before the next appended round's
        ``send`` (once per execution)."""
        self._prologues.append(fn)

    def _wrap_send(self, send: Optional[Callable]) -> Optional[Callable]:
        if not self._prologues:
            return send
        prologues = tuple(self._prologues)
        self._prologues = []

        def wrapped(state, _prologues=prologues, _send=send):
            for fn in _prologues:
                fn(state)
            return _send(state) if _send is not None else None

        return wrapped

    def unicast_round(
        self,
        pairs: Sequence[Tuple[int, Sequence[int]]],
        width: int,
        send: Optional[Callable],
        recv: Optional[Callable] = None,
        widths: Optional[Sequence[int]] = None,
    ) -> None:
        """Declare one unicast round: ``pairs`` lists each non-silent
        sender with its destination vector (any order; normalized to
        ascending sender); all messages are ``width`` bits, or pass a
        flat per-message ``widths`` vector (structure order) for
        heterogeneous rounds."""
        norm: List[Tuple[int, np.ndarray]] = []
        seen = set()
        for sender, dests in pairs:
            sender = int(sender)
            if sender in seen:
                raise ProtocolError(
                    f"node {sender} appears twice in one kernel round"
                )
            seen.add(sender)
            arr = _as_dests(dests, sender, self.n)
            if arr.size:
                norm.append((sender, arr))
        norm.sort(key=lambda pair: pair[0])
        count = sum(arr.size for _, arr in norm)
        widths_arr = None
        if widths is not None:
            widths_arr = np.asarray(widths, dtype=np.int64).reshape(-1).copy()
            if widths_arr.size != count:
                raise ProtocolError(
                    f"{widths_arr.size} widths for {count} messages"
                )
            if widths_arr.size == 0:
                # An empty round has no messages to width: treat like a
                # uniform declaration (width falls back to the param).
                widths_arr = None
            elif int(widths_arr.min()) < 1:
                raise ValueError("fixed-width messages need width >= 1 bit")
            elif int(widths_arr.max()) == int(widths_arr.min()):
                # Degenerate heterogeneous declaration: fold to uniform.
                width = int(widths_arr[0])
                widths_arr = None
            else:
                width = int(widths_arr.max())
                widths_arr.flags.writeable = False
        if width < 1:
            raise ValueError("fixed-width messages need width >= 1 bit")
        self.rounds.append(
            UnicastRound(
                tuple(norm), width, widths_arr, self._wrap_send(send), recv
            )
        )

    def broadcast_round(
        self,
        writers: Sequence[int],
        width: int,
        send: Optional[Callable],
        recv: Optional[Callable] = None,
    ) -> None:
        """Declare one blackboard round: every node in ``writers``
        writes exactly ``width`` bits."""
        if width < 1:
            raise ValueError("fixed-width messages need width >= 1 bit")
        arr = np.asarray(sorted(int(w) for w in writers), dtype=np.intp)
        if arr.size:
            if int(arr.min()) < 0 or int(arr.max()) >= self.n:
                raise TopologyError("broadcast writer out of range")
            if np.unique(arr).size != arr.size:
                raise ProtocolError("a writer appears twice in a kernel round")
        arr.flags.writeable = False
        self.rounds.append(
            BroadcastRound(arr, width, self._wrap_send(send), recv)
        )

    def build(
        self, finish: Optional[Callable] = None, name: str = "kernel"
    ) -> KernelProgram:
        if self._prologues:
            # Prologues declared after the last round run before finish.
            prologues = tuple(self._prologues)
            self._prologues = []
            inner = finish

            def finish(state, kctx, _prologues=prologues, _inner=inner):
                for fn in _prologues:
                    fn(state)
                return _inner(state, kctx) if _inner is not None else None

        return KernelProgram(
            self.n,
            self.mode,
            self.bandwidth,
            tuple(self.rounds),
            tuple(self._init_hooks),
            finish,
            name,
        )


class _ExecRound:
    """One compiled kernel round: everything the runner needs, flat."""

    __slots__ = (
        "kind",
        "spec",
        "struct",
        "writers",
        "width",
        "widths_u64",
        "count",
        "bits",
        "is_object",
    )

    def __init__(self, kind, spec, struct, writers, width, widths_u64, count, bits):
        self.kind = kind
        self.spec = spec
        self.struct = struct
        self.writers = writers
        self.width = width
        self.widths_u64 = widths_u64
        self.count = count
        self.bits = bits
        self.is_object = width > NUMERIC_WIDTH_LIMIT


def compile_program(program: KernelProgram, network) -> CompiledSchedule:
    """Validate ``program`` against ``network`` and build its
    :class:`~repro.core.compiled.CompiledSchedule` — declared structure
    in, recorded-schedule shape out, no recording run needed."""
    if program.n != network.n:
        raise ProtocolError(
            f"kernel program declares n={program.n}, network has n={network.n}"
        )
    if program.bandwidth is not None and program.bandwidth != network.bandwidth:
        raise ProtocolError(
            f"kernel program was built for bandwidth {program.bandwidth}, "
            f"network has bandwidth {network.bandwidth} (phase round counts "
            "are fixed at build time)"
        )
    if program.mode is not network.mode and not (
        # CONGEST is unicast restricted to a topology, so a program
        # declared for the unicast clique may run there (its rounds are
        # still checked against the topology below) — mirroring the
        # generator engine, which accepts unicast outboxes in CONGEST.
        program.mode is Mode.UNICAST
        and network.mode is Mode.CONGEST
    ):
        raise ProtocolError(
            f"kernel program declares {program.mode.value}, "
            f"network is {network.mode.value}"
        )
    mode = network.mode
    bandwidth = network.bandwidth
    allowed = getattr(network, "_allowed", None)
    rounds: List[Tuple[int, Any, int]] = []
    execs: List[_ExecRound] = []
    # Deduplicate identical round shapes into one shared identity
    # object per shape (a LaneStructure for unicast, an interned
    # (ids, width) tuple for broadcast), exactly as the recorder does
    # for generator programs: phases repeat one shape for many rounds,
    # and both the lane's presence-mask reuse and the zero-churn
    # payload skip key on shape *identity*.
    structs: Dict[Any, LaneStructure] = {}
    bcast_shapes: Dict[Any, Tuple] = {}
    for r, spec in enumerate(program.rounds):
        if isinstance(spec, UnicastRound):
            if mode is Mode.BROADCAST:
                raise ProtocolError(
                    f"kernel round {r} unicasts in a broadcast network"
                )
            if allowed is not None:
                for sender, dests in spec.pairs:
                    ok = allowed[sender]
                    for dest in dests:
                        if dest not in ok:
                            raise TopologyError(
                                f"node {sender} sent to non-neighbour "
                                f"{int(dest)} in CONGEST"
                            )
            max_width = (
                spec.width if spec.widths is None else int(spec.widths.max())
            )
            if max_width > bandwidth:
                raise BandwidthExceededError(
                    f"kernel round {r} sends {max_width}-bit messages "
                    f"(bandwidth {bandwidth})"
                )
            key = (
                spec.width,
                tuple(v for v, _ in spec.pairs),
                tuple(dests.size for _, dests in spec.pairs),
                b"".join(dests.tobytes() for _, dests in spec.pairs),
                None if spec.widths is None else spec.widths.tobytes(),
            )
            struct = structs.get(key)
            if struct is None:
                struct = structs[key] = LaneStructure(
                    spec.width, spec.pairs, widths=spec.widths
                )
            bits = struct.bits()
            widths_u64 = (
                None
                if spec.widths is None
                else spec.widths.astype(np.uint64)
            )
            rounds.append((LANE, struct, bits))
            execs.append(
                _ExecRound(
                    LANE, spec, struct, None, spec.width, widths_u64,
                    struct.count, bits,
                )
            )
        else:
            if mode is not Mode.BROADCAST:
                raise ProtocolError(
                    f"kernel round {r} broadcasts in a {mode.value} network"
                )
            if spec.width > bandwidth:
                raise BandwidthExceededError(
                    f"kernel round {r} broadcasts {spec.width} bits "
                    f"(bandwidth {bandwidth})"
                )
            ids = tuple(int(w) for w in spec.writers)
            shape = bcast_shapes.setdefault((ids, spec.width), (ids, spec.width))
            bits = len(ids) * spec.width
            rounds.append((BCAST, shape, bits))
            execs.append(
                _ExecRound(
                    BCAST, spec, shape, spec.writers, spec.width, None,
                    len(ids), bits,
                )
            )
    compiled = CompiledSchedule(rounds)
    compiled.params = (bandwidth, mode)
    compiled.kernel = execs
    return compiled


def rebuild_kernel_schedule(program: KernelProgram, network, loaded) -> Optional[CompiledSchedule]:
    """Pair a persistent-cache schedule with ``program``'s declared
    rounds, verifying before trusting.

    Kernel execution has no per-round replay comparison — it delivers
    whatever structures the compiled schedule holds — so a loaded
    entry must be proven equal to the program's declaration before it
    may replace :func:`compile_program`.  Every distinct loaded
    structure is compared byte-for-byte (senders, split sizes,
    destination vectors, widths) against the specs that reference it;
    a flat memcmp per shape, orders of magnitude cheaper than the
    per-message CONGEST topology walk a fresh compile pays (topology
    is part of the cache key, so a verified entry was validated
    against this exact graph).  Any mismatch returns ``None`` and the
    caller compiles fresh.
    """
    if program.n != network.n:
        return None
    if program.bandwidth is not None and program.bandwidth != network.bandwidth:
        return None
    if program.mode is not network.mode and not (
        program.mode is Mode.UNICAST and network.mode is Mode.CONGEST
    ):
        return None
    if loaded.params != (network.bandwidth, network.mode):
        return None
    if len(loaded.rounds) != len(program.rounds):
        return None
    execs: List[_ExecRound] = []
    verified: set = set()
    for spec, (kind, payload, bits) in zip(program.rounds, loaded.rounds):
        if isinstance(spec, UnicastRound):
            if kind != LANE:
                return None
            struct = payload
            pair_key = (id(struct), id(spec))
            if pair_key not in verified:
                spec_cols = b"".join(dests.tobytes() for _, dests in spec.pairs)
                if (
                    struct.width != spec.width
                    or tuple(struct.sender_ids)
                    != tuple(int(v) for v, _ in spec.pairs)
                    or tuple(size for _, _, size in struct.entries)
                    != tuple(int(dests.size) for _, dests in spec.pairs)
                    or struct.cols.tobytes() != spec_cols
                ):
                    return None
                if (struct.widths is None) != (spec.widths is None):
                    return None
                if spec.widths is not None and not np.array_equal(
                    np.asarray(struct.widths), np.asarray(spec.widths)
                ):
                    return None
                verified.add(pair_key)
            widths_u64 = (
                None if spec.widths is None else spec.widths.astype(np.uint64)
            )
            execs.append(
                _ExecRound(
                    LANE, spec, struct, None, spec.width, widths_u64,
                    struct.count, bits,
                )
            )
        else:
            if kind != BCAST:
                return None
            ids, width = payload
            if width != spec.width or ids != tuple(int(w) for w in spec.writers):
                return None
            execs.append(
                _ExecRound(
                    BCAST, spec, payload, spec.writers, spec.width, None,
                    len(ids), bits,
                )
            )
    loaded.kernel = execs
    return loaded


def _lane_alloc(network):
    """The network's zero-copy lane allocator hook, or None (heap)."""
    arena = getattr(network, "lane_allocator", None)
    return None if arena is None else arena.zeros


def _coerce_payload(vals, rec: _ExecRound, instances: int, r: int) -> np.ndarray:
    if rec.is_object:
        if not (isinstance(vals, np.ndarray) and vals.dtype == object):
            arr = np.empty((instances, rec.count), dtype=object)
            try:
                arr[...] = vals
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    f"kernel round {r} produced a malformed payload: {exc}"
                ) from exc
            vals = arr
    else:
        vals = np.asarray(vals, dtype=np.uint64)
    if vals.shape != (instances, rec.count):
        raise ProtocolError(
            f"kernel round {r} produced payload shape {vals.shape}, "
            f"expected {(instances, rec.count)}"
        )
    return vals


def _validate_payload(vals: np.ndarray, rec: _ExecRound, r: int) -> None:
    if rec.is_object:
        widths = rec.spec.widths if rec.kind == LANE else None
        if widths is None:
            w = rec.width
            bad = any(v < 0 or (v >> w) for row in vals for v in row)
        else:
            bad = any(
                v < 0 or (v >> int(w))
                for row in vals
                for v, w in zip(row, widths)
            )
    elif rec.widths_u64 is None:
        bad = bool((vals >> np.uint64(rec.width)).any())
    else:
        bad = bool((vals >> rec.widths_u64).any())
    if bad:
        raise ProtocolError(
            f"kernel round {r} produced a value that does not fit its "
            f"declared width"
        )


def _kernel_snapshot(
    state: Dict[str, Any],
    transcripts,
    program_name: str,
    rounds_total: int,
    instances: int,
    counters: Dict[str, int],
):
    """Split the kernel ``state`` dict into a checkpoint payload:
    numeric ndarrays go into the npz verbatim (with their frozen flags
    recorded — the zero-churn memo relies on them), everything else is
    pickled.  Returns the ``(arrays, blobs, counters, meta)`` tuple a
    :class:`~repro.core.checkpoint.CheckpointSession` flushes."""
    import pickle

    arrays: Dict[str, np.ndarray] = {}
    rest: Dict[str, Any] = {}
    frozen: List[str] = []
    for key, value in state.items():
        if isinstance(value, np.ndarray) and value.dtype != object:
            arrays[f"state__{key}"] = value
            if not value.flags.writeable:
                frozen.append(key)
        else:
            rest[key] = value
    blobs = {"state_pickle": pickle.dumps(rest)}
    if transcripts is not None:
        blobs["transcripts"] = pickle.dumps(transcripts)
    meta = {
        "kind": "kernel-rounds",
        "schedule": program_name,
        "rounds_total": rounds_total,
        "instances": instances,
        "frozen": frozen,
    }
    return arrays, blobs, counters, meta


def _kernel_restore(ckpt, rounds_total: int, instances: int, recording: bool):
    """Decode a kernel round checkpoint into ``(start_round, state,
    counters, transcripts)``; raises ``ValueError`` when the snapshot
    does not describe this execution (the caller discards it and
    restarts cleanly)."""
    import pickle

    meta = ckpt.meta
    if meta.get("kind") != "kernel-rounds":
        raise ValueError(f"snapshot kind {meta.get('kind')!r} is not a "
                         "kernel round boundary")
    if meta.get("instances") != instances:
        raise ValueError(
            f"snapshot stacks {meta.get('instances')} instances, "
            f"this execution has {instances}"
        )
    if meta.get("rounds_total") != rounds_total or not (
        0 < ckpt.round_index <= rounds_total
    ):
        raise ValueError(
            f"snapshot round {ckpt.round_index}/{meta.get('rounds_total')} "
            f"does not fit a {rounds_total}-round program"
        )
    state: Dict[str, Any] = dict(pickle.loads(ckpt.blobs["state_pickle"]))
    frozen = set(meta.get("frozen", ()))
    for name, arr in ckpt.arrays.items():
        if not name.startswith("state__"):
            continue
        key = name[len("state__"):]
        value = np.array(arr)
        if key in frozen:
            value.flags.writeable = False
        state[key] = value
    counters = {
        "total_bits": int(ckpt.counters["total_bits"]),
        "max_round_bits": int(ckpt.counters["max_round_bits"]),
    }
    transcripts = None
    if recording:
        transcripts = pickle.loads(ckpt.blobs["transcripts"])
    return ckpt.round_index, state, counters, transcripts


def execute(
    network,
    program: KernelProgram,
    compiled: CompiledSchedule,
    inputs_list: Sequence[Any],
    session=None,
) -> List[RunResult]:
    """Run ``inputs_list`` (K instances) through the compiled kernel
    rounds in lockstep; returns one :class:`RunResult` per instance.

    ``session`` is an optional
    :class:`~repro.core.checkpoint.CheckpointSession`: the loop then
    snapshots the state dict at round boundaries per the session's
    policy and resumes from the session's payload — the first
    post-restore round takes the full validate-and-deliver path (the
    zero-churn memos reset naturally), every restored round is simply
    never re-executed."""
    execs: List[_ExecRound] = compiled.kernel
    if len(execs) > network._round_cap():
        limit = network.round_limit
        if limit is not None and len(execs) > limit:
            raise RoundLimitExceeded(
                f"kernel program declares {len(execs)} rounds "
                f"(round_limit {limit})"
            )
        raise MaxRoundsExceededError(
            f"kernel program declares {len(execs)} rounds "
            f"(max_rounds {network.max_rounds})"
        )
    n = network.n
    instances = len(inputs_list)
    faults = network._fault_session()
    _seed, private_states, shared_state = network._rng_state_bundle()
    kctx = KernelContext(
        n, network.bandwidth, network.mode, inputs_list,
        private_states, shared_state,
    )
    state: Dict[str, Any] = {}
    for hook in program.init_hooks:
        hook(state, kctx)

    lanes = network._kernel_lanes.get(instances)
    if lanes is None:
        if len(network._kernel_lanes) >= 4:
            network._kernel_lanes.clear()
        lanes = network._kernel_lanes[instances] = [None, None]
    recording = network.record_transcript
    transcripts: Optional[List[List[RoundRecord]]] = (
        [[] for _ in range(instances)] if recording else None
    )

    total_bits = 0
    max_round_bits = 0
    start_round = 0
    rounds_total = len(execs)
    if session is not None:
        session.raise_if_preempted_at_start()
        ckpt = session.resume_checkpoint()
        if ckpt is not None:
            try:
                start_round, restored_state, counters, restored_tx = (
                    _kernel_restore(ckpt, rounds_total, instances, recording)
                )
            except Exception as exc:  # noqa: BLE001 - unusable snapshot
                session.discard_resume(
                    "restore-failed", f"snapshot unusable: {exc}"
                )
                start_round = 0
            else:
                # The snapshot captured the *whole* state dict, so it
                # replaces the init hooks' output wholesale — resumed
                # state is exactly the pre-preemption state.
                state.clear()
                state.update(restored_state)
                total_bits = counters["total_bits"]
                max_round_bits = counters["max_round_bits"]
                if recording:
                    transcripts = restored_tx
                session.mark_resumed(start_round)
    last_lane: Tuple[Any, Any] = (None, None)
    last_bcast: Tuple[Any, Any] = (None, None)
    for r in range(start_round, rounds_total):
        rec = execs[r]
        spec = rec.spec
        vals = spec.send(state) if spec.send is not None else None
        if rec.kind == LANE:
            lane = lanes[0]
            if lane is None:
                lane = lanes[0] = BatchLane(
                    n, instances, alloc=_lane_alloc(network)
                )
            struct = rec.struct
            if rec.count == 0:
                lane.deliver_kernel(struct, None)
                arr = None
            elif (
                vals is not None
                and last_lane[0] is struct
                and last_lane[1] is vals
                and not recording
            ):
                # Zero-churn: the exact (frozen) payload array of the
                # previous delivery of this structure — already
                # validated, already in the buffer.
                lane.deliver_kernel(struct, None)
                arr = vals
            else:
                if vals is None:
                    raise ProtocolError(
                        f"kernel round {r} produced no payloads for "
                        f"{rec.count} declared messages"
                    )
                arr = _coerce_payload(vals, rec, instances, r)
                _validate_payload(arr, rec, r)
                lane.deliver_kernel(struct, arr)
                last_lane = (
                    (struct, vals)
                    if isinstance(vals, np.ndarray) and not vals.flags.writeable
                    else (None, None)
                )
            values, present = lane.delivered()
            if faults is not None:
                # Chaos runs read fault-adjusted *copies*; the lane's
                # live buffers (incrementally maintained, shared across
                # rounds) must never see a mutation.
                values, present = faults.apply_kernel_unicast(
                    r + 1, values, present, struct.rows, struct.cols,
                    rec.width, spec.widths,
                )
            inbox: Any = KernelUnicastInbox(
                values, present, rec.width, spec.widths,
                struct.rows, struct.cols,
            )
            if recording and rec.count:
                rows, cols = struct.rows, struct.cols
                widths = spec.widths
                for k in range(instances):
                    record = RoundRecord()
                    row_vals = arr[k]
                    for j in range(rec.count):
                        w = rec.width if widths is None else int(widths[j])
                        record.sends.append(
                            (
                                int(rows[j]),
                                int(cols[j]),
                                Bits(int(row_vals[j]), w),
                            )
                        )
                    transcripts[k].append(record)
            elif recording:
                for k in range(instances):
                    transcripts[k].append(RoundRecord())
        else:
            blane = lanes[1]
            if blane is None:
                blane = lanes[1] = BatchBroadcastLane(
                    n, instances, alloc=_lane_alloc(network)
                )
            writers = rec.writers
            if rec.count == 0:
                blane.deliver_kernel(writers, rec.width, None)
                arr = None
            elif (
                vals is not None
                and last_bcast[0] is rec.struct
                and last_bcast[1] is vals
                and not recording
            ):
                blane.deliver_kernel(writers, rec.width, None)
                arr = vals
            else:
                if vals is None:
                    raise ProtocolError(
                        f"kernel round {r} produced no payloads for "
                        f"{rec.count} declared writers"
                    )
                arr = _coerce_payload(vals, rec, instances, r)
                _validate_payload(arr, rec, r)
                blane.deliver_kernel(writers, rec.width, arr)
                last_bcast = (
                    (rec.struct, vals)
                    if isinstance(vals, np.ndarray) and not vals.flags.writeable
                    else (None, None)
                )
            values, present = blane.delivered()
            if faults is not None:
                values, present = faults.apply_kernel_broadcast(
                    r + 1, values, present, writers, rec.width
                )
            inbox = KernelBroadcastInbox(values, present, rec.width, writers)
            if recording:
                for k in range(instances):
                    record = RoundRecord()
                    if rec.count:
                        row_vals = arr[k]
                        for j, w in enumerate(writers):
                            record.sends.append(
                                (int(w), None, Bits(int(row_vals[j]), rec.width))
                            )
                    transcripts[k].append(record)
        if spec.recv is not None:
            spec.recv(state, inbox)
        total_bits += rec.bits
        if rec.bits > max_round_bits:
            max_round_bits = rec.bits
        if session is not None:
            session.note_round()
            done = r + 1

            def build(done=done, bits=total_bits, maxb=max_round_bits):
                return _kernel_snapshot(
                    state,
                    transcripts,
                    getattr(program, "name", "?"),
                    rounds_total,
                    instances,
                    {
                        "round": done,
                        "total_bits": bits,
                        "max_round_bits": maxb,
                    },
                )

            session.maybe_snapshot(
                done, build, final_round=done == rounds_total
            )

    outputs_list = (
        program.finish(state, kctx) if program.finish is not None else None
    )
    if outputs_list is None:
        # No finish, or a finish wrapper around trailing prologues only:
        # every node outputs None, like a generator returning nothing.
        outputs_list = [[None] * n for _ in range(instances)]
    if len(outputs_list) != instances:
        raise ProtocolError(
            f"kernel finish returned {len(outputs_list)} instances, "
            f"expected {instances}"
        )
    results = []
    for k in range(instances):
        outputs = list(outputs_list[k])
        if len(outputs) != n:
            raise ProtocolError(
                f"kernel finish returned {len(outputs)} outputs for "
                f"{n} nodes"
            )
        results.append(
            RunResult(
                outputs=outputs,
                rounds=len(execs),
                total_bits=total_bits,
                max_round_bits=max_round_bits,
                transcript=transcripts[k] if recording else None,
                # One stacked delivery serves every instance, so the
                # injected schedule is shared verbatim across them.
                faults=faults.events if faults is not None else None,
            )
        )
    return results


# -- payload packing helpers --------------------------------------------


def pack_rows(rows: np.ndarray) -> List[int]:
    """Each row of a ``K × L`` 0/1 array as one Python int, first column
    most significant — the bulk counterpart of
    ``Bits.from_bools(row).to_uint()`` used to build routed payloads."""
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError("pack_rows needs a 2-D array")
    k, length = rows.shape
    if length == 0:
        return [0] * k
    packed = np.packbits(rows.astype(np.uint8, copy=False), axis=1)
    pad = (-length) % 8
    stride = packed.shape[1]
    data = packed.tobytes()
    return [
        int.from_bytes(data[i * stride : (i + 1) * stride], "big") >> pad
        for i in range(k)
    ]


def unpack_rows(values: Sequence[int], length: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: ``K`` ints of ``length`` bits each
    back into a ``K × length`` 0/1 ``uint8`` array."""
    k = len(values)
    if length == 0:
        return np.zeros((k, 0), dtype=np.uint8)
    pad = (-length) % 8
    nbytes = (length + 7) // 8
    data = b"".join(
        (int(v) << pad).to_bytes(nbytes, "big") for v in values
    )
    arr = np.frombuffer(data, dtype=np.uint8).reshape(k, nbytes)
    return np.unpackbits(arr, axis=1)[:, :length]
