"""Durable mid-run checkpoints: snapshot a run at a round boundary,
restore it later, byte-identical.

A :class:`RunCheckpoint` captures everything an engine needs to resume a
run where it stopped — the completed-round index, the engine's state
arrays (kernel stacked K×n×n state), the delivered-wire log the fast
engine replays its generators from, accounting counters, and the
compiled-schedule identity — in a versioned, content-addressed on-disk
format:

``<directory>/<run_id[:16]>/r<round>-<digest8>/``
    ``payload.npz``   — every array and pickled blob, one ``np.savez``
    ``manifest.json`` — schema version, engine, run id, round index,
    counters, metadata, and the payload's sha256 digest

Writes are atomic (tmp directory + ``os.replace``); loads verify the
payload digest against the manifest and raise a structured
:class:`~repro.core.errors.CheckpointCorruptError` on any mismatch.
Discovery (:func:`latest_checkpoint`) walks snapshots newest-first and
*skips* corrupt ones into a report instead of failing, so a damaged
checkpoint degrades to a clean restart, never a crashed run.

The :class:`CheckpointSession` is the engine-facing driver: engines call
:meth:`~CheckpointSession.maybe_snapshot` at every round boundary and
the session decides — from the :class:`CheckpointPolicy`'s
``every_rounds`` / ``every_seconds`` knobs and the ``preempt`` signal —
whether to flush.  A preemption flushes a final snapshot and raises
:class:`~repro.core.errors.RunPreempted`.

Engine support matrix: the fast and kernel engines snapshot natively
(``supports_checkpoint=True``); the legacy engine cannot pickle live
generators, reports ``supports_checkpoint=False`` honestly, and restores
by deterministic replay from round 0 (same result, no saved rounds).
Checkpointing refuses to combine with an active fault plan — chaos
schedules are positional and a resumed run would replay them from the
wrong offset.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import shutil
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import (
    CheckpointCorruptError,
    FaultInjectionError,
    RunPreempted,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointPolicy",
    "CheckpointSession",
    "RunCheckpoint",
    "latest_checkpoint",
    "load_checkpoint",
    "run_identity",
    "stable_digest",
]

#: On-disk format version.  Bump on any incompatible layout change; the
#: loader rejects unknown schemas as corrupt (they fall back to a clean
#: restart, never a misinterpreted resume).
CHECKPOINT_SCHEMA = 1

MANIFEST_NAME = "manifest.json"
PAYLOAD_NAME = "payload.npz"


# ---------------------------------------------------------------------------
# Stable identity
# ---------------------------------------------------------------------------


def _stable_encode(obj: Any, out: List[bytes]) -> None:
    """Append a canonical byte encoding of ``obj`` to ``out``.

    Canonical means process-independent: no ``hash()`` (salted by
    PYTHONHASHSEED), dict entries sorted by encoded key, set elements
    sorted by encoded value.  Covers the types that appear in run
    coordinates (ints, strings, Bits, arrays, containers); anything else
    falls back to its pickle, which is stable for plain data objects.
    """
    from repro.core.bits import Bits

    if obj is None:
        out.append(b"N;")
    elif obj is True or obj is False:
        out.append(b"B1;" if obj else b"B0;")
    elif isinstance(obj, int):
        out.append(b"I" + str(obj).encode() + b";")
    elif isinstance(obj, float):
        out.append(b"F" + repr(obj).encode() + b";")
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        out.append(b"S" + str(len(data)).encode() + b":" + data)
    elif isinstance(obj, bytes):
        out.append(b"Y" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, Bits):
        out.append(
            b"b" + str(obj._value).encode() + b"/" + str(len(obj)).encode()
        )
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        out.append(
            b"A" + arr.dtype.str.encode() + str(arr.shape).encode() + b":"
        )
        out.append(arr.tobytes())
    elif isinstance(obj, (list, tuple)):
        out.append(b"L(" if isinstance(obj, list) else b"T(")
        for item in obj:
            _stable_encode(item, out)
        out.append(b")")
    elif isinstance(obj, dict):
        encoded = []
        for key, value in obj.items():
            kparts: List[bytes] = []
            _stable_encode(key, kparts)
            vparts: List[bytes] = []
            _stable_encode(value, vparts)
            encoded.append((b"".join(kparts), b"".join(vparts)))
        out.append(b"D(")
        for kdata, vdata in sorted(encoded):
            out.append(kdata)
            out.append(vdata)
        out.append(b")")
    elif isinstance(obj, (set, frozenset)):
        encoded_items = []
        for item in obj:
            parts: List[bytes] = []
            _stable_encode(item, parts)
            encoded_items.append(b"".join(parts))
        out.append(b"E(")
        out.extend(sorted(encoded_items))
        out.append(b")")
    else:
        value = getattr(obj, "value", None)
        if value is not None and type(obj).__module__ == "enum":
            _stable_encode(value, out)
            return
        out.append(b"O" + type(obj).__qualname__.encode() + b":")
        out.append(pickle.dumps(obj, protocol=4))


def stable_digest(obj: Any) -> str:
    """A 16-hex-digit sha256 digest of ``obj``'s canonical encoding —
    identical across processes and PYTHONHASHSEED values."""
    parts: List[bytes] = []
    _stable_encode(obj, parts)
    return hashlib.sha256(b"".join(parts)).hexdigest()[:16]


def run_identity(network: Any, program: Any, inputs: Any,
                 flavor: str = "run") -> str:
    """The engine-independent identity of one execution: same network
    coordinates + same program + same inputs → same id, so a retry (or a
    different engine) finds the checkpoints its predecessor wrote."""
    from repro.core.compiled import describe_program

    return stable_digest(
        (
            flavor,
            network.n,
            network.bandwidth,
            network.mode.value,
            network.seed,
            describe_program(program),
            inputs,
        )
    )


# ---------------------------------------------------------------------------
# On-disk format
# ---------------------------------------------------------------------------


@dataclass
class RunCheckpoint:
    """One snapshot of a run at a round boundary.

    ``arrays`` hold numeric ndarrays verbatim (saved uncompressed in the
    npz payload); ``blobs`` hold pickled engine state (wire logs,
    transcripts, non-array state entries).  ``counters`` are the
    accounting integers (rounds, total_bits, max_round_bits) and
    ``meta`` is free-form JSON-able context (schedule identity, frozen
    flags).  ``path``/``digest`` are stamped by save/load.
    """

    engine: str
    run_id: str
    round_index: int
    counters: Dict[str, int] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    blobs: Dict[str, bytes] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)
    path: Optional[str] = None
    digest: Optional[str] = None

    def save(self, directory: str, keep: int = 0) -> str:
        """Write this snapshot under ``directory`` atomically; returns
        the snapshot directory.  ``keep > 0`` prunes older snapshots of
        the same run down to the newest ``keep``."""
        run_dir = os.path.join(directory, self.run_id[:16])
        os.makedirs(run_dir, exist_ok=True)
        payload: Dict[str, np.ndarray] = {}
        for name, arr in self.arrays.items():
            arr = np.asarray(arr)
            if arr.dtype == object:
                raise ValueError(
                    f"checkpoint array {name!r} has object dtype; "
                    "put it in blobs instead"
                )
            payload[f"arr__{name}"] = arr
        for name, blob in self.blobs.items():
            payload[f"blob__{name}"] = np.frombuffer(blob, dtype=np.uint8)
        buf = io.BytesIO()
        np.savez(buf, **payload)
        data = buf.getvalue()
        digest = hashlib.sha256(data).hexdigest()
        manifest = {
            "schema": CHECKPOINT_SCHEMA,
            "engine": self.engine,
            "run_id": self.run_id,
            "round_index": self.round_index,
            "counters": dict(self.counters),
            "meta": dict(self.meta),
            "payload_sha256": digest,
            "arrays": sorted(self.arrays),
            "blobs": sorted(self.blobs),
        }
        name = f"r{self.round_index:08d}-{digest[:8]}"
        final = os.path.join(run_dir, name)
        if not os.path.isdir(final):
            tmp = final + ".tmp"
            shutil.rmtree(tmp, ignore_errors=True)
            os.makedirs(tmp)
            with open(os.path.join(tmp, PAYLOAD_NAME), "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            with open(os.path.join(tmp, MANIFEST_NAME), "w") as fh:
                json.dump(manifest, fh, indent=2, sort_keys=True)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
        self.path = final
        self.digest = digest
        if keep > 0:
            _prune(run_dir, keep)
        return final


def load_checkpoint(path: str) -> RunCheckpoint:
    """Load and verify one snapshot directory; raises
    :class:`CheckpointCorruptError` (with a machine-readable ``reason``)
    on any integrity failure."""
    manifest_path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(manifest_path, "r") as fh:
            manifest = json.load(fh)
        schema = manifest["schema"]
        expected = manifest["payload_sha256"]
        arr_names = list(manifest["arrays"])
        blob_names = list(manifest["blobs"])
    except FileNotFoundError as exc:
        raise CheckpointCorruptError(
            f"checkpoint manifest missing at {path}", path, "missing"
        ) from exc
    except Exception as exc:  # noqa: BLE001 - any parse failure is corruption
        raise CheckpointCorruptError(
            f"checkpoint manifest unreadable at {path}: {exc}",
            path,
            "manifest-unreadable",
        ) from exc
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointCorruptError(
            f"checkpoint at {path} has unknown schema {schema!r}",
            path,
            "schema-mismatch",
        )
    try:
        with open(os.path.join(path, PAYLOAD_NAME), "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise CheckpointCorruptError(
            f"checkpoint payload unreadable at {path}: {exc}",
            path,
            "payload-unreadable",
        ) from exc
    digest = hashlib.sha256(data).hexdigest()
    if digest != expected:
        raise CheckpointCorruptError(
            f"checkpoint payload digest mismatch at {path}: "
            f"manifest says {expected[:12]}, payload is {digest[:12]}",
            path,
            "digest-mismatch",
        )
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as npz:
            arrays = {name: npz[f"arr__{name}"] for name in arr_names}
            blobs = {
                name: npz[f"blob__{name}"].tobytes() for name in blob_names
            }
    except Exception as exc:  # noqa: BLE001 - any decode failure is corruption
        raise CheckpointCorruptError(
            f"checkpoint payload undecodable at {path}: {exc}",
            path,
            "payload-unreadable",
        ) from exc
    ckpt = RunCheckpoint(
        engine=manifest["engine"],
        run_id=manifest["run_id"],
        round_index=int(manifest["round_index"]),
        counters=dict(manifest.get("counters", {})),
        arrays=arrays,
        blobs=blobs,
        meta=dict(manifest.get("meta", {})),
        path=path,
        digest=digest,
    )
    return ckpt


def _snapshot_entries(run_dir: str) -> List[str]:
    """Snapshot directory names under ``run_dir``, newest round first."""
    try:
        names = os.listdir(run_dir)
    except OSError:
        return []
    return sorted(
        (
            name
            for name in names
            if name.startswith("r") and not name.endswith(".tmp")
        ),
        reverse=True,
    )


def latest_checkpoint(
    directory: str, run_id: str
) -> Tuple[Optional[RunCheckpoint], List[Dict[str, str]]]:
    """The newest valid snapshot of ``run_id`` under ``directory``, plus
    a structured report of every snapshot skipped as corrupt.  Returns
    ``(None, report)`` when nothing valid exists — the caller restarts
    cleanly."""
    run_dir = os.path.join(directory, run_id[:16])
    report: List[Dict[str, str]] = []
    for name in _snapshot_entries(run_dir):
        path = os.path.join(run_dir, name)
        try:
            ckpt = load_checkpoint(path)
        except CheckpointCorruptError as exc:
            report.append(
                {"path": path, "reason": exc.reason, "error": str(exc)}
            )
            continue
        if ckpt.run_id != run_id:
            report.append(
                {
                    "path": path,
                    "reason": "run-id-mismatch",
                    "error": f"snapshot belongs to run {ckpt.run_id}",
                }
            )
            continue
        return ckpt, report
    return None, report


def _prune(run_dir: str, keep: int) -> None:
    for name in _snapshot_entries(run_dir)[keep:]:
        shutil.rmtree(os.path.join(run_dir, name), ignore_errors=True)


# ---------------------------------------------------------------------------
# Policy + session
# ---------------------------------------------------------------------------


class CheckpointPolicy:
    """When and where to snapshot.

    ``every_rounds`` flushes a snapshot each time that many rounds
    completed since the last flush; ``every_seconds`` each time that
    much wall-clock elapsed (either alone, or both — whichever fires
    first).  ``preempt`` is an optional signal — a
    :class:`threading.Event` or a zero-arg callable returning truth —
    checked at every round boundary: when set, the engine flushes a
    final snapshot and raises :class:`~repro.core.errors.RunPreempted`.
    ``on_snapshot(round_index, digest, path)`` is called after each
    flush (sweep workers use it to stream checkpoint lineage to the
    supervisor).  ``keep`` bounds snapshots retained per run.
    """

    def __init__(
        self,
        directory: str,
        *,
        every_rounds: Optional[int] = None,
        every_seconds: Optional[float] = None,
        preempt: Optional[Any] = None,
        on_snapshot: Optional[Callable[[int, str, str], None]] = None,
        keep: int = 2,
    ) -> None:
        if every_rounds is not None and every_rounds < 1:
            raise ValueError("every_rounds must be >= 1")
        if every_seconds is not None and every_seconds < 0:
            raise ValueError("every_seconds must be >= 0")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = str(directory)
        self.every_rounds = every_rounds
        self.every_seconds = every_seconds
        self.preempt = preempt
        self.on_snapshot = on_snapshot
        self.keep = keep

    def preempted(self) -> bool:
        signal = self.preempt
        if signal is None:
            return False
        check = getattr(signal, "is_set", signal)
        return bool(check())


class CheckpointSession:
    """Drives one checkpointed (or resumed) execution for an engine.

    Construction resolves ``resume_from`` — ``"auto"`` discovers the
    newest valid snapshot for this run's identity under the policy
    directory, a path string loads that snapshot, a
    :class:`RunCheckpoint` is used as-is — tolerating corruption by
    recording it in ``corrupt_skipped`` and restarting cleanly.  Engines
    then ask :meth:`resume_checkpoint` for a natively usable payload,
    call :meth:`note_round` per executed round and
    :meth:`maybe_snapshot` at each round boundary, and hand the finished
    result to :meth:`finish`, which stamps ``result.resume`` and the
    network's ``checkpoint_stats``.
    """

    def __init__(
        self,
        engine: Any,
        network: Any,
        program: Any,
        inputs: Any,
        policy: Optional[CheckpointPolicy],
        resume_from: Any,
        flavor: str = "run",
    ) -> None:
        plan = getattr(network, "fault_plan", None)
        if plan is not None and getattr(plan, "is_active", True):
            raise FaultInjectionError(
                "checkpointing cannot run under an active fault plan: "
                "chaos schedules are positional and a resumed run would "
                "replay them from the wrong offset"
            )
        if policy is not None and not isinstance(policy, CheckpointPolicy):
            raise TypeError(
                "checkpoint= expects a CheckpointPolicy, got "
                f"{type(policy).__name__}"
            )
        self.engine_name = engine.name
        self.supported = bool(engine.supports_checkpoint)
        self.network = network
        self.policy = policy
        self.run_id = run_identity(network, program, inputs, flavor)
        self.corrupt_skipped: List[Dict[str, str]] = []
        self.resume: Optional[RunCheckpoint] = None
        self.snapshots = 0
        self.rounds_executed = 0
        self.rounds_restored = 0
        self.last_checkpoint: Optional[str] = None
        self._last_flush_round = 0
        now = time.monotonic()  # analysis: allow(wall-clock)
        self._last_flush_time = now
        self._resolve_resume(resume_from)
        self._reset_stats()

    # -- resume resolution --------------------------------------------

    def _resolve_resume(self, resume_from: Any) -> None:
        if resume_from is None:
            return
        if isinstance(resume_from, RunCheckpoint):
            self.resume = resume_from
            return
        if resume_from == "auto":
            if self.policy is None:
                raise ValueError(
                    "resume_from='auto' needs a checkpoint policy (the "
                    "directory to discover snapshots in)"
                )
            self.resume, self.corrupt_skipped = latest_checkpoint(
                self.policy.directory, self.run_id
            )
            return
        try:
            ckpt = load_checkpoint(str(resume_from))
        except CheckpointCorruptError as exc:
            self.corrupt_skipped.append(
                {
                    "path": str(resume_from),
                    "reason": exc.reason,
                    "error": str(exc),
                }
            )
            return
        if ckpt.run_id != self.run_id:
            self.corrupt_skipped.append(
                {
                    "path": str(resume_from),
                    "reason": "run-id-mismatch",
                    "error": (
                        f"snapshot belongs to run {ckpt.run_id}, "
                        f"this run is {self.run_id}"
                    ),
                }
            )
            return
        self.resume = ckpt

    # -- engine-facing API --------------------------------------------

    def resume_checkpoint(self) -> Optional[RunCheckpoint]:
        """The resume payload, if it is natively usable by this engine;
        an engine-mismatched snapshot is skipped into the report (the
        run restarts cleanly, still correct)."""
        ckpt = self.resume
        if ckpt is None:
            return None
        if ckpt.engine != self.engine_name:
            self.discard_resume(
                "engine-mismatch",
                f"snapshot was written by the {ckpt.engine!r} engine",
            )
            return None
        return ckpt

    def discard_resume(self, reason: str, detail: str) -> None:
        """Drop the resume payload (restore turned out impossible) and
        record why; the run restarts from round 0."""
        ckpt = self.resume
        if ckpt is None:
            return
        self.corrupt_skipped.append(
            {"path": ckpt.path or "<in-memory>", "reason": reason,
             "error": detail}
        )
        self.resume = None
        self.rounds_restored = 0
        self._last_flush_round = 0
        self._sync_stats()

    def mark_resumed(self, round_index: int) -> None:
        """The engine successfully restored state through ``round_index``
        completed rounds."""
        self.rounds_restored = round_index
        self._last_flush_round = round_index
        self._sync_stats()

    def preempt_requested(self) -> bool:
        return self.policy is not None and self.policy.preempted()

    def raise_if_preempted_at_start(self) -> None:
        """Exit before executing anything when the preempt signal is
        already set; the newest on-disk snapshot (if any) stands."""
        if not self.preempt_requested():
            return
        ckpt = self.resume
        round_index = ckpt.round_index if ckpt is not None else 0
        path = ckpt.path if ckpt is not None else None
        self._sync_stats()
        raise RunPreempted(
            f"run preempted before executing (checkpointed through round "
            f"{round_index})",
            round_index,
            path,
        )

    def note_round(self) -> None:
        self.rounds_executed += 1

    def maybe_snapshot(
        self,
        round_index: int,
        build: Callable[[], Tuple[Dict[str, np.ndarray], Dict[str, bytes],
                                  Dict[str, int], Dict[str, Any]]],
        final_round: bool = False,
    ) -> Optional[str]:
        """Flush a snapshot at this round boundary if the policy says so
        (or the preempt signal fired — then flush unconditionally and
        raise :class:`RunPreempted`).  Routine snapshots skip the final
        round — the finished result makes them pointless."""
        policy = self.policy
        if policy is None:
            return None
        preempt = policy.preempted()
        due = False
        if preempt:
            due = round_index > self._last_flush_round
        elif not final_round:
            if (
                policy.every_rounds is not None
                and round_index - self._last_flush_round
                >= policy.every_rounds
            ):
                due = True
            elif policy.every_seconds is not None:
                now = time.monotonic()  # analysis: allow(wall-clock)
                if now - self._last_flush_time >= policy.every_seconds:
                    due = True
        path = self._flush(round_index, build) if due else None
        if preempt:
            if path is None:
                path = self.last_checkpoint
            self._sync_stats()
            raise RunPreempted(
                f"run preempted at round {round_index}", round_index, path
            )
        return path

    def _flush(self, round_index: int, build: Callable) -> str:
        arrays, blobs, counters, meta = build()
        meta = dict(meta)
        meta.setdefault("flavor", "run")
        ckpt = RunCheckpoint(
            engine=self.engine_name,
            run_id=self.run_id,
            round_index=round_index,
            counters=counters,
            arrays=arrays,
            blobs=blobs,
            meta=meta,
        )
        path = ckpt.save(self.policy.directory, keep=self.policy.keep)
        self.snapshots += 1
        self.last_checkpoint = path
        self._last_flush_round = round_index
        self._last_flush_time = time.monotonic()  # analysis: allow(wall-clock)
        self._sync_stats()
        if self.policy.on_snapshot is not None:
            self.policy.on_snapshot(round_index, ckpt.digest, path)
        return path

    # -- result stamping ----------------------------------------------

    def _reset_stats(self) -> None:
        self.network.checkpoint_stats = {
            "engine": self.engine_name,
            "run_id": self.run_id,
            "supported": self.supported,
            "mode": "native" if self.supported else "replay",
            "snapshots": 0,
            "rounds_executed": 0,
            "rounds_restored": 0,
            "resumed_from": None,
            "resumed_round": 0,
            "last_checkpoint": None,
            "corrupt_skipped": list(self.corrupt_skipped),
        }
        self._sync_stats()

    def _sync_stats(self) -> None:
        stats = self.network.checkpoint_stats
        stats["snapshots"] = self.snapshots
        stats["rounds_executed"] = self.rounds_executed
        stats["rounds_restored"] = self.rounds_restored
        stats["last_checkpoint"] = self.last_checkpoint
        stats["corrupt_skipped"] = list(self.corrupt_skipped)
        if self.resume is not None:
            stats["resumed_from"] = self.resume.path
            stats["resumed_round"] = self.resume.round_index

    def finish(self, result: Any) -> Any:
        """Stamp resume provenance on the finished result and the
        network's ``checkpoint_stats``."""
        self._sync_stats()
        if self.resume is not None:
            result.resume = {
                "mode": "native",
                "round": self.rounds_restored,
                "checkpoint": self.resume.path,
                "engine": self.engine_name,
            }
        return result

    def finish_many(self, results: List[Any]) -> List[Any]:
        """:meth:`finish` for a ``run_many`` sweep: provenance is
        stamped on every result (the restored prefix and the freshly
        executed tail alike — they all came out of one resumed call)."""
        self._sync_stats()
        if self.resume is not None:
            for result in results:
                result.resume = {
                    "mode": "native",
                    "round": self.rounds_restored,
                    "checkpoint": self.resume.path,
                    "engine": self.engine_name,
                }
        return results

    # -- replay-restore path (engines without native support) ---------

    def run_replay_restore(self, fn: Callable[[], Any]) -> Any:
        """Execute ``fn`` (the engine's ordinary run) under honest
        non-native semantics: no snapshots are written, a requested
        resume is honoured by deterministic replay from round 0, and the
        result records ``mode='replay'`` so provenance stays auditable."""
        self.raise_if_preempted_at_start()
        result = fn()
        self.rounds_executed = getattr(result, "rounds", 0) or 0
        self._sync_stats()
        if self.resume is not None:
            result.resume = {
                "mode": "replay",
                "round": 0,
                "requested_round": self.resume.round_index,
                "checkpoint": self.resume.path,
                "engine": self.engine_name,
            }
        if self.preempt_requested():
            # The signal fired while the uninterruptible run finished;
            # the completed result stands, nothing to flush.
            pass
        return result

    def run_replay_restore_many(self, fn: Callable[[], List[Any]]) -> List[Any]:
        """:meth:`run_replay_restore` for a ``run_many`` sweep."""
        self.raise_if_preempted_at_start()
        results = fn()
        self.rounds_executed = sum(
            getattr(result, "rounds", 0) or 0 for result in results
        )
        self._sync_stats()
        if self.resume is not None:
            for result in results:
                result.resume = {
                    "mode": "replay",
                    "round": 0,
                    "requested_round": self.resume.round_index,
                    "checkpoint": self.resume.path,
                    "engine": self.engine_name,
                }
        return results
