"""Per-round message containers: what a node sends and what it receives.

:class:`Outbox` is what one node yields at the end of its round —
scalar unicast/broadcast dicts, or the bulk fixed-width constructors the
numpy lanes (:mod:`repro.core.fastlane`) deliver in one array write.
:class:`Inbox` is the dict-backed receive view the scalar paths hand
back (the lanes provide their own array-backed flavours with the same
accessors; :func:`inbox_uints` reads either).

Both classes are engine-agnostic: every backend in
:mod:`repro.core.engine` consumes the same containers, which is what
keeps their results byte-identical.  Historically these lived in
:mod:`repro.core.network`, which still re-exports them.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.bits import Bits

__all__ = ["Inbox", "Outbox", "inbox_uints", "EMPTY_INBOX"]


class Inbox:
    """Messages delivered to one node in one round, keyed by sender id.

    Inboxes are immutable once delivered, so the sorted views produced by
    :meth:`senders` and :meth:`items` are computed once and cached.
    """

    __slots__ = ("_by_sender", "_senders", "_items")

    def __init__(self, by_sender: Dict[int, Bits]) -> None:
        self._by_sender = by_sender
        self._senders: Optional[Tuple[int, ...]] = None
        self._items: Optional[Tuple[Tuple[int, Bits], ...]] = None

    def get(self, sender: int) -> Optional[Bits]:
        return self._by_sender.get(sender)

    def senders(self) -> Tuple[int, ...]:
        cached = self._senders
        if cached is None:
            cached = self._senders = tuple(sorted(self._by_sender))
        return cached

    def items(self) -> Tuple[Tuple[int, Bits], ...]:
        cached = self._items
        if cached is None:
            cached = self._items = tuple(sorted(self._by_sender.items()))
        return cached

    def uint_items(self) -> List[Tuple[int, int]]:
        """``(sender, payload-as-uint)`` pairs sorted by sender — the same
        accessor the fast lane's array inbox provides."""
        return [(sender, payload.to_uint()) for sender, payload in self.items()]

    def __len__(self) -> int:
        return len(self._by_sender)

    def __contains__(self, sender: int) -> bool:
        return sender in self._by_sender

    def _reset(self) -> None:
        """Drop cached views; the engine calls this when it recycles the
        underlying buffer for a new round."""
        self._senders = None
        self._items = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Inbox({self._by_sender!r})"


EMPTY_INBOX = Inbox({})


def inbox_uints(inbox: Any) -> List[Tuple[int, int]]:
    """``(sender, payload-as-uint)`` pairs sorted by sender, for either
    inbox flavour (dict-backed :class:`Inbox` or the fast lane's
    array-backed :class:`~repro.core.fastlane.FixedWidthInbox`)."""
    return inbox.uint_items()


class Outbox:
    """What one node sends in one round.

    Construct with :meth:`unicast`, :meth:`broadcast`, :meth:`silent`,
    or the bulk fixed-width constructors :meth:`fixed_width` /
    :meth:`fixed_width_map` / :meth:`broadcast_uint`; the engine
    validates the kind against the network's mode.
    """

    __slots__ = (
        "kind",
        "messages",
        "payload",
        "dests",
        "values",
        "width",
        "trusted_unique",
        "_validated_for",
    )

    def __init__(
        self,
        kind: str,
        messages: Optional[Dict[int, Bits]],
        payload: Optional[Bits],
        dests: Any = None,
        values: Any = None,
        width: int = 0,
        trusted_unique: bool = False,
    ):
        self.kind = kind
        self.messages = messages
        self.payload = payload
        self.dests = dests
        self.values = values
        self.width = width
        self.trusted_unique = trusted_unique
        # Outboxes are immutable after construction, so a fixed-width
        # outbox yielded round after round (the zero-churn pattern) is
        # vector-validated once per (network, sender), not once per
        # round.  The memo maps id(network) -> (weakref, {senders}):
        # weakly referenced so a long-lived outbox never pins a network
        # alive, and per-sender so one outbox shared by several senders
        # (also a natural zero-churn pattern) keeps every entry instead
        # of thrashing a single slot.
        self._validated_for: Any = None

    def _is_validated(self, network: Any, sender: int) -> bool:
        memo = self._validated_for
        if memo is None:
            return False
        entry = memo.get(id(network))
        return entry is not None and entry[0]() is network and sender in entry[1]

    def _mark_validated(self, network: Any, sender: int) -> None:
        memo = self._validated_for
        if memo is None:
            memo = self._validated_for = {}
        key = id(network)
        entry = memo.get(key)
        if entry is not None and entry[0]() is network:
            entry[1].add(sender)
            return
        if len(memo) >= 8:
            # Drop entries whose network is gone (ids may be reused).
            for stale in [k for k, e in memo.items() if e[0]() is None]:
                del memo[stale]
        memo[key] = (weakref.ref(network), {sender})

    @classmethod
    def unicast(cls, messages: Mapping[int, Bits]) -> "Outbox":
        return cls("unicast", dict(messages), None)

    @classmethod
    def broadcast(cls, payload: Bits) -> "Outbox":
        return cls("broadcast", None, payload)

    @classmethod
    def broadcast_uint(cls, value: int, width: int) -> "Outbox":
        """Fixed-width broadcast: write ``value`` as exactly ``width``
        bits on the blackboard.  Rounds in which every non-silent sender
        yields a fixed-width broadcast of one width are delivered
        through the numpy broadcast lane (one vector write, array-backed
        inboxes — see :mod:`repro.core.fastlane`); mixed rounds
        materialize the payload as an ordinary :class:`Bits` broadcast.
        Either way one broadcast of ``width`` bits costs ``width``."""
        from repro.core import fastlane

        coerced = fastlane.coerce_broadcast(value, width)
        return cls("bfixed", None, None, values=coerced, width=width)

    @classmethod
    def silent(cls) -> "Outbox":
        return _SILENT_OUTBOX

    @classmethod
    def fixed_width(cls, dests: Sequence[int], values: Sequence[int], width: int) -> "Outbox":
        """Bulk unicast of fixed-width unsigned-integer payloads:
        ``values[i]`` (exactly ``width`` bits on the wire) goes to
        ``dests[i]``.  Rounds in which every sender yields a fixed-width
        outbox of the same width are delivered through the numpy fast
        lane; otherwise the messages are materialized as ordinary
        ``width``-bit :class:`~repro.core.bits.Bits` unicasts."""
        from repro.core import fastlane

        d, v = fastlane.coerce_fixed(dests, values, width)
        return cls("fixed", None, None, dests=d, values=v, width=width)

    @classmethod
    def fixed_width_map(cls, messages: Mapping[int, int], width: int) -> "Outbox":
        """:meth:`fixed_width` from a ``{dest: uint}`` mapping (dict keys
        are unique by construction, so the duplicate-destination check is
        skipped; other Mapping types are copied through ``dict`` first so
        a broken ``keys()`` cannot smuggle a duplicate past it)."""
        from repro.core import fastlane

        if type(messages) is not dict:
            messages = dict(messages)
        d, v = fastlane.coerce_fixed(list(messages.keys()), list(messages.values()), width)
        out = cls("fixed", None, None, dests=d, values=v, width=width)
        out.trusted_unique = True
        return out

    def _materialize(self) -> Dict[int, Bits]:
        """A fixed-width outbox as an ordinary ``{dest: Bits}`` dict (the
        scalar fallback for sparse/mixed rounds and the legacy engine).
        Memoized in the otherwise-unused ``messages`` slot, so a reused
        outbox pays the Bits construction once, not once per round."""
        cached = self.messages
        if cached is None:
            width = self.width
            cached = self.messages = {
                int(dest): Bits(int(value), width)
                for dest, value in zip(self.dests, self.values)
            }
        return cached

    def _materialize_broadcast(self) -> Bits:
        """A fixed-width broadcast outbox's payload as :class:`Bits` (the
        scalar fallback for mixed rounds, the legacy engine, and the
        transcript).  Memoized in the otherwise-unused ``payload`` slot."""
        cached = self.payload
        if cached is None:
            cached = self.payload = Bits(self.values, self.width)
        return cached


_SILENT_OUTBOX = Outbox("silent", None, None)
