"""Immutable bit-vectors and bit-level codecs.

All messages exchanged in the congested clique are, per the paper's model,
plain bit strings whose length is charged against the bandwidth parameter
``b``.  :class:`Bits` is the message currency of the whole library: an
immutable sequence of bits with O(1) concatenation-by-int-arithmetic,
slicing, and chunking into ``b``-bit frames.

Bit order convention: index 0 is the *first* bit on the wire (stored as
the most-significant bit of the backing integer), so concatenation and
stream decoding behave like an ordinary byte stream.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.core.errors import DecodeError

__all__ = ["Bits", "BitWriter", "BitReader", "gamma_length"]


class Bits:
    """An immutable sequence of bits backed by a Python integer."""

    __slots__ = ("_value", "_length")

    def __init__(self, value: int = 0, length: int = 0) -> None:
        if length < 0:
            raise ValueError("length must be non-negative")
        if value < 0:
            raise ValueError("value must be non-negative")
        if value >> length:
            raise ValueError(f"value {value} does not fit in {length} bits")
        self._value = value
        self._length = length

    # -- constructors --------------------------------------------------

    @classmethod
    def empty(cls) -> "Bits":
        return _EMPTY

    @classmethod
    def from_uint(cls, x: int, width: int) -> "Bits":
        """Encode ``x`` as exactly ``width`` bits, most significant first."""
        if x < 0:
            raise ValueError("cannot encode a negative integer")
        if width < 0 or (width == 0 and x != 0) or x >> width:
            raise ValueError(f"{x} does not fit in {width} bits")
        return cls(x, width)

    @classmethod
    def from_bools(cls, flags: Iterable[bool]) -> "Bits":
        value = 0
        length = 0
        for flag in flags:
            value = (value << 1) | (1 if flag else 0)
            length += 1
        return cls(value, length)

    @classmethod
    def from_str(cls, text: str) -> "Bits":
        """Parse a string of '0'/'1' characters."""
        if text and set(text) - {"0", "1"}:
            raise ValueError("bit strings may only contain '0' and '1'")
        return cls(int(text, 2) if text else 0, len(text))

    @classmethod
    def zeros(cls, length: int) -> "Bits":
        return cls(0, length)

    @classmethod
    def concat(cls, parts: Iterable["Bits"]) -> "Bits":
        value = 0
        length = 0
        for part in parts:
            value = (value << len(part)) | part._value
            length += part._length
        return cls(value, length)

    @classmethod
    def from_uint_concat(cls, values: Iterable[int], width: int) -> "Bits":
        """Concatenate ``width``-bit unsigned chunks into one bit string —
        the bulk inverse of :meth:`to_uint_chunks`, equivalent to
        ``Bits.concat(Bits(v, width) for v in values)`` without the
        intermediate :class:`Bits` objects."""
        if width <= 0:
            raise ValueError("chunk width must be positive")
        value = 0
        length = 0
        for chunk in values:
            if chunk < 0 or chunk >> width:
                raise ValueError(f"chunk {chunk} does not fit in {width} bits")
            value = (value << width) | chunk
            length += width
        return cls(value, length)

    # -- accessors -----------------------------------------------------

    def to_uint(self) -> int:
        return self._value

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step != 1:
                raise ValueError("Bits slicing only supports step 1")
            if stop <= start:
                return _EMPTY
            width = stop - start
            shifted = self._value >> (self._length - stop)
            return Bits(shifted & ((1 << width) - 1), width)
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("bit index out of range")
        return (self._value >> (self._length - 1 - index)) & 1

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield (self._value >> (self._length - 1 - i)) & 1

    def __add__(self, other: "Bits") -> "Bits":
        if not isinstance(other, Bits):
            return NotImplemented
        return Bits(
            (self._value << other._length) | other._value,
            self._length + other._length,
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Bits)
            and self._length == other._length
            and self._value == other._value
        )

    def __hash__(self) -> int:
        return hash((self._value, self._length))

    def __repr__(self) -> str:
        if self._length <= 64:
            return f"Bits('{self.to_str()}')"
        return f"Bits(<{self._length} bits>)"

    def to_str(self) -> str:
        return format(self._value, f"0{self._length}b") if self._length else ""

    # -- transformations -------------------------------------------------

    def pad_to(self, length: int) -> "Bits":
        """Append zero bits on the right until ``length`` bits long."""
        if length < self._length:
            raise ValueError("cannot pad to a shorter length")
        return Bits(self._value << (length - self._length), length)

    def chunks(self, size: int) -> List["Bits"]:
        """Split into consecutive chunks of ``size`` bits; the last chunk
        keeps its natural (possibly shorter) length."""
        if size <= 0:
            raise ValueError("chunk size must be positive")
        return [self[i : i + size] for i in range(0, self._length, size)]

    def to_uint_chunks(self, width: int) -> List[int]:
        """Split into consecutive ``width``-bit unsigned integers, most
        significant chunk first; the last chunk keeps its natural
        (possibly shorter) width.  The bulk counterpart of
        ``[c.to_uint() for c in self.chunks(width)]`` — one shift/mask
        per chunk on the backing integer, no :class:`Bits` allocations —
        used by the phase layer to frame payloads for the fixed-width
        lanes."""
        if width <= 0:
            raise ValueError("chunk width must be positive")
        value = self._value
        full, rem = divmod(self._length, width)
        mask = (1 << width) - 1
        shift = self._length - width
        out = []
        for _ in range(full):
            out.append((value >> shift) & mask)
            shift -= width
        if rem:
            out.append(value & ((1 << rem) - 1))
        return out

    def popcount(self) -> int:
        return bin(self._value).count("1")


_EMPTY = Bits(0, 0)


def gamma_length(x: int) -> int:
    """Number of bits Elias-gamma coding of ``x`` (x >= 0) occupies."""
    if x < 0:
        raise ValueError("gamma coding requires x >= 0")
    return 2 * (x + 1).bit_length() - 1


class BitWriter:
    """Accumulates bits; produces a :class:`Bits` via :meth:`getvalue`."""

    __slots__ = ("_value", "_length")

    def __init__(self) -> None:
        self._value = 0
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def write_bit(self, bit: int) -> "BitWriter":
        self._value = (self._value << 1) | (1 if bit else 0)
        self._length += 1
        return self

    def write_uint(self, x: int, width: int) -> "BitWriter":
        if x < 0 or (width == 0 and x != 0) or x >> width:
            raise ValueError(f"{x} does not fit in {width} bits")
        self._value = (self._value << width) | x
        self._length += width
        return self

    def write_bits(self, bits: Bits) -> "BitWriter":
        self._value = (self._value << len(bits)) | bits.to_uint()
        self._length += len(bits)
        return self

    def write_gamma(self, x: int) -> "BitWriter":
        """Elias gamma code for x >= 0 (codes x+1 in the classic scheme)."""
        if x < 0:
            raise ValueError("gamma coding requires x >= 0")
        n = x + 1
        width = n.bit_length()
        self.write_uint(0, width - 1)
        self.write_uint(n, width)
        return self

    def getvalue(self) -> Bits:
        return Bits(self._value, self._length)


class BitReader:
    """Sequential decoder over a :class:`Bits` value."""

    __slots__ = ("_bits", "_pos")

    def __init__(self, bits: Bits) -> None:
        self._bits = bits
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._bits) - self._pos

    def read_bit(self) -> int:
        if self._pos >= len(self._bits):
            raise DecodeError("read past end of bit stream")
        bit = self._bits[self._pos]
        self._pos += 1
        return bit

    def read_uint(self, width: int) -> int:
        if width < 0:
            raise ValueError("width must be non-negative")
        if self._pos + width > len(self._bits):
            raise DecodeError("read past end of bit stream")
        chunk = self._bits[self._pos : self._pos + width]
        self._pos += width
        return chunk.to_uint()

    def read_bits(self, width: int) -> Bits:
        if self._pos + width > len(self._bits):
            raise DecodeError("read past end of bit stream")
        chunk = self._bits[self._pos : self._pos + width]
        self._pos += width
        return chunk

    def read_gamma(self) -> int:
        zeros = 0
        while self.read_bit() == 0:
            zeros += 1
            if zeros > len(self._bits):  # pragma: no cover - defensive
                raise DecodeError("malformed gamma code")
        rest = self.read_uint(zeros)
        return ((1 << zeros) | rest) - 1
