"""Batched fixed-width delivery lane for the message-passing engine.

Many congested-clique protocols spend their rounds exchanging
*fixed-width* unsigned-integer payloads: Lenzen-style routing frames,
the b-bit chunks of a transmit phase, matmul row/summary exchange,
sorted keys.  For those rounds the scalar engine path — one Python dict
write plus per-message validation for each of up to n² messages — is
pure overhead.

This module provides the bulk alternatives, one per direction of the
model:

* **Unicast lane** — a sender declares one destination vector and one
  value vector per round (:meth:`~repro.core.network.Outbox.fixed_width`);
  the engine validates the whole outbox with a handful of vectorized
  checks and delivers it with two fancy-indexed writes into an ``n × n``
  send matrix that is allocated once per run and merely masked clean
  between rounds.  Receivers read their column through an array-backed
  :class:`FixedWidthInbox` that mirrors the
  :class:`~repro.core.network.Inbox` API.
* **Broadcast lane** — a sender declares one fixed-width blackboard
  write (:meth:`~repro.core.network.Outbox.broadcast_uint`); rounds in
  which every non-silent sender broadcasts the same width are delivered
  with one n-vector write into a per-run column buffer, and receivers
  read an array-backed :class:`BroadcastInbox` (the same view for every
  receiver, minus its own row — a broadcast never echoes back to its
  writer).

Round and bit accounting is identical to the scalar path: a
``width``-bit message costs ``width`` bits, one broadcast of ``width``
bits costs ``width`` (counted once per writer, as
``RunResult.blackboard_bits`` expects), a round is a round.

Widths up to :data:`NUMERIC_WIDTH_LIMIT` (63) bits ride ``uint64``
storage; wider payloads fall back to object-dtype arrays — the same
bulk indexing, with Python ints as storage.
"""

from __future__ import annotations

import operator

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bits import Bits
from repro.core.errors import BandwidthExceededError, ProtocolError, TopologyError

__all__ = [
    "NUMERIC_WIDTH_LIMIT",
    "FixedWidthInbox",
    "FixedWidthSchedule",
    "FixedLane",
    "BroadcastInbox",
    "BroadcastLane",
    "BatchLane",
    "BatchBroadcastLane",
    "coerce_fixed",
    "coerce_broadcast",
    "validate_fixed",
    "adjacency_mask",
]

NUMERIC_WIDTH_LIMIT = 63


def _index_array(seq: Sequence[int], dtype, what: str) -> np.ndarray:
    """A 1-D sequence of *true* integers as a fresh ``dtype`` array.

    Floats (and anything else without ``__index__``) are rejected with
    :class:`ProtocolError` instead of being silently truncated the way a
    plain ``np.array(seq, dtype=...)`` cast would truncate ``1.7`` to
    ``1``."""
    if not isinstance(seq, (np.ndarray, list, tuple)):
        seq = list(seq)
    try:
        arr = np.asarray(seq)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad fixed-width {what}: {exc}") from exc
    if arr.ndim != 1:
        raise ProtocolError(f"fixed-width {what} must be a flat sequence")
    if arr.dtype.kind in "iu":
        if (
            arr.dtype.kind == "i"
            and np.issubdtype(dtype, np.unsignedinteger)
            and arr.size
            and int(arr.min()) < 0
        ):
            # astype would silently wrap -1 to 2**64-1.
            raise ProtocolError(f"fixed-width {what} must be non-negative")
        return arr.astype(dtype, copy=True)
    # Anything else (a float array, or a mixed list numpy promoted to
    # float/object): accept only exact integers, re-read from the
    # original items so promotion cannot launder 3 into 3.0.
    try:
        items = [operator.index(x) for x in seq]
    except TypeError as exc:
        raise ProtocolError(
            f"fixed-width {what} must be integers, not {exc}"
        ) from exc
    try:
        return np.array(items, dtype=dtype)
    except (TypeError, ValueError, OverflowError) as exc:
        raise ProtocolError(f"bad fixed-width {what}: {exc}") from exc


def coerce_fixed(
    dests: Sequence[int], values: Sequence[int], width: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalize a fixed-width outbox's payload into parallel arrays.

    Always copies (and freezes) the inputs: an outbox's validation is
    memoized per (network, sender), so aliasing a caller-owned array
    that is later mutated in place would let unvalidated data onto the
    wire."""
    if width < 1:
        raise ValueError("fixed-width messages need width >= 1 bit")
    dest_arr = _index_array(dests, np.intp, "destinations")
    if width <= NUMERIC_WIDTH_LIMIT:
        value_arr = _index_array(values, np.uint64, "values")
    else:
        try:
            seq = [operator.index(v) for v in values]
        except TypeError as exc:
            raise ProtocolError(
                f"fixed-width values must be integers, not {exc}"
            ) from exc
        if any(v < 0 for v in seq):
            raise ProtocolError("fixed-width values must be non-negative")
        value_arr = np.empty(len(seq), dtype=object)
        value_arr[:] = seq
    if value_arr.shape != dest_arr.shape:
        raise ProtocolError(
            f"{dest_arr.size} destinations but {value_arr.size} values"
        )
    dest_arr.flags.writeable = False
    value_arr.flags.writeable = False
    return dest_arr, value_arr


def coerce_broadcast(value: int, width: int) -> int:
    """Validate one fixed-width broadcast payload (a plain uint).

    The whole check is network-independent (only the bandwidth bound is
    left for the engine), so a broadcast outbox is fully validated at
    construction and can be reused round after round for free."""
    if width < 1:
        raise ValueError("fixed-width messages need width >= 1 bit")
    try:
        value = operator.index(value)
    except TypeError as exc:
        raise ProtocolError(
            f"broadcast_uint payload must be an integer, not {exc}"
        ) from exc
    if value < 0 or value >> width:
        raise ProtocolError(
            f"broadcast_uint payload {value} does not fit in {width} bits"
        )
    return value


def validate_fixed(
    outbox: Any,
    sender: int,
    n: int,
    bandwidth: int,
    adj_row: Optional[np.ndarray] = None,
    allowed_set: Optional[frozenset] = None,
) -> None:
    """Whole-outbox validation, vectorized; raises on any violation.

    Replaces the per-message checks of the scalar path: one range/self
    scan over the destination vector, one membership scan for CONGEST
    (``adj_row`` for bulk outboxes, ``allowed_set`` for small ones),
    one width scan over the values.
    """
    width = outbox.width
    if width > bandwidth:
        raise BandwidthExceededError(
            f"node {sender} sent {width}-bit fixed-width messages "
            f"(bandwidth {bandwidth})"
        )
    dests = outbox.dests
    if dests.size == 0:
        return
    if (dests == sender).any():
        raise TopologyError(f"node {sender} sent a message to itself")
    if int(dests.min()) < 0 or int(dests.max()) >= n:
        raise TopologyError(f"node {sender} sent to an out-of-range destination")
    if not outbox.trusted_unique and np.unique(dests).size != dests.size:
        raise ProtocolError(
            f"node {sender} listed a destination twice in a fixed-width outbox"
        )
    if adj_row is not None and not adj_row[dests].all():
        raise TopologyError(
            f"node {sender} sent to non-neighbour in CONGEST"
        )
    if allowed_set is not None:
        for dest in dests:
            if dest not in allowed_set:
                raise TopologyError(
                    f"node {sender} sent to non-neighbour {dest} in CONGEST"
                )
    values = outbox.values
    if values.dtype == object:
        if any(v < 0 or (v >> width) for v in values):
            raise ProtocolError(
                f"node {sender} sent a value that does not fit in {width} bits"
            )
    elif (values >> np.uint64(width)).any():
        raise ProtocolError(
            f"node {sender} sent a value that does not fit in {width} bits"
        )


def adjacency_mask(n: int, neighbors: Sequence[Sequence[int]]) -> np.ndarray:
    """Boolean adjacency rows for vectorized CONGEST membership checks."""
    mask = np.zeros((n, n), dtype=bool)
    for v, nbrs in enumerate(neighbors):
        if nbrs:
            mask[v, list(nbrs)] = True
    return mask


class FixedWidthInbox:
    """Array-backed inbox over one receiver's column of the send matrix.

    Mirrors the :class:`~repro.core.network.Inbox` API (``get`` /
    ``senders`` / ``items`` / ``len`` / ``in``) and adds the zero-copy
    accessors :meth:`get_uint` and :meth:`uint_items` for protocols that
    want the raw integers.  Like every inbox, it is only valid for the
    round in which it was delivered.
    """

    __slots__ = ("_values", "_present", "_width", "_senders", "_items")

    def __init__(self, values_col: np.ndarray, present_col: np.ndarray) -> None:
        self._values = values_col
        self._present = present_col
        self._width = 0
        self._senders: Optional[Tuple[int, ...]] = None
        self._items = None

    def _reset(self, width: int) -> None:
        self._width = width
        self._senders = None
        self._items = None

    @property
    def width(self) -> int:
        """Bit-width shared by every message in this inbox."""
        return self._width

    def senders(self) -> Tuple[int, ...]:
        cached = self._senders
        if cached is None:
            cached = self._senders = tuple(
                int(s) for s in np.flatnonzero(self._present)
            )
        return cached

    def items(self) -> Tuple[Tuple[int, Bits], ...]:
        cached = self._items
        if cached is None:
            width = self._width
            values = self._values
            cached = self._items = tuple(
                (s, Bits(int(values[s]), width)) for s in self.senders()
            )
        return cached

    def uint_items(self) -> List[Tuple[int, int]]:
        values = self._values
        return [(s, int(values[s])) for s in self.senders()]

    def get(self, sender: int) -> Optional[Bits]:
        if 0 <= sender < self._present.shape[0] and self._present[sender]:
            return Bits(int(self._values[sender]), self._width)
        return None

    def get_uint(self, sender: int) -> Optional[int]:
        if 0 <= sender < self._present.shape[0] and self._present[sender]:
            return int(self._values[sender])
        return None

    def __len__(self) -> int:
        return len(self.senders())

    def __contains__(self, sender: int) -> bool:
        return 0 <= sender < self._present.shape[0] and bool(self._present[sender])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FixedWidthInbox({dict(self.uint_items())!r}, width={self._width})"


class _LaneBuffers:
    """One dtype's worth of per-run matrices and receiver views."""

    __slots__ = ("values", "present", "inboxes", "touched")

    def __init__(self, n: int, dtype) -> None:
        self.values = np.zeros((n, n), dtype=dtype)
        self.present = np.zeros((n, n), dtype=bool)
        self.inboxes = [
            FixedWidthInbox(self.values[:, u], self.present[:, u])
            for u in range(n)
        ]
        self.touched: List[int] = []  # sender rows written last bulk round


class FixedLane:
    """Per-run reusable state for bulk rounds (engine internal)."""

    __slots__ = ("n", "width", "_numeric", "_object", "_active")

    def __init__(self, n: int) -> None:
        self.n = n
        self.width = 0
        self._numeric: Optional[_LaneBuffers] = None
        self._object: Optional[_LaneBuffers] = None
        self._active: Optional[_LaneBuffers] = None

    def _buffers(self, width: int) -> _LaneBuffers:
        if width <= NUMERIC_WIDTH_LIMIT:
            if self._numeric is None:
                self._numeric = _LaneBuffers(self.n, np.uint64)
            return self._numeric
        if self._object is None:
            self._object = _LaneBuffers(self.n, object)
        return self._object

    def deliver(self, senders, width: int, record=None) -> int:
        """Deliver one homogeneous bulk round; returns the bits sent.

        ``senders`` is a list of ``(node_id, outbox)`` in node order, as
        required for transcript order parity with the scalar path.
        """
        buf = self._buffers(width)
        touched = buf.touched
        if touched:
            # Zero-churn clear: mask out only the rows written last time.
            buf.present[touched] = False
            touched.clear()
        count = 0
        for sender, outbox in senders:
            dests = outbox.dests
            size = dests.size
            if not size:
                continue
            buf.values[sender, dests] = outbox.values
            buf.present[sender, dests] = True
            touched.append(sender)
            count += size
            if record is not None:
                sends = record.sends
                values = outbox.values
                for i in range(size):
                    sends.append(
                        (sender, int(dests[i]), Bits(int(values[i]), width))
                    )
        self.width = width
        self._active = buf
        return count * width

    def inbox(self, receiver: int) -> FixedWidthInbox:
        box = self._active.inboxes[receiver]
        box._reset(self.width)
        return box


class _BatchBuffers:
    """One dtype's worth of stacked per-instance matrices for replay.

    ``values[k]`` is instance ``k``'s ``n × n`` send matrix; the
    receiver-presence mask is *shared* across instances because a
    compiled replay only ever delivers rounds whose structure every
    instance matched."""

    __slots__ = ("values", "present", "inboxes", "touched")

    def __init__(self, n: int, instances: int, dtype, alloc=None) -> None:
        # The K×n×n value stack is the only allocation worth routing
        # through a zero-copy arena (shared-memory backing for sweep
        # workers); the bookkeeping arrays stay on the private heap.
        self.values = (
            np.zeros((instances, n, n), dtype=dtype)
            if alloc is None
            else alloc((instances, n, n), dtype)
        )
        self.present = np.zeros((n, n), dtype=bool)
        self.inboxes = [
            [
                FixedWidthInbox(self.values[k, :, u], self.present[:, u])
                for u in range(n)
            ]
            for k in range(instances)
        ]
        self.touched: List[int] = []  # sender rows written last bulk round


class BatchLane:
    """Replay delivery for compiled bulk rounds, K instances at a time.

    The engine hands it a :class:`~repro.core.compiled.LaneStructure`
    (precomputed flat row/column index arrays) plus one stacked
    ``K × messages`` value matrix per round; delivery is one flat
    fancy-indexed write per instance, and the shared presence mask is
    rewritten only when the structure differs from the previous bulk
    round (phases repeat one shape for many rounds, so it usually
    doesn't).  All classification, validation and accounting has already
    happened at record time.
    """

    __slots__ = (
        "n", "instances", "width", "_numeric", "_object", "_active",
        "_struct", "_alloc",
    )

    def __init__(self, n: int, instances: int, alloc=None) -> None:
        self.n = n
        self.instances = instances
        self.width = 0
        self._numeric: Optional[_BatchBuffers] = None
        self._object: Optional[_BatchBuffers] = None
        self._active: Optional[_BatchBuffers] = None
        self._struct: Any = None
        self._alloc = alloc

    def _buffers(self, width: int) -> _BatchBuffers:
        if width <= NUMERIC_WIDTH_LIMIT:
            if self._numeric is None:
                self._numeric = _BatchBuffers(
                    self.n, self.instances, np.uint64, alloc=self._alloc
                )
            return self._numeric
        if self._object is None:
            self._object = _BatchBuffers(self.n, self.instances, object)
        return self._object

    def deliver_compiled(self, struct, active: Sequence[int], stacked) -> None:
        """Deliver one compiled bulk round: ``stacked[i]`` holds the flat
        value vector of instance ``active[i]`` in structure order."""
        buf = self._buffers(struct.width)
        if self._struct is not struct or self._active is not buf:
            touched = buf.touched
            if touched:
                buf.present[touched] = False
                touched.clear()
            buf.present[struct.rows, struct.cols] = True
            touched.extend(struct.sender_ids)
            self._struct = struct
        values = buf.values
        rows = struct.rows
        cols = struct.cols
        for i, k in enumerate(active):
            values[k][rows, cols] = stacked[i]
        self.width = struct.width
        self._active = buf

    def inbox(self, instance: int, receiver: int) -> FixedWidthInbox:
        box = self._active.inboxes[instance][receiver]
        box._reset(self.width)
        return box

    def deliver_kernel(self, struct, values2d) -> None:
        """Kernel-path delivery: one stacked fancy-indexed write covers
        **all** instances at once (``values2d`` is ``K × count`` in flat
        structure order), against the same per-dtype buffers and
        presence-mask bookkeeping as :meth:`deliver_compiled`.  Pass
        ``values2d=None`` to refresh only the presence mask (an empty
        round, or a zero-churn round whose values are already in the
        buffer)."""
        buf = self._buffers(struct.width)
        if self._struct is not struct or self._active is not buf:
            touched = buf.touched
            if touched:
                buf.present[touched] = False
                touched.clear()
            buf.present[struct.rows, struct.cols] = True
            touched.extend(struct.sender_ids)
            self._struct = struct
        if values2d is not None:
            buf.values[:, struct.rows, struct.cols] = values2d
        self.width = struct.width
        self._active = buf

    def delivered(self):
        """The active ``(K × n × n values, n × n present)`` buffers —
        the raw matrices a kernel round consumes.  These are the lane's
        *live* buffers, maintained incrementally across rounds: callers
        must treat them as read-only (mutating them corrupts later
        rounds' presence bookkeeping) — anything that needs to edit a
        delivered round works on :meth:`delivered_copy`."""
        buf = self._active
        return buf.values, buf.present

    def delivered_copy(self):
        """Fresh, safely mutable copies of :meth:`delivered` — what
        fault injection and other delivered-round editors consume."""
        buf = self._active
        return buf.values.copy(), buf.present.copy()


class _BcastBatchBuffers:
    """One dtype's worth of stacked blackboard vectors for kernel
    broadcast rounds: ``values[k]`` is instance ``k``'s length-``n``
    blackboard, the writer-presence mask is shared (kernel rounds have
    one writer set for all instances by construction)."""

    __slots__ = ("values", "present", "touched")

    def __init__(self, n: int, instances: int, dtype, alloc=None) -> None:
        self.values = (
            np.zeros((instances, n), dtype=dtype)
            if alloc is None
            else alloc((instances, n), dtype)
        )
        self.present = np.zeros(n, dtype=bool)
        self.touched: List[int] = []  # writer slots filled last round


class BatchBroadcastLane:
    """Stacked blackboard delivery for kernel broadcast rounds, K
    instances at a time: one ``K × writers`` fancy write per round."""

    __slots__ = (
        "n", "instances", "width", "_numeric", "_object", "_active", "_alloc",
    )

    def __init__(self, n: int, instances: int, alloc=None) -> None:
        self.n = n
        self.instances = instances
        self.width = 0
        self._numeric: Optional[_BcastBatchBuffers] = None
        self._object: Optional[_BcastBatchBuffers] = None
        self._active: Optional[_BcastBatchBuffers] = None
        self._alloc = alloc

    def _buffers(self, width: int) -> _BcastBatchBuffers:
        if width <= NUMERIC_WIDTH_LIMIT:
            if self._numeric is None:
                self._numeric = _BcastBatchBuffers(
                    self.n, self.instances, np.uint64, alloc=self._alloc
                )
            return self._numeric
        if self._object is None:
            self._object = _BcastBatchBuffers(self.n, self.instances, object)
        return self._object

    def deliver_kernel(self, writer_ids, width: int, values2d) -> None:
        """Deliver one kernel broadcast round: ``values2d`` is
        ``K × len(writer_ids)``, one blackboard value per writer per
        instance.  ``None`` refreshes only the presence mask."""
        buf = self._buffers(width)
        touched = buf.touched
        if touched:
            buf.present[touched] = False
            touched.clear()
        buf.present[writer_ids] = True
        touched.extend(int(w) for w in writer_ids)
        if values2d is not None:
            buf.values[:, writer_ids] = values2d
        self.width = width
        self._active = buf

    def delivered(self):
        """The active ``(K × n values, n present)`` blackboard buffers
        (live, read-only — see :meth:`BatchLane.delivered`)."""
        buf = self._active
        return buf.values, buf.present

    def delivered_copy(self):
        """Fresh, safely mutable copies of :meth:`delivered`."""
        buf = self._active
        return buf.values.copy(), buf.present.copy()


class BroadcastInbox:
    """Array-backed inbox over the shared broadcast column buffer.

    All receivers of a bulk broadcast round see the *same* blackboard;
    each receiver's view only differs in masking out its own row (a
    broadcast is never echoed back to its writer).  The lane exploits
    that: the writer-id list and their outboxes are collected **once per
    round** at delivery and shared by all n views, so the sorted
    accessors cost O(#writers) per receiver with no per-element numpy
    round-trips; random access (``get`` / ``in``) reads the column
    buffer directly.  Mirrors the :class:`~repro.core.network.Inbox` API
    plus the zero-copy uint accessors, like :class:`FixedWidthInbox`.
    Like every inbox, it is only valid for the round in which it was
    delivered.
    """

    __slots__ = ("_buf", "_me", "_width", "_senders", "_items")

    def __init__(self, buf: "_BcastBuffers", me: int) -> None:
        self._buf = buf
        self._me = me
        self._width = 0
        self._senders: Optional[Tuple[int, ...]] = None
        self._items = None

    def _reset(self, width: int) -> None:
        self._width = width
        self._senders = None
        self._items = None

    @property
    def width(self) -> int:
        """Bit-width shared by every message in this inbox."""
        return self._width

    def senders(self) -> Tuple[int, ...]:
        cached = self._senders
        if cached is None:
            me = self._me
            cached = self._senders = tuple(
                s for s in self._buf.round_ids if s != me
            )
        return cached

    def items(self) -> Tuple[Tuple[int, Bits], ...]:
        cached = self._items
        if cached is None:
            me = self._me
            buf = self._buf
            # _materialize_broadcast is memoized per outbox, so the Bits
            # is built once per writer per run, not once per receiver.
            cached = self._items = tuple(
                (s, o._materialize_broadcast())
                for s, o in zip(buf.round_ids, buf.round_outboxes)
                if s != me
            )
        return cached

    def uint_items(self) -> List[Tuple[int, int]]:
        me = self._me
        buf = self._buf
        return [
            (s, o.values)
            for s, o in zip(buf.round_ids, buf.round_outboxes)
            if s != me
        ]

    def get(self, sender: int) -> Optional[Bits]:
        if sender in self:
            return Bits(int(self._buf.values[sender]), self._width)
        return None

    def get_uint(self, sender: int) -> Optional[int]:
        if sender in self:
            return int(self._buf.values[sender])
        return None

    def __len__(self) -> int:
        return len(self.senders())

    def __contains__(self, sender: int) -> bool:
        buf = self._buf
        return (
            sender != self._me
            and 0 <= sender < buf.present.shape[0]
            and bool(buf.present[sender])
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BroadcastInbox({dict(self.uint_items())!r}, width={self._width})"


class _BcastBuffers:
    """One dtype's worth of per-run broadcast vectors and receiver views."""

    __slots__ = (
        "values",
        "present",
        "inboxes",
        "touched",
        "round_ids",
        "round_outboxes",
    )

    def __init__(self, n: int, dtype) -> None:
        self.values = np.zeros(n, dtype=dtype)
        self.present = np.zeros(n, dtype=bool)
        self.inboxes = [BroadcastInbox(self, u) for u in range(n)]
        self.touched: List[int] = []  # writer slots filled last bulk round
        self.round_ids: List[int] = []  # this round's writers, node order
        self.round_outboxes: List[Any] = []  # their outboxes, same order


class BroadcastLane:
    """Per-run reusable state for bulk broadcast rounds (engine internal)."""

    __slots__ = ("n", "width", "_numeric", "_object", "_active")

    def __init__(self, n: int) -> None:
        self.n = n
        self.width = 0
        self._numeric: Optional[_BcastBuffers] = None
        self._object: Optional[_BcastBuffers] = None
        self._active: Optional[_BcastBuffers] = None

    def _buffers(self, width: int) -> _BcastBuffers:
        if width <= NUMERIC_WIDTH_LIMIT:
            if self._numeric is None:
                self._numeric = _BcastBuffers(self.n, np.uint64)
            return self._numeric
        if self._object is None:
            self._object = _BcastBuffers(self.n, object)
        return self._object

    def deliver(self, senders, width: int, record=None) -> int:
        """Deliver one homogeneous broadcast round; returns the bits
        written to the blackboard (``width`` per writer, counted once).

        ``senders`` is a list of ``(node_id, outbox)`` in node order, as
        required for sorted-view and transcript order parity with the
        scalar path.
        """
        buf = self._buffers(width)
        touched = buf.touched
        if touched:
            # Zero-churn clear: mask out only last round's writer slots.
            buf.present[touched] = False
            touched.clear()
        ids = [s for s, _ in senders]
        outboxes = [o for _, o in senders]
        # One n-vector write into the per-run column buffer.
        buf.values[ids] = [o.values for o in outboxes]
        buf.present[ids] = True
        touched.extend(ids)
        buf.round_ids = ids
        buf.round_outboxes = outboxes
        if record is not None:
            sends = record.sends
            for sender, outbox in senders:
                # A broadcast is recorded once, with receiver=None.
                sends.append((sender, None, outbox._materialize_broadcast()))
        self.width = width
        self._active = buf
        return len(ids) * width

    def inbox(self, receiver: int) -> BroadcastInbox:
        box = self._active.inboxes[receiver]
        box._reset(self.width)
        return box


class FixedWidthSchedule:
    """Protocol-facing declaration of a fixed-width exchange.

    Protocols that send ``width``-bit uints build their outboxes through
    a schedule instance and decode inboxes with :meth:`uints`, which
    works for both inbox flavours (so the same program runs unmodified
    on the legacy engine and in mixed rounds)::

        schedule = FixedWidthSchedule(width=32)

        def program(ctx):
            inbox = yield schedule.outbox(dests, values)
            for sender, value in schedule.uints(inbox):
                ...
    """

    __slots__ = ("width",)

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError("fixed-width messages need width >= 1 bit")
        self.width = width

    def outbox(self, dests: Sequence[int], values: Sequence[int]):
        from repro.core.network import Outbox

        return Outbox.fixed_width(dests, values, self.width)

    def outbox_map(self, messages: Dict[int, int]):
        from repro.core.network import Outbox

        return Outbox.fixed_width_map(messages, self.width)

    def broadcast_outbox(self, value: int):
        from repro.core.network import Outbox

        return Outbox.broadcast_uint(value, self.width)

    @staticmethod
    def uints(inbox: Any) -> List[Tuple[int, int]]:
        from repro.core.network import inbox_uints

        return inbox_uints(inbox)
