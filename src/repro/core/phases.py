"""Phase layer: long logical messages over ``b``-bit rounds.

Most algorithms in the paper are described in terms of logical messages
much longer than the bandwidth — e.g. the Becker et al. reconstruction
broadcasts ``O(k log n)`` bits per node, "divided into chunks of b bits
each, broadcast over O(k log n / b) rounds" (Theorem 7).  This module
implements that chunking *honestly*: a phase really is executed as a
sequence of b-bit frames on the engine, so round counts reported by
:class:`~repro.core.network.RunResult` include fragmentation cost.

Phase lengths depend only on *public* parameters (a globally known upper
bound on payload length), exactly as in the paper: all nodes agree on the
number of rounds a phase takes without communicating.

The helpers here are sub-generators meant to be driven with ``yield
from`` inside a node program::

    def program(ctx):
        got = yield from transmit_broadcast(ctx, my_bits, max_bits=limit)
        ...

Obliviousness
-------------

Phases are structure-oblivious building blocks: a transmit phase always
lasts ``phase_length(max_bits, b)`` rounds of exactly ``b``-bit frames,
so its round/width structure is fixed by the public parameters.  The
*sender set* is the one input-dependent degree of freedom —
``transmit_unicast``'s destination keys and ``transmit_broadcast``'s
``payload is None`` choice.  A program composed of phases whose sender
sets are input-independent (everyone transmits, or who-transmits is
derived from public data) qualifies for
:func:`~repro.core.compiled.mark_oblivious`: repeated runs then replay a
compiled schedule instead of re-classifying every frame round.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.bits import BitReader, Bits, BitWriter
from repro.core.network import Context, Outbox, inbox_uints

__all__ = [
    "header_width",
    "phase_length",
    "transmit_unicast",
    "transmit_broadcast",
    "idle",
]


def header_width(max_bits: int) -> int:
    """Width of the fixed-size length header for payloads of at most
    ``max_bits`` bits."""
    if max_bits < 0:
        raise ValueError("max_bits must be non-negative")
    return max(1, max_bits.bit_length())


def phase_length(max_bits: int, bandwidth: int) -> int:
    """Number of rounds a transmit phase takes: ceil((header+max)/b)."""
    total = header_width(max_bits) + max_bits
    return -(-total // bandwidth)


def _frame_payload(payload: Bits, max_bits: int, rounds: int, bandwidth: int) -> list:
    if len(payload) > max_bits:
        raise ValueError(
            f"payload of {len(payload)} bits exceeds declared max {max_bits}"
        )
    writer = BitWriter()
    writer.write_uint(len(payload), header_width(max_bits))
    writer.write_bits(payload)
    padded = writer.getvalue().pad_to(rounds * bandwidth)
    return padded.chunks(bandwidth)


def _parse_concat(stream: Bits, max_bits: int) -> Bits:
    reader = BitReader(stream)
    length = reader.read_uint(header_width(max_bits))
    return reader.read_bits(length)


def transmit_unicast(
    ctx: Context,
    payloads: Mapping[int, Bits],
    max_bits: int,
):
    """Send each ``payloads[dest]`` (each at most ``max_bits`` bits) to its
    destination over one globally scheduled phase; return a dict mapping
    each sender that transmitted to us to its reassembled payload.

    Every frame of the phase is exactly ``b`` bits (the payload is
    padded to a whole number of frames), so the exchange rides the
    engine's fixed-width fast lane."""
    rounds = phase_length(max_bits, ctx.bandwidth)
    bandwidth = ctx.bandwidth
    framed = {
        dest: [frame.to_uint() for frame in _frame_payload(payload, max_bits, rounds, bandwidth)]
        for dest, payload in payloads.items()
    }
    received: Dict[int, int] = {}
    counts: Dict[int, int] = {}
    for r in range(rounds):
        outbox = (
            Outbox.fixed_width_map(
                {dest: frames[r] for dest, frames in framed.items()}, bandwidth
            )
            if framed
            else Outbox.silent()
        )
        inbox = yield outbox
        for sender, value in inbox_uints(inbox):
            received[sender] = (received.get(sender, 0) << bandwidth) | value
            counts[sender] = counts.get(sender, 0) + 1
    return {
        sender: _parse_concat(Bits(stream, rounds * bandwidth), max_bits)
        for sender, stream in received.items()
        if counts[sender] == rounds
    }


def transmit_broadcast(
    ctx: Context,
    payload: Optional[Bits],
    max_bits: int,
):
    """Broadcast ``payload`` (or stay silent if ``None``) over one phase;
    return a dict mapping every broadcasting node to its payload.

    Every frame of the phase is exactly ``b`` bits (the payload is
    padded to a whole number of frames), so the exchange rides the
    engine's broadcast bulk lane."""
    rounds = phase_length(max_bits, ctx.bandwidth)
    bandwidth = ctx.bandwidth
    frames = (
        None
        if payload is None
        else [
            frame.to_uint()
            for frame in _frame_payload(payload, max_bits, rounds, bandwidth)
        ]
    )
    received: Dict[int, int] = {}
    counts: Dict[int, int] = {}
    for r in range(rounds):
        outbox = (
            Outbox.silent()
            if frames is None
            else Outbox.broadcast_uint(frames[r], bandwidth)
        )
        inbox = yield outbox
        for sender, value in inbox_uints(inbox):
            received[sender] = (received.get(sender, 0) << bandwidth) | value
            counts[sender] = counts.get(sender, 0) + 1
    return {
        sender: _parse_concat(Bits(stream, rounds * bandwidth), max_bits)
        for sender, stream in received.items()
        if counts[sender] == rounds
    }


def idle(rounds: int):
    """Stay silent (but synchronized) for ``rounds`` rounds."""
    for _ in range(rounds):
        yield Outbox.silent()
