"""Phase layer: long logical messages over ``b``-bit rounds.

Most algorithms in the paper are described in terms of logical messages
much longer than the bandwidth — e.g. the Becker et al. reconstruction
broadcasts ``O(k log n)`` bits per node, "divided into chunks of b bits
each, broadcast over O(k log n / b) rounds" (Theorem 7).  This module
implements that chunking *honestly*: a phase really is executed as a
sequence of b-bit frames on the engine, so round counts reported by
:class:`~repro.core.network.RunResult` include fragmentation cost.

Phase lengths depend only on *public* parameters (a globally known upper
bound on payload length), exactly as in the paper: all nodes agree on the
number of rounds a phase takes without communicating.

The helpers here are sub-generators meant to be driven with ``yield
from`` inside a node program::

    def program(ctx):
        got = yield from transmit_broadcast(ctx, my_bits, max_bits=limit)
        ...

Obliviousness
-------------

Phases are structure-oblivious building blocks: a transmit phase always
lasts ``phase_length(max_bits, b)`` rounds of exactly ``b``-bit frames,
so its round/width structure is fixed by the public parameters.  The
*sender set* is the one input-dependent degree of freedom —
``transmit_unicast``'s destination keys and ``transmit_broadcast``'s
``payload is None`` choice.  A program composed of phases whose sender
sets are input-independent (everyone transmits, or who-transmits is
derived from public data) qualifies for
:func:`~repro.core.compiled.mark_oblivious`: repeated runs then replay a
compiled schedule instead of re-classifying every frame round.

Whether a composed program actually qualifies is checkable *before* the
first recording run: the static verifier
(``python -m repro.analysis``, :mod:`repro.analysis.oblivious`) traces
the program's round structure over perturbed inputs and seed variants
and refutes a wrong ``mark_oblivious`` declaration with the exact
offending round — the same deviation the fast engine would otherwise
discover at runtime via schedule eviction
(:class:`~repro.core.errors.ReplayEvictionWarning`).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.core.bits import BitReader, Bits, BitWriter
from repro.core.errors import DecodeError
from repro.core.network import Context, Outbox, inbox_uints

__all__ = [
    "header_width",
    "phase_length",
    "transmit_unicast",
    "transmit_broadcast",
    "transmit_unicast_acked",
    "transmit_broadcast_redundant",
    "idle",
    "kernel_transmit_unicast",
    "kernel_transmit_broadcast",
    "transmit_unicast_kernel_program",
    "transmit_broadcast_kernel_program",
]


def header_width(max_bits: int) -> int:
    """Width of the fixed-size length header for payloads of at most
    ``max_bits`` bits."""
    if max_bits < 0:
        raise ValueError("max_bits must be non-negative")
    return max(1, max_bits.bit_length())


def phase_length(max_bits: int, bandwidth: int) -> int:
    """Number of rounds a transmit phase takes: ceil((header+max)/b)."""
    total = header_width(max_bits) + max_bits
    return -(-total // bandwidth)


def _frame_payload(payload: Bits, max_bits: int, rounds: int, bandwidth: int) -> list:
    """Length header + payload, padded to whole frames, as a list of
    ``rounds`` frame uints (each exactly ``bandwidth`` bits wide)."""
    if len(payload) > max_bits:
        raise ValueError(
            f"payload of {len(payload)} bits exceeds declared max {max_bits}"
        )
    writer = BitWriter()
    writer.write_uint(len(payload), header_width(max_bits))
    writer.write_bits(payload)
    padded = writer.getvalue().pad_to(rounds * bandwidth)
    return padded.to_uint_chunks(bandwidth)


def _parse_concat(stream: Bits, max_bits: int) -> Bits:
    reader = BitReader(stream)
    length = reader.read_uint(header_width(max_bits))
    return reader.read_bits(length)


def transmit_unicast(
    ctx: Context,
    payloads: Mapping[int, Bits],
    max_bits: int,
):
    """Send each ``payloads[dest]`` (each at most ``max_bits`` bits) to its
    destination over one globally scheduled phase; return a dict mapping
    each sender that transmitted to us to its reassembled payload.

    Every frame of the phase is exactly ``b`` bits (the payload is
    padded to a whole number of frames), so the exchange rides the
    engine's fixed-width fast lane."""
    rounds = phase_length(max_bits, ctx.bandwidth)
    bandwidth = ctx.bandwidth
    framed = {
        dest: _frame_payload(payload, max_bits, rounds, bandwidth)
        for dest, payload in payloads.items()
    }
    received: Dict[int, list] = {}
    for r in range(rounds):
        outbox = (
            Outbox.fixed_width_map(
                {dest: frames[r] for dest, frames in framed.items()}, bandwidth
            )
            if framed
            else Outbox.silent()
        )
        inbox = yield outbox
        for sender, value in inbox_uints(inbox):
            received.setdefault(sender, []).append(value)
    return {
        sender: _parse_concat(Bits.from_uint_concat(frames, bandwidth), max_bits)
        for sender, frames in received.items()
        if len(frames) == rounds
    }


def transmit_broadcast(
    ctx: Context,
    payload: Optional[Bits],
    max_bits: int,
):
    """Broadcast ``payload`` (or stay silent if ``None``) over one phase;
    return a dict mapping every broadcasting node to its payload.

    Every frame of the phase is exactly ``b`` bits (the payload is
    padded to a whole number of frames), so the exchange rides the
    engine's broadcast bulk lane."""
    rounds = phase_length(max_bits, ctx.bandwidth)
    bandwidth = ctx.bandwidth
    frames = (
        None
        if payload is None
        else _frame_payload(payload, max_bits, rounds, bandwidth)
    )
    received: Dict[int, list] = {}
    for r in range(rounds):
        outbox = (
            Outbox.silent()
            if frames is None
            else Outbox.broadcast_uint(frames[r], bandwidth)
        )
        inbox = yield outbox
        for sender, value in inbox_uints(inbox):
            received.setdefault(sender, []).append(value)
    return {
        sender: _parse_concat(Bits.from_uint_concat(chunks, bandwidth), max_bits)
        for sender, chunks in received.items()
        if len(chunks) == rounds
    }


def idle(rounds: int):
    """Stay silent (but synchronized) for ``rounds`` rounds."""
    for _ in range(rounds):
        yield Outbox.silent()


# -- resilient form ------------------------------------------------------
#
# The wrappers below buy fault tolerance with *bounded, public* extra
# rounds: every node agrees on the schedule (number of attempts /
# copies) without communicating, so the protocols stay synchronous and
# the engines' round accounting stays honest — retransmissions and
# redundant copies are charged like any other send.  They are **not**
# oblivious: which links carry traffic in later attempts depends on
# which earlier deliveries were lost, so do not wrap programs built on
# them with :func:`~repro.core.compiled.mark_oblivious`.


def transmit_unicast_acked(
    ctx: Context,
    payloads: Mapping[int, Bits],
    max_bits: int,
    attempts: int = 2,
):
    """:func:`transmit_unicast` hardened against message *loss*: up to
    ``attempts`` rounds of (transmit phase + one 1-bit ack round), each
    attempt retransmitting only the payloads whose receivers have not
    acknowledged them yet.

    Receivers acknowledge every sender they have heard from so far (not
    just this attempt), so a lost *ack* merely costs one redundant
    retransmission.  Returns the reassembled ``{sender: payload}`` dict
    like the plain phase; a payload dropped in every attempt is simply
    absent.  Corruption is not detected here — a flipped bit is
    reassembled and acknowledged like any payload; pair with
    redundant sending or validators when corruption is in the fault
    model.  Costs at most ``attempts * (phase_length(max_bits, b) + 1)``
    rounds, identical on every node.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    received: Dict[int, Bits] = {}
    remaining = dict(payloads)
    for _ in range(attempts):
        got = yield from transmit_unicast(ctx, remaining, max_bits)
        for sender, payload in got.items():
            # First delivery wins: a retransmission of something we
            # already reassembled (its ack was lost) changes nothing.
            received.setdefault(sender, payload)
        acks = {sender: 1 for sender in received}
        inbox = yield (
            Outbox.fixed_width_map(acks, 1) if acks else Outbox.silent()
        )
        acked = {sender for sender, value in inbox_uints(inbox) if value == 1}
        remaining = {
            dest: payload
            for dest, payload in remaining.items()
            if dest not in acked
        }
    return received


def transmit_broadcast_redundant(
    ctx: Context,
    payload: Optional[Bits],
    max_bits: int,
    copies: int = 3,
):
    """:func:`transmit_broadcast` hardened against *corruption* (and,
    with enough copies, loss): the payload is broadcast ``copies`` times
    and each receiver keeps, per sender, the majority value among the
    copies that arrived.

    Ties (and the no-majority case) resolve deterministically to the
    smallest ``(length, value)`` candidate, so all receivers of the same
    copies agree.  With at most ``floor((copies-1)/2)`` of a sender's
    copies corrupted, the true payload wins the vote outright.  A copy
    whose corrupted length header no longer parses is discarded rather
    than allowed to abort the phase (the strict single-shot
    :func:`transmit_broadcast` raises there — redundancy exists exactly
    so one bad copy is survivable).  Costs
    ``copies * phase_length(max_bits, b)`` rounds.
    """
    if copies < 1:
        raise ValueError("copies must be at least 1")
    rounds = phase_length(max_bits, ctx.bandwidth)
    bandwidth = ctx.bandwidth
    frames = (
        None
        if payload is None
        else _frame_payload(payload, max_bits, rounds, bandwidth)
    )
    votes: Dict[int, Dict[Tuple[int, int], int]] = {}
    for _ in range(copies):
        received: Dict[int, list] = {}
        for r in range(rounds):
            outbox = (
                Outbox.silent()
                if frames is None
                else Outbox.broadcast_uint(frames[r], bandwidth)
            )
            inbox = yield outbox
            for sender, value in inbox_uints(inbox):
                received.setdefault(sender, []).append(value)
        for sender, chunks in received.items():
            if len(chunks) != rounds:
                continue
            try:
                copy = _parse_concat(
                    Bits.from_uint_concat(chunks, bandwidth), max_bits
                )
            except DecodeError:
                continue
            key = (len(copy), copy.to_uint())
            counts = votes.setdefault(sender, {})
            counts[key] = counts.get(key, 0) + 1
    result: Dict[int, Bits] = {}
    for sender, counts in votes.items():
        best = max(counts.values())
        length, value = min(key for key, c in counts.items() if c == best)
        result[sender] = Bits(value, length)
    return result


# -- kernel form --------------------------------------------------------
#
# The kernel counterparts below declare the phase structure to a
# ``KernelBuilder`` (repro.core.kernels) so a whole transmit phase runs
# as one numpy scatter/gather per round with zero generator steps.  The
# sender set — the one input-dependent degree of freedom of the
# generator phases — becomes an explicit public parameter (``links`` /
# ``writers``), which is exactly the obliviousness contract the
# generator docstring above describes.  Equivalence suites pin the two
# forms byte-for-byte.


def _require_bandwidth(builder) -> int:
    if builder.bandwidth is None:
        raise ValueError(
            "phase kernels need a KernelBuilder with a declared bandwidth "
            "(the phase length depends on it)"
        )
    return builder.bandwidth


def kernel_transmit_unicast(builder, links, max_bits: int, get_payloads, set_result) -> None:
    """Append one unicast transmit phase to ``builder``.

    ``links`` is the public list of ``(src, dst)`` pairs that carry a
    payload.  At phase start ``get_payloads(state)`` must return one
    ``{(src, dst): Bits}`` map per instance (every declared link
    present, each payload at most ``max_bits`` bits); when the phase's
    frames have all been delivered, ``set_result(state, received)`` is
    called with ``received[k][v]`` the ``{src: Bits}`` dict node ``v``
    reassembled in instance ``k`` — the same value the generator
    :func:`transmit_unicast` returns.
    """
    import numpy as np

    bandwidth = _require_bandwidth(builder)
    rounds = phase_length(max_bits, bandwidth)
    by_src: Dict[int, list] = {}
    for src, dst in links:
        by_src.setdefault(int(src), []).append(int(dst))
    pairs = sorted((src, dests) for src, dests in by_src.items())
    # Flat structure order: ascending sender, declared dest order.
    flat_links = [(src, dst) for src, dests in pairs for dst in dests]
    count = len(flat_links)
    is_object = bandwidth > 63
    key = builder.fresh_key("transmit_unicast")

    def start(state):
        payload_maps = get_payloads(state)
        instances = len(payload_maps)
        frames = np.empty(
            (rounds, instances, count),
            dtype=object if is_object else np.uint64,
        )
        for k, payloads in enumerate(payload_maps):
            for j, link in enumerate(flat_links):
                frames[:, k, j] = _frame_payload(
                    payloads[link], max_bits, rounds, bandwidth
                )
        state[key] = {"frames": frames, "got": []}

    builder.before(start)
    for r in range(rounds):

        def send(state, _r=r):
            return state[key]["frames"][_r]

        def recv(state, inbox):
            state[key]["got"].append(inbox.gather())

        builder.unicast_round(pairs, bandwidth, send, recv)

    def done(state):
        got = state.pop(key)["got"]
        instances = got[0].shape[0] if got else len(get_payloads(state))
        received = [
            [dict() for _ in range(builder.n)] for _ in range(instances)
        ]
        for j, (src, dst) in enumerate(flat_links):
            for k in range(instances):
                stream = Bits.from_uint_concat(
                    (int(got[r][k, j]) for r in range(rounds)), bandwidth
                )
                received[k][dst][src] = _parse_concat(stream, max_bits)
        set_result(state, received)

    builder.before(done)


def kernel_transmit_broadcast(builder, writers, max_bits: int, get_payloads, set_result) -> None:
    """Append one blackboard transmit phase to ``builder``.

    ``writers`` is the public list of broadcasting nodes.
    ``get_payloads(state)`` must return one ``{writer: Bits}`` map per
    instance; ``set_result(state, received)`` gets ``received[k][v]``
    as the ``{writer: Bits}`` dict node ``v`` hears (its own broadcast
    excluded, as on the engine) — the generator
    :func:`transmit_broadcast` return value.
    """
    import numpy as np

    bandwidth = _require_bandwidth(builder)
    rounds = phase_length(max_bits, bandwidth)
    writer_list = sorted(int(w) for w in writers)
    count = len(writer_list)
    is_object = bandwidth > 63
    key = builder.fresh_key("transmit_broadcast")

    def start(state):
        payload_maps = get_payloads(state)
        instances = len(payload_maps)
        frames = np.empty(
            (rounds, instances, count),
            dtype=object if is_object else np.uint64,
        )
        for k, payloads in enumerate(payload_maps):
            for j, writer in enumerate(writer_list):
                frames[:, k, j] = _frame_payload(
                    payloads[writer], max_bits, rounds, bandwidth
                )
        state[key] = {"frames": frames, "got": []}

    builder.before(start)
    for r in range(rounds):

        def send(state, _r=r):
            return state[key]["frames"][_r]

        def recv(state, inbox):
            state[key]["got"].append(inbox.gather())

        builder.broadcast_round(writer_list, bandwidth, send, recv)

    def done(state):
        got = state.pop(key)["got"]
        instances = got[0].shape[0] if got else len(get_payloads(state))
        payloads = {}
        for j, writer in enumerate(writer_list):
            for k in range(instances):
                stream = Bits.from_uint_concat(
                    (int(got[r][k, j]) for r in range(rounds)), bandwidth
                )
                payloads[(k, writer)] = _parse_concat(stream, max_bits)
        received = [
            [
                {
                    w: payloads[(k, w)]
                    for w in writer_list
                    if w != v
                }
                for v in range(builder.n)
            ]
            for k in range(instances)
        ]
        set_result(state, received)

    builder.before(done)


def transmit_unicast_kernel_program(n: int, bandwidth: int, links, max_bits: int):
    """A complete kernel program executing one unicast transmit phase.

    The kernel twin of running the generator phase as a whole program:
    node ``v``'s input is its ``{dst: Bits}`` payload map (``None`` for
    no traffic — but the union of keys must equal the public ``links``),
    its output the ``{src: Bits}`` dict of reassembled payloads.
    """
    from repro.core.kernels import KernelBuilder
    from repro.core.network import Mode

    builder = KernelBuilder(n, Mode.UNICAST, bandwidth=bandwidth)

    def init(state, kctx):
        state["inputs"] = kctx.inputs_list

    builder.on_init(init)

    def get_payloads(state):
        maps = []
        for inputs in state["inputs"]:
            payloads = {}
            if inputs is not None:
                for src in range(n):
                    for dst, payload in (inputs[src] or {}).items():
                        payloads[(src, dst)] = payload
            maps.append(payloads)
        return maps

    def set_result(state, received):
        state["out"] = received

    kernel_transmit_unicast(builder, links, max_bits, get_payloads, set_result)
    return builder.build(
        lambda state, kctx: state["out"], name="transmit_unicast"
    )


def transmit_broadcast_kernel_program(n: int, bandwidth: int, writers, max_bits: int):
    """A complete kernel program executing one blackboard transmit
    phase: node ``v``'s input is its payload :class:`Bits` (nodes not in
    the public ``writers`` list pass ``None``), its output the
    ``{writer: Bits}`` dict it heard."""
    from repro.core.kernels import KernelBuilder
    from repro.core.network import Mode

    builder = KernelBuilder(n, Mode.BROADCAST, bandwidth=bandwidth)

    def init(state, kctx):
        state["inputs"] = kctx.inputs_list

    builder.on_init(init)

    def get_payloads(state):
        return [
            {w: inputs[w] for w in writers}
            for inputs in state["inputs"]
        ]

    def set_result(state, received):
        state["out"] = received

    kernel_transmit_broadcast(builder, writers, max_bits, get_payloads, set_result)
    return builder.build(
        lambda state, kctx: state["out"], name="transmit_broadcast"
    )
