"""Compiled round schedules: record a protocol's structure once, replay
it payload-only.

The paper's protocols are *oblivious*: which node sends how many bits to
whom in each round depends only on ``n`` and the protocol's public
parameters (a routing schedule, a phase length, a circuit plan) — never
on the inputs.  Yet every :meth:`~repro.core.network.Network.run`
re-classifies each round (lane vs. scalar), re-validates every
fixed-width outbox, and redoes the bit accounting for a structure that
is identical run after run.  Benchmarks and lower-bound experiments that
evaluate a protocol over many instances or seeds pay that cost per
trial.

This module supplies the compilation layer:

* :func:`mark_oblivious` declares a node program oblivious.  The first
  ``run`` of a marked program records a :class:`CompiledSchedule` (one
  :class:`LaneStructure` or broadcast/scalar stub per round, plus the
  bit totals), cached on the network keyed by the declaration.
* Subsequent runs **replay**: each round is checked against the compiled
  structure with a cheap structural comparison (same senders, widths,
  destination vectors) and delivered through precomputed flat index
  arrays — skipping outbox classification, ``validate_fixed``, and the
  accounting arithmetic.  A round that deviates structurally aborts the
  replay and the engine falls back to full execution (and re-records).
* :meth:`Network.run_many` executes K instances against one compiled
  schedule in lockstep, with stacked ``K×n`` payload matrices delivered
  per round through :class:`~repro.core.fastlane.BatchLane`.
* :class:`BatchRunner` sweeps an inputs list through ``run_many`` with
  optional process-pool fan-out.

A program may be declared oblivious only if its communication structure
is input-independent and it is free of side effects (a deviating replay
is re-executed from scratch).  Replay skips per-message validation; the
structural check still pins senders, widths and destination vectors to
the recorded (validated) schedule, so only programs whose *structure*
silently drifts between runs lose validation coverage — and those are
exactly the runs the deviation check demotes to full execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "OBLIVIOUS_ATTR",
    "OBLIVIOUS_INFO_ATTR",
    "SCHEDULE_DIGEST_ATTR",
    "ObliviousInfo",
    "mark_oblivious",
    "oblivious_key",
    "oblivious_info",
    "declare_schedule_digest",
    "schedule_digest_parts",
    "describe_program",
    "LaneStructure",
    "CompiledSchedule",
    "ScheduleRecorder",
    "BatchRunner",
    "LANE",
    "BCAST",
    "SCALAR",
]

#: Attribute set on a node program by :func:`mark_oblivious`.
OBLIVIOUS_ATTR = "__oblivious_key__"

#: Attribute holding the :class:`ObliviousInfo` for a marked program.
OBLIVIOUS_INFO_ATTR = "__oblivious_info__"

#: Attribute holding the *cross-process stable* digest parts declared
#: via :func:`declare_schedule_digest`.
SCHEDULE_DIGEST_ATTR = "__schedule_digest_parts__"


@dataclass(frozen=True)
class ObliviousInfo:
    """Introspectable identity of a program declared oblivious.

    Captured by :func:`mark_oblivious` at declaration time so the static
    analyzer (:mod:`repro.analysis`) and the replay-eviction path can
    name the exact program — its function name and declaring
    module/line — instead of a bare callable repr.
    """

    name: str
    module: str
    line: int

    def describe(self) -> str:
        return f"{self.name} ({self.module}:{self.line})"

# Round kinds in a compiled schedule.
LANE = 0    # homogeneous fixed-width unicast round (bulk lane)
BCAST = 1   # homogeneous fixed-width broadcast round
SCALAR = 2  # anything else: replayed through the ordinary scalar path


def mark_oblivious(program: Callable, *key_parts: Any) -> Callable:
    """Declare ``program``'s round structure input-independent.

    With no ``key_parts`` the schedule cache is keyed by the program
    object itself — reuse the same program object across runs to hit the
    cache.  Pass explicit parts (protocol name, ``id(plan)``, params) to
    share one compiled schedule across closures built from the same
    public data.  Keys are hints: a wrong key is caught by the per-round
    structural check and demoted to full execution, it cannot corrupt
    results.  Returns ``program`` for chaining.
    """
    setattr(program, OBLIVIOUS_ATTR, key_parts if key_parts else (program,))
    code = getattr(program, "__code__", None)
    setattr(
        program,
        OBLIVIOUS_INFO_ATTR,
        ObliviousInfo(
            name=getattr(program, "__qualname__", None)
            or getattr(program, "__name__", repr(program)),
            module=getattr(program, "__module__", None) or "<unknown>",
            line=code.co_firstlineno if code is not None else 0,
        ),
    )
    return program


def oblivious_key(program: Any) -> Optional[Tuple[Any, ...]]:
    """The cache key declared via :func:`mark_oblivious`, or ``None``."""
    return getattr(program, OBLIVIOUS_ATTR, None)


def oblivious_info(program: Any) -> Optional[ObliviousInfo]:
    """The :class:`ObliviousInfo` attached by :func:`mark_oblivious`, or
    ``None`` for undeclared programs."""
    return getattr(program, OBLIVIOUS_INFO_ATTR, None)


def declare_schedule_digest(program: Callable, *parts: Any) -> Callable:
    """Declare content-derived identity for the *persistent* schedule cache.

    The in-process replay cache (:func:`mark_oblivious`) may key on
    ``id(...)`` of public objects — cheap and correct within one
    process.  The on-disk cache
    (:mod:`repro.core.engine.schedule_cache`) is shared across pool
    workers, so its key must be stable across processes: ``parts`` must
    be derived from the program's *content* (schedule bytes, plan
    structure, parameters), never from object identity.  Programs
    without a declaration are simply not persisted — the in-memory path
    is unaffected.  Like the oblivious key, this is a hint: a stale or
    colliding digest is caught by the loader's key-description check and
    by the per-round replay comparison, so it can cost a re-record but
    never corrupt results.  Returns ``program`` for chaining.
    """
    setattr(program, SCHEDULE_DIGEST_ATTR, parts)
    return program


def schedule_digest_parts(program: Any) -> Optional[Tuple[Any, ...]]:
    """Parts declared via :func:`declare_schedule_digest`, or ``None``."""
    return getattr(program, SCHEDULE_DIGEST_ATTR, None)


def describe_program(program: Any) -> str:
    """A human-readable identity for ``program`` in diagnostics: the
    :class:`ObliviousInfo` description when the program was declared via
    :func:`mark_oblivious`, the function's qualified name and module
    otherwise, a plain repr as the last resort (kernel programs report
    their declared name)."""
    info = oblivious_info(program)
    if info is not None:
        return info.describe()
    if getattr(program, "is_kernel_program", False):
        return f"kernel program {getattr(program, 'name', '?')!r}"
    name = getattr(program, "__qualname__", None) or getattr(
        program, "__name__", None
    )
    if name is not None:
        module = getattr(program, "__module__", None) or "<unknown>"
        code = getattr(program, "__code__", None)
        line = f":{code.co_firstlineno}" if code is not None else ""
        return f"{name} ({module}{line})"
    return repr(program)


class LaneStructure:
    """One distinct bulk-round shape: who sends how much to whom.

    Built from ``(sender, dests-array)`` pairs in node order — the
    recorder derives them from a round's fixed-width outboxes, the
    kernel layer (:mod:`repro.core.kernels`) declares them directly.
    Structures are deduplicated at record time (phases repeat one shape
    for many rounds), so replay can skip the receiver-presence rewrite
    whenever consecutive rounds share a structure, and memory stays
    proportional to the number of *distinct* shapes.

    ``widths`` is ``None`` for homogeneous rounds (every message is
    ``width`` bits — the only shape the outbox lane produces); kernel
    rounds may carry a flat per-message width vector instead, with
    ``width`` then the maximum (it selects the storage dtype).
    """

    __slots__ = (
        "width",
        "widths",
        "entries",
        "sender_ids",
        "rows",
        "cols",
        "count",
        "slices",
    )

    def __init__(
        self,
        width: int,
        pairs: Sequence[Tuple[int, Any]],
        widths: Any = None,
    ) -> None:
        # Deferred so importing repro.core stays numpy-free until a
        # schedule is actually recorded.
        import numpy as np

        self.width = width
        self.widths = widths
        # (sender, dests, size) per non-silent sender, in node order.
        self.entries: Tuple[Tuple[int, Any, int], ...] = tuple(
            (v, dests, dests.size) for v, dests in pairs
        )
        self.sender_ids: List[int] = [v for v, _ in pairs]
        dests_arrays = [dests for _, dests in pairs if dests.size]
        sizes = [dests.size for _, dests in pairs]
        self.cols = (
            np.concatenate(dests_arrays)
            if dests_arrays
            else np.empty(0, dtype=np.intp)
        )
        self.rows = np.repeat(
            np.asarray(self.sender_ids, dtype=np.intp), sizes
        )
        self.count = int(self.cols.size)
        # Flat [start, stop) per entry, for filling stacked value rows.
        slices = []
        offset = 0
        for size in sizes:
            slices.append((offset, offset + size))
            offset += size
        self.slices: Tuple[Tuple[int, int], ...] = tuple(slices)

    def bits(self) -> int:
        """Total bits one delivery of this structure costs."""
        if self.widths is None:
            return self.count * self.width
        return int(self.widths.sum())


class CompiledSchedule:
    """The recorded structure of one protocol execution.

    ``rounds[r]`` is ``(kind, payload, round_bits)`` with ``payload`` a
    :class:`LaneStructure` for :data:`LANE` rounds, ``(ids, width)`` for
    :data:`BCAST` rounds, and ``None`` for :data:`SCALAR` rounds.

    Kernel programs (:mod:`repro.core.kernels`) compile straight into
    this class — their declared structure *is* the schedule, no
    recording run needed — with ``kernel`` holding the per-round
    execution records the kernel runner consumes.
    """

    __slots__ = ("rounds", "replays", "params", "kernel")

    def __init__(self, rounds: List[Tuple[int, Any, int]]) -> None:
        self.rounds = rounds
        self.replays = 0
        # (bandwidth, mode) the schedule was validated under; the
        # network evicts the entry if either is reassigned afterwards.
        self.params: Any = None
        # Per-round kernel execution records when this schedule was
        # compiled from a KernelProgram (None for recorded schedules).
        self.kernel: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = {LANE: "lane", BCAST: "bcast", SCALAR: "scalar"}
        seq = [kinds[k] for k, _, _ in self.rounds[:8]]
        if len(self.rounds) > 8:
            seq.append("...")
        return (
            f"CompiledSchedule(rounds={len(self.rounds)}, "
            f"bits={sum(bits for _, _, bits in self.rounds)}, kinds={seq})"
        )


class ScheduleRecorder:
    """Accumulates a :class:`CompiledSchedule` during one full run."""

    __slots__ = ("_rounds", "_structs", "_last_lane")

    def __init__(self) -> None:
        self._rounds: List[Tuple[int, Any, int]] = []
        # Dedup key -> shared LaneStructure (phases repeat one shape).
        self._structs: Dict[Any, LaneStructure] = {}
        # (width, [(sender, outbox)], struct) of the previous lane
        # round: a round that re-yields the identical outbox objects
        # (the zero-churn pattern) reuses the structure without
        # recomputing the content key.  Strong refs, so object identity
        # cannot be counterfeited by allocator reuse.
        self._last_lane: Optional[Tuple[int, List[Tuple[int, Any]], LaneStructure]] = None

    def lane_round(self, fixed_list, width: int, bits: int) -> None:
        last = self._last_lane
        if (
            last is not None
            and last[0] == width
            and len(last[1]) == len(fixed_list)
            and all(
                v == pv and o is po
                for (v, o), (pv, po) in zip(fixed_list, last[1])
            )
        ):
            self._rounds.append((LANE, last[2], bits))
            return
        senders = tuple(v for v, _ in fixed_list)
        # Per-sender sizes are part of the identity: the same flattened
        # destination concatenation can arise from different splits.
        sizes = tuple(o.dests.size for _, o in fixed_list)
        cols_bytes = b"".join(
            o.dests.tobytes() for _, o in fixed_list if o.dests.size
        )
        key = (width, senders, sizes, cols_bytes)
        struct = self._structs.get(key)
        if struct is None:
            struct = self._structs[key] = LaneStructure(
                width, [(v, o.dests) for v, o in fixed_list]
            )
        self._last_lane = (width, list(fixed_list), struct)
        self._rounds.append((LANE, struct, bits))

    def bcast_round(self, bcast_list, width: int, bits: int) -> None:
        ids = tuple(v for v, _ in bcast_list)
        self._rounds.append((BCAST, (ids, width), bits))

    def scalar_round(self, bits: int) -> None:
        self._rounds.append((SCALAR, None, bits))

    def finish(self) -> CompiledSchedule:
        return CompiledSchedule(self._rounds)


def _batch_worker(network_factory, program_factory, chunk):
    """Process-pool worker: rebuild the network and program locally and
    run one chunk of instances (module-level so it pickles)."""
    network = network_factory()
    program = program_factory()
    return network.run_many(program, chunk)


class BatchRunner:
    """Sweep an inputs list through :meth:`Network.run_many`.

    ``network_factory`` and ``program_factory`` are zero-argument
    callables building a fresh network and node program; with
    ``processes > 0`` they must be picklable (module-level functions or
    ``functools.partial`` over picklable data) because each worker
    process rebuilds its own copies and replays its chunk against its
    own compiled schedule.  Results come back in input order, identical
    to sequential ``run`` calls.
    """

    __slots__ = ("network_factory", "program_factory", "processes")

    def __init__(
        self,
        network_factory: Callable[[], Any],
        program_factory: Callable[[], Callable],
        processes: int = 0,
    ) -> None:
        self.network_factory = network_factory
        self.program_factory = program_factory
        self.processes = processes

    def run(self, inputs_list: Sequence[Any]) -> List[Any]:
        inputs_list = list(inputs_list)
        if self.processes and len(inputs_list) > 1:
            return self._run_pool(inputs_list)
        return self._run_in_process(inputs_list)

    def _run_in_process(self, inputs_list: List[Any]) -> List[Any]:
        network = self.network_factory()
        program = self.program_factory()
        return network.run_many(program, inputs_list)

    def _run_pool(self, inputs_list: List[Any]) -> List[Any]:
        import pickle
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        # Probe picklability up front so unpicklable factories (e.g.
        # closures) fall back cleanly without touching the pool, and
        # genuine protocol errors raised inside a worker can propagate
        # instead of being mistaken for serialization failures.
        try:
            pickle.dumps((self.network_factory, self.program_factory))
        except Exception:
            return self._run_in_process(inputs_list)
        workers = min(self.processes, len(inputs_list))
        chunk_size = -(-len(inputs_list) // workers)
        chunks = [
            inputs_list[i : i + chunk_size]
            for i in range(0, len(inputs_list), chunk_size)
        ]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _batch_worker,
                        self.network_factory,
                        self.program_factory,
                        chunk,
                    )
                    for chunk in chunks
                ]
                parts = [f.result() for f in futures]
        except (pickle.PicklingError, BrokenProcessPool):
            # Unpicklable *results* or a crashed worker process: the
            # sweep still completes in-process.
            return self._run_in_process(inputs_list)
        return [result for part in parts for result in part]
