"""The non-explicit counting lower bound (Section 1, full version).

The paper notes that a counting argument shows *some* function
f : {0,1}^{n²} → {0,1} requires (n − O(log n))/b rounds in
CLIQUE-UCAST(n, b), nearly matching the trivial n/b upper bound (ship
everyone's n input bits to one player).

Derivation implemented by :func:`counting_round_lower_bound`: a
deterministic R-round protocol is described by, per player and round, a
function from the player's view (its n input bits plus at most
(n−1)·b·R received bits) to its (n−1)·b outgoing bits, plus an output
function.  Hence

    log2 #protocols  <=  n·(R+1) · (n−1)·b · 2^{n + (n−1)·b·R} .

If this is below log2 #functions = 2^{n²}, some function is not
computable in R rounds.  Taking logs once more, the binding constraint
is  n + (n−1)·b·R + log2(n·(R+1)·(n−1)·b)  <  n²,  i.e.
R ≈ (n² − n − O(log n))/((n−1)·b) = (n − O(log n)/n)/b · (n/(n−1)).

:mod:`two-party enumeration <repro.lower_bounds.counting>` also includes
an *exhaustive* miniature: for n = 2 players the model is exactly
2-party communication complexity, and we enumerate every 1-round
protocol to certify that equality/IP on 2+2 bits genuinely needs more
than one b=1 round — a concrete, fully verified instance of "hard
functions exist".
"""

from __future__ import annotations

import itertools
import math
from typing import Sequence, Tuple

__all__ = [
    "counting_round_lower_bound",
    "trivial_upper_bound_rounds",
    "one_round_two_party_computable",
    "two_party_hard_function_exists",
]


def counting_round_lower_bound(n: int, bandwidth: int) -> int:
    """The largest R such that R-round protocols cannot cover all
    functions on n² input bits — i.e. some function requires more than R
    rounds.  Evaluates the counting inequality exactly in log-space."""
    if n < 2:
        return 0
    best = 0
    r = 1
    while True:
        view_bits = n + (n - 1) * bandwidth * r
        log2_protocols = (
            math.log2(n * (r + 1) * (n - 1) * bandwidth) + view_bits
        )
        if log2_protocols < n * n:
            best = r
            r += 1
        else:
            return best


def trivial_upper_bound_rounds(n: int, bandwidth: int) -> int:
    """Every function is computable in ⌈n/b⌉ rounds: each player ships
    its n input bits to player 0 on its direct link."""
    return -(-n // bandwidth)


# ---------------------------------------------------------------------------
# Exhaustive miniature: n = 2 players (classical 2-party communication).
# ---------------------------------------------------------------------------

TruthTable = Tuple[Tuple[int, ...], ...]  # f[x_a][x_b]


def one_round_two_party_computable(
    table: Sequence[Sequence[int]], input_bits: int = 2, bandwidth: int = 1
) -> bool:
    """Is f computable by a single simultaneous exchange (each player
    sends b bits, then at least one player announces the answer)?

    Exhaustively tries every pair of message functions: after one round
    Alice knows (x_a, g_b(x_b)) and Bob knows (x_b, g_a(x_a)); f is
    computable iff it is constant on one of the induced partitions.
    """
    size = 1 << input_bits
    messages = 1 << bandwidth
    if any(len(row) != size for row in table) or len(table) != size:
        raise ValueError("truth table must be 2^bits x 2^bits")
    for g_b in itertools.product(range(messages), repeat=size):
        # Alice outputs: f(x_a, x_b) must depend only on (x_a, g_b(x_b)).
        if all(
            table[xa][xb1] == table[xa][xb2]
            for xa in range(size)
            for xb1 in range(size)
            for xb2 in range(size)
            if g_b[xb1] == g_b[xb2]
        ):
            return True
    for g_a in itertools.product(range(messages), repeat=size):
        if all(
            table[xa1][xb] == table[xa2][xb]
            for xb in range(size)
            for xa1 in range(size)
            for xa2 in range(size)
            if g_a[xa1] == g_a[xa2]
        ):
            return True
    return False


def two_party_hard_function_exists(input_bits: int = 2, bandwidth: int = 1) -> Tuple[bool, TruthTable]:
    """Certify by exhaustion that equality on ``input_bits``-bit inputs
    is not 1-round computable with the given bandwidth (while it clearly
    is in ``input_bits`` rounds at b = 1: Bob streams his input).

    Returns (is_hard, the equality truth table).
    """
    size = 1 << input_bits
    equality: TruthTable = tuple(
        tuple(1 if xa == xb else 0 for xb in range(size)) for xa in range(size)
    )
    return (not one_round_two_party_computable(equality, input_bits, bandwidth)), equality
