"""Lower-bound machinery of Section 3: Definition 10 graphs, the three
constructions, the executable 2-party and NOF reductions, and the
non-explicit counting bound."""

from repro.lower_bounds.bipartite import biclique_lower_bound_graph
from repro.lower_bounds.cliques import clique_lower_bound_graph
from repro.lower_bounds.comm import (
    DisjointnessReduction,
    ReductionRun,
    deterministic_disj_bits_lower_bound,
    implied_round_lower_bound,
    sets_disjoint,
)
from repro.lower_bounds.counting import (
    counting_round_lower_bound,
    one_round_two_party_computable,
    trivial_upper_bound_rounds,
    two_party_hard_function_exists,
)
from repro.lower_bounds.cycles import cycle_lower_bound_graph
from repro.lower_bounds.lb_graphs import LowerBoundGraph, verify_lower_bound_graph
from repro.lower_bounds.two_party import (
    canonical_disj_fooling_set,
    disj_table,
    eq_table,
    exact_cc,
    fooling_set_bound,
    gt_table,
    ip_table,
    log_rank_bound,
)
from repro.lower_bounds.nof import (
    NOFReductionRun,
    NOFTriangleReduction,
    implied_triangle_rounds,
    nof_disj_deterministic_bits,
    nof_disj_randomized_bits,
    nof_instance_graph,
)

__all__ = [
    "LowerBoundGraph",
    "verify_lower_bound_graph",
    "clique_lower_bound_graph",
    "cycle_lower_bound_graph",
    "biclique_lower_bound_graph",
    "sets_disjoint",
    "deterministic_disj_bits_lower_bound",
    "implied_round_lower_bound",
    "ReductionRun",
    "DisjointnessReduction",
    "NOFReductionRun",
    "NOFTriangleReduction",
    "nof_instance_graph",
    "nof_disj_deterministic_bits",
    "nof_disj_randomized_bits",
    "implied_triangle_rounds",
    "counting_round_lower_bound",
    "trivial_upper_bound_rounds",
    "one_round_two_party_computable",
    "two_party_hard_function_exists",
    "exact_cc",
    "eq_table",
    "disj_table",
    "ip_table",
    "gt_table",
    "fooling_set_bound",
    "canonical_disj_fooling_set",
    "log_rank_bound",
]
