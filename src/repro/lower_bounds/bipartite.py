"""Lemma 21: the (K_{ℓ,m}, F)-lower-bound graph for complete bipartite H.

F must be a *bipartite C4-free* graph (Observation 20 guarantees one
with at least ex(N, C4)/2 edges); we use the point–line incidence graph
of PG(2, q), which is bipartite with girth 6 and Θ(N^{3/2}) edges.

Construction: rows V_A = {u_i}, V_B = {v_i} (i ∈ V_F) carry the two
copies of F; W_L (ℓ−2 vertices) and W_R (m−2 vertices) are template
hubs wired so that for every F-edge {i ∈ L, j ∈ R} the vertex sets

    X = W_L ∪ {u_i, v_j}   (size ℓ)      Y = W_R ∪ {u_j, v_i}   (size m)

span a complete bipartite K_{ℓ,m} exactly when both the Alice edge
{u_i, u_j} and the Bob edge {v_i, v_j} are present; C4-freeness of F
rules out every other K_{ℓ,m} (Lemma 21's case analysis, which the test
suite re-verifies by exhaustive enumeration).  With |E_F| = Θ(N^{3/2})
Lemma 13 gives Theorem 22's Ω(√n/b).

**Erratum (found by the Definition 10 machine verifier).**  For ℓ != m
the paper's case analysis has a gap: it asserts both sides of any
K_{ℓ,m}-copy contain at least two V_A ∪ V_B vertices "as |W_L| = ℓ−2
and |W_R| = m−2", implicitly pinning the W-hubs to fixed sides.
Nothing does pin them, and two stray-copy families result:

* m = ℓ+1: the set {u_j} ∪ W_R plus ℓ+1 vertices of
  φ_A(L) ∪ {v_j} ∪ W_L forms a copy from Alice-only edges whenever F
  has a vertex of degree >= 2 — exhibited concretely by our tests with
  the PG(2,2) incidence graph.  A perfect-matching F (max degree 1)
  provably kills this family and the construction then verifies.
* m >= ℓ+2: W_R alone can fill the entire ℓ-side, and any m vertices of
  φ_A(L) ∪ W_L ∪ φ_B(R) complete an *input-independent* copy living in
  template edges only — no choice of F can repair this shape, so the
  constructor rejects these parameters.

For ℓ = m every configuration is a renaming of the intended one and the
construction verifies exhaustively with the dense incidence-graph F;
this is the case carrying Theorem 22's Ω(√n/b).
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.extremal import incidence_graph, is_prime
from repro.graphs.generators import complete_bipartite
from repro.graphs.graph import Graph
from repro.graphs.properties import bipartition
from repro.lower_bounds.lb_graphs import LowerBoundGraph

__all__ = ["biclique_lower_bound_graph"]


def _degree_capped_subgraph(graph: Graph, cap: int) -> Graph:
    """A maximal subgraph of max degree <= cap (greedy edge selection);
    subgraphs of bipartite C4-free graphs keep both properties."""
    capped = Graph(graph.n)
    for u, v in sorted(graph.edges()):
        if capped.degree(u) < cap and capped.degree(v) < cap:
            capped.add_edge(u, v)
    return capped


def biclique_lower_bound_graph(
    left: int,
    right: int,
    q: int = 2,
    f_graph: Optional[Graph] = None,
) -> LowerBoundGraph:
    """Build the Lemma 21 graph for H = K_{left,right} (left, right >= 2).

    ``q`` selects the projective plane PG(2, q) behind the default F;
    pass ``f_graph`` (any bipartite C4-free graph) to override.
    """
    if left < 2 or right < 2:
        raise ValueError("Lemma 21 needs both sides >= 2")
    if abs(left - right) >= 2 and min(left, right) <= max(left, right) - 2:
        raise ValueError(
            "Lemma 21's template contains input-independent K_{l,m} copies "
            "when the sides differ by 2 or more (see the erratum in this "
            "module's docstring); the construction cannot support these "
            "parameters"
        )
    if f_graph is None:
        if not is_prime(q):
            raise ValueError("q must be prime")
        f_graph = incidence_graph(q)
        if left != right:
            # See the erratum in the module docstring: sides differing by
            # one need a matching F to exclude the stray-copy family.
            f_graph = _degree_capped_subgraph(f_graph, 1)
    sides = bipartition(f_graph)
    if sides is None:
        raise ValueError("F must be bipartite")
    left_side = sorted(sides[0] | {v for v in f_graph.vertices() if f_graph.degree(v) == 0})
    right_side = sorted(sides[1])
    nf = f_graph.n

    w_l = left - 2
    w_r = right - 2
    n = 2 * nf + w_l + w_r
    u_of = {i: i for i in range(nf)}                 # V_A
    v_of = {i: nf + i for i in range(nf)}            # V_B
    wl_nodes = [2 * nf + t for t in range(w_l)]
    wr_nodes = [2 * nf + w_l + t for t in range(w_r)]

    template = Graph(n)
    for fu, fv in f_graph.edges():
        template.add_edge(u_of[fu], u_of[fv])        # F_A
        template.add_edge(v_of[fu], v_of[fv])        # F_B
    for i in range(nf):
        template.add_edge(u_of[i], v_of[i])          # the matching
    left_set = set(left_side)
    right_set = set(right_side)
    for w in wl_nodes:
        for j in right_set:
            template.add_edge(w, u_of[j])            # W_L × φ_A(R)
        for i in left_set:
            template.add_edge(w, v_of[i])            # W_L × φ_B(L)
        for w2 in wr_nodes:
            template.add_edge(w, w2)                 # W_L × W_R
    for w in wr_nodes:
        for i in left_set:
            template.add_edge(w, u_of[i])            # W_R × φ_A(L)
        for j in right_set:
            template.add_edge(w, v_of[j])            # W_R × φ_B(R)

    alice = set(u_of.values()) | set(wl_nodes)
    bob = set(range(n)) - alice

    return LowerBoundGraph(
        name=f"K{left},{right}-lower-bound(|F|={nf})",
        template=template,
        pattern=complete_bipartite(left, right),
        f_graph=f_graph,
        f_edges=sorted(f_graph.edges()),
        phi_a=dict(u_of),
        phi_b=dict(v_of),
        alice_nodes=alice,
        bob_nodes=bob,
        cut_edges=None,
    )
