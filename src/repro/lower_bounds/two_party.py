"""Exact two-party communication complexity for small functions.

Lemma 13 converts clique protocols into 2-party protocols and then
invokes classical communication-complexity lower bounds.  This module
makes those classical bounds *computable* for small functions, so the
reduction's arithmetic can be checked against exact values instead of
asymptotic citations:

* :func:`exact_cc` — the deterministic communication complexity D(f),
  computed by dynamic programming over combinatorial rectangles: a
  protocol tree node is a rectangle R = S×T; a bit sent by Alice splits
  S, by Bob splits T; D(R) = 0 iff f is constant on R, else
  1 + min over splits of max(D(child1), D(child2)).  This is the
  textbook characterisation (Kushilevitz–Nisan §1), evaluated exactly.
* :func:`fooling_set_bound` — verify a candidate fooling set and return
  the ⌈log₂|F|⌉ (+1 for the standard both-values refinement is not
  taken; we return the conservative ⌈log₂|F|⌉).
* :func:`log_rank_bound` — ⌈log₂ rank(M_f)⌉, the other classical lower
  bound.

Plus the standard gadgets: equality, disjointness, inner product,
greater-than.  Exact evaluation is exponential in the input length, so
these are meant for the miniature regime (<= 3-bit inputs) used by the
tests and E12's benchmark.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Callable, FrozenSet, Iterable, List, Sequence, Tuple

__all__ = [
    "eq_table",
    "disj_table",
    "ip_table",
    "gt_table",
    "exact_cc",
    "fooling_set_bound",
    "log_rank_bound",
    "canonical_disj_fooling_set",
]

Table = Tuple[Tuple[int, ...], ...]


def _tabulate(bits: int, fn: Callable[[int, int], int]) -> Table:
    size = 1 << bits
    return tuple(
        tuple(int(bool(fn(x, y))) for y in range(size)) for x in range(size)
    )


def eq_table(bits: int) -> Table:
    return _tabulate(bits, lambda x, y: x == y)


def disj_table(bits: int) -> Table:
    """x, y interpreted as characteristic vectors; 1 iff disjoint."""
    return _tabulate(bits, lambda x, y: (x & y) == 0)


def ip_table(bits: int) -> Table:
    return _tabulate(bits, lambda x, y: bin(x & y).count("1") % 2)


def gt_table(bits: int) -> Table:
    return _tabulate(bits, lambda x, y: x > y)


def _nonempty_splits(items: FrozenSet[int]) -> Iterable[Tuple[FrozenSet[int], FrozenSet[int]]]:
    """All 2-part partitions of ``items`` into nonempty halves (each
    unordered pair once; the smaller-lexicographic part first)."""
    ordered = sorted(items)
    pivot = ordered[0]
    rest = ordered[1:]
    for r in range(len(rest) + 1):
        for chosen in itertools.combinations(rest, r):
            left = frozenset((pivot, *chosen))
            right = items - left
            if right:
                yield left, right


def exact_cc(table: Sequence[Sequence[int]], limit: int = 12) -> int:
    """D(f): the exact deterministic communication complexity.

    ``limit`` caps the recursion depth as a safety rail; functions on
    <= 3-bit inputs resolve well below it.
    """
    rows = frozenset(range(len(table)))
    cols = frozenset(range(len(table[0])))
    values = tuple(tuple(row) for row in table)

    @lru_cache(maxsize=None)
    def cost(row_set: FrozenSet[int], col_set: FrozenSet[int]) -> int:
        seen = {values[r][c] for r in row_set for c in col_set}
        if len(seen) <= 1:
            return 0
        best = limit + 1
        if len(row_set) > 1:
            for left, right in _nonempty_splits(row_set):
                sub = 1 + max(cost(left, col_set), cost(right, col_set))
                best = min(best, sub)
                if best == 1:
                    break
        if best > 1 and len(col_set) > 1:
            for left, right in _nonempty_splits(col_set):
                sub = 1 + max(cost(row_set, left), cost(row_set, right))
                best = min(best, sub)
                if best == 1:
                    break
        if best > limit:
            raise RecursionError("communication complexity exceeds limit")
        return best

    return cost(rows, cols)


def fooling_set_bound(
    table: Sequence[Sequence[int]],
    pairs: Sequence[Tuple[int, int]],
    value: int = 1,
) -> int:
    """Verify that ``pairs`` is a fooling set for ``value`` and return
    the implied bound ⌈log₂ |pairs|⌉ on D(f).

    Fooling property: f(x_i, y_i) = value for all i, and for i != j at
    least one of f(x_i, y_j), f(x_j, y_i) differs from ``value``.
    Raises ValueError if the candidate is not actually fooling.
    """
    for x, y in pairs:
        if table[x][y] != value:
            raise ValueError(f"pair ({x},{y}) does not attain the value")
    for (x1, y1), (x2, y2) in itertools.combinations(pairs, 2):
        if table[x1][y2] == value and table[x2][y1] == value:
            raise ValueError(
                f"pairs ({x1},{y1}) and ({x2},{y2}) fail the fooling property"
            )
    count = len(pairs)
    return max(0, (count - 1).bit_length())


def canonical_disj_fooling_set(bits: int) -> List[Tuple[int, int]]:
    """The classical {(S, complement(S))} fooling set for DISJ."""
    mask = (1 << bits) - 1
    return [(s, mask ^ s) for s in range(1 << bits)]


def log_rank_bound(table: Sequence[Sequence[int]]) -> int:
    """⌈log₂ rank(M_f)⌉ over the reals — D(f) >= log₂ rank."""
    import numpy as np

    matrix = np.array(table, dtype=float)
    rank = int(np.linalg.matrix_rank(matrix))
    return max(0, (rank - 1).bit_length())
