"""Lemma 13: subgraph detection ⟹ 2-party set disjointness, executed.

The reduction is run *literally*: given a lower-bound graph and inputs
X, Y ⊆ E_F, the players build the instance graph, simulate the chosen
CLIQUE-BCAST detection protocol on it (each party simulating the nodes
it owns), and read the answer off the detection outcome.  The engine's
transcript charges every broadcast bit to the owning party, so the
reduction's cost accounting — at most n·b bits per round on the
blackboard — is measured, not assumed.

Combined with the classical fooling-set bound D(DISJ_m) >= m (indeed
the exact value is m+1), a detection algorithm running in R rounds
yields a DISJ protocol with n·b·R + O(1) bits, so R = Ω(m/(n·b)) —
that is Lemma 13, and with the Lemma 14/18/21 graphs it instantiates
Theorems 15, 19 and 22.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Optional

from repro.core.network import Mode, Network
from repro.lower_bounds.lb_graphs import LowerBoundGraph
from repro.subgraphs.detection import detection_program, full_learning_program

__all__ = [
    "sets_disjoint",
    "deterministic_disj_bits_lower_bound",
    "implied_round_lower_bound",
    "ReductionRun",
    "DisjointnessReduction",
]


def sets_disjoint(x: AbstractSet[int], y: AbstractSet[int]) -> bool:
    return not (set(x) & set(y))


def deterministic_disj_bits_lower_bound(universe: int) -> int:
    """D(DISJ_m) >= m via the classical fooling set {(S, S̄)}: the 2^m
    pairs (S, complement) pairwise fool any protocol, so at least
    log2(2^m) = m bits are required (Kushilevitz–Nisan §1.3)."""
    return universe


def implied_round_lower_bound(
    universe: int, n: int, bandwidth: int, cut_edges: Optional[int] = None
) -> int:
    """Rounds forced by Lemma 13.

    CLIQUE-BCAST: each round writes at most n·b blackboard bits, so
    R >= m/(n·b).  If ``cut_edges`` is given (a δ-sparse construction),
    the CONGEST-UCAST variant applies: each round at most cut·b bits
    cross the partition, so R >= m/(cut·b).
    """
    capacity = (cut_edges if cut_edges is not None else n) * bandwidth
    return max(1, -(-deterministic_disj_bits_lower_bound(universe) // capacity))


@dataclass(frozen=True)
class ReductionRun:
    """One execution of the Lemma 13 reduction."""

    disjoint: bool
    detection_found: bool
    rounds: int
    blackboard_bits: int
    alice_bits: int
    bob_bits: int

    @property
    def total_communication(self) -> int:
        """Bits of 2-party communication the simulation used (every
        broadcast bit is visible to the other party, plus 1 answer bit)."""
        return self.blackboard_bits + 1


class DisjointnessReduction:
    """Solve DISJ over E_F by simulating an H-detection protocol."""

    def __init__(
        self,
        lbg: LowerBoundGraph,
        bandwidth: int,
        detector: str = "theorem7",
        ex_bound: Optional[int] = None,
        seed: int = 0,
        engine: str = "fast",
    ) -> None:
        self.lbg = lbg
        self.bandwidth = bandwidth
        self.seed = seed
        self.engine = engine
        if detector == "theorem7":
            self._program = detection_program(lbg.pattern, ex_bound)
        elif detector == "full":
            self._program = full_learning_program(lbg.pattern)
        else:
            raise ValueError(f"unknown detector {detector!r}")

    def solve(
        self, alice_set: AbstractSet[int], bob_set: AbstractSet[int]
    ) -> ReductionRun:
        universe = self.lbg.universe_size
        for index in set(alice_set) | set(bob_set):
            if not 0 <= index < universe:
                raise ValueError(f"element {index} outside universe [{universe}]")
        instance = self.lbg.instance_graph(alice_set, bob_set)
        network = Network(
            n=instance.n,
            bandwidth=self.bandwidth,
            mode=Mode.BROADCAST,
            seed=self.seed,
            record_transcript=True,
            engine=self.engine,
        )
        inputs = [sorted(instance.neighbors(v)) for v in range(instance.n)]
        result = network.run(self._program, inputs=inputs)
        outcome = result.outputs[0]
        alice_bits = 0
        bob_bits = 0
        for record in result.transcript or ():
            for sender, _receiver, payload in record.sends:
                if sender in self.lbg.alice_nodes:
                    alice_bits += len(payload)
                else:
                    bob_bits += len(payload)
        return ReductionRun(
            disjoint=not outcome.contains,
            detection_found=outcome.contains,
            rounds=result.rounds,
            blackboard_bits=result.total_bits,
            alice_bits=alice_bits,
            bob_bits=bob_bits,
        )
