"""Lemma 14: the (K_ℓ, K_{N,N})-lower-bound graph.

Construction (see DESIGN.md substitution #5 for the ownership reading):
four N-sets S1..S4 plus ℓ−4 universal vertices.

* template edges: perfect matchings S1–S2 and S3–S4 (index-wise),
  complete bicliques S1×S4 and S2×S3, universal vertices joined to all
  S-vertices and to each other;
* input-controlled edges: the biclique S1×S3 is F_A (Alice), S2×S4 is
  F_B (Bob); F = K_{N,N}.

For an F-edge e = (i, j): the four vertices v1_i, v2_i, v3_j, v4_j plus
the universal vertices form K_ℓ iff both φ_A(e) = {v1_i, v3_j} and
φ_B(e) = {v2_i, v4_j} are present — every other pair among them is
template.  Conversely each S-set is independent, so a K_ℓ picks exactly
one vertex per S-set, and the matchings force the indices to align:
condition (II) of Definition 10 holds (verified mechanically in the
tests).  With |E_F| = N² = Θ(n²), Lemma 13 yields Theorem 15's Ω(n/b).
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.generators import complete_bipartite, complete_graph
from repro.graphs.graph import Graph
from repro.lower_bounds.lb_graphs import LowerBoundGraph

__all__ = ["clique_lower_bound_graph"]


def clique_lower_bound_graph(
    clique_size: int, side: int, total_nodes: Optional[int] = None
) -> LowerBoundGraph:
    """Build the Lemma 14 graph for H = K_ℓ with |F| = K_{side,side}.

    ``total_nodes`` optionally pads with isolated vertices (the paper's
    "add isolated nodes" step) to reach a target player count n.
    """
    if clique_size < 4:
        raise ValueError("Lemma 14 needs clique size >= 4")
    if side < 1:
        raise ValueError("need side >= 1")
    big_n = side
    base = 4 * big_n + (clique_size - 4)
    n = base if total_nodes is None else total_nodes
    if n < base:
        raise ValueError(f"need at least {base} nodes")

    def s(block: int, i: int) -> int:
        return block * big_n + i

    universal = [4 * big_n + t for t in range(clique_size - 4)]
    template = Graph(n)
    for i in range(big_n):
        template.add_edge(s(0, i), s(1, i))  # matching S1–S2
        template.add_edge(s(2, i), s(3, i))  # matching S3–S4
    for i in range(big_n):
        for j in range(big_n):
            template.add_edge(s(0, i), s(3, j))  # S1 × S4 (template)
            template.add_edge(s(1, i), s(2, j))  # S2 × S3 (template)
            template.add_edge(s(0, i), s(2, j))  # S1 × S3 = F_A
            template.add_edge(s(1, i), s(3, j))  # S2 × S4 = F_B
    core = [s(block, i) for block in range(4) for i in range(big_n)]
    for t, u in enumerate(universal):
        for v in core:
            template.add_edge(u, v)
        for u2 in universal[t + 1 :]:
            template.add_edge(u, u2)

    f_graph = complete_bipartite(big_n, big_n)
    f_edges = sorted(f_graph.edges())
    phi_a = {}
    phi_b = {}
    for i in range(big_n):  # side L of F
        phi_a[i] = s(0, i)
        phi_b[i] = s(1, i)
    for j in range(big_n):  # side R of F
        phi_a[big_n + j] = s(2, j)
        phi_b[big_n + j] = s(3, j)

    extras = universal + list(range(base, n))
    alice = (
        {s(0, i) for i in range(big_n)}
        | {s(2, i) for i in range(big_n)}
        | set(extras[: len(extras) // 2])
    )
    bob = set(range(n)) - alice

    return LowerBoundGraph(
        name=f"K{clique_size}-lower-bound(N={big_n})",
        template=template,
        pattern=complete_graph(clique_size),
        f_graph=f_graph,
        f_edges=f_edges,
        phi_a=phi_a,
        phi_b=phi_b,
        alice_nodes=alice,
        bob_nodes=bob,
        cut_edges=None,  # the bicliques cross the cut: not δ-sparse
    )
