"""Lemma 18: the (C_ℓ, F)-lower-bound graph for cycles of length ℓ >= 4.

Two vertex rows V_A = {vA_i}, V_B = {vB_i} (i ∈ [N]) carry the two
copies of F; each index pair (vA_i, vB_i) is joined by a template path
P_i whose length depends on the side of i:

* ⌊ℓ/2⌋ − 1 edges for i < N/2,  ⌈ℓ/2⌉ − 1 edges for i >= N/2,

so that an F-edge {i, j} (one index per side when ℓ is odd) closes a
cycle of length exactly 2 + len(P_i) + len(P_j) = ℓ through the Alice
edge {vA_i, vA_j} and the Bob edge {vB_i, vB_j}.

F is chosen C_ℓ-free and extremal:

* odd ℓ — K_{N/2,N/2} (bipartite, so no odd cycles; |E_F| = N²/4, the
  exact Turán number),
* ℓ = 4 — the Erdős–Rényi polarity graph (Θ(N^{3/2}) edges),
* even ℓ >= 6 — the certified deletion-method graph
  (DESIGN.md substitution #3).

The construction is δ-sparse (the only Alice–Bob edges are the N path
middles), so Theorem 19's bound applies to CONGEST as well.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.graphs.extremal import dense_cycle_free_graph
from repro.graphs.generators import cycle_graph
from repro.graphs.graph import Graph
from repro.lower_bounds.lb_graphs import LowerBoundGraph

__all__ = ["cycle_lower_bound_graph"]


def cycle_lower_bound_graph(
    cycle_length: int,
    big_n: int,
    f_graph: Optional[Graph] = None,
    rng: Optional[random.Random] = None,
) -> LowerBoundGraph:
    """Build the Lemma 18 graph for H = C_ℓ on 2N + Σ(len(P_i)−1) nodes."""
    if cycle_length < 4:
        raise ValueError("Lemma 18 needs cycle length >= 4")
    if big_n % 2:
        raise ValueError("N must be even (two path-length classes)")
    ell = cycle_length
    if f_graph is None:
        f_graph = dense_cycle_free_graph(big_n, ell, rng)
    if f_graph.n != big_n:
        raise ValueError("F must live on exactly N vertices")
    if ell % 2 == 1:
        # All F-edges must cross the two path-length classes.
        half = big_n // 2
        for u, v in f_graph.edges():
            lo, hi = min(u, v), max(u, v)
            if not (lo < half <= hi):
                raise ValueError(
                    "for odd cycle lengths F must be bipartite across "
                    "[0, N/2) x [N/2, N)"
                )

    half = big_n // 2
    path_len = [
        (ell // 2 - 1) if i < half else ((ell + 1) // 2 - 1)
        for i in range(big_n)
    ]

    # vertex layout: V_A = 0..N-1, V_B = N..2N-1, then path internals.
    internals_needed = sum(max(0, p - 1) for p in path_len)
    n = 2 * big_n + internals_needed
    template = Graph(n)
    next_free = 2 * big_n
    alice_nodes = set(range(big_n))
    bob_nodes = set(range(big_n, 2 * big_n))
    cut = 0
    for i in range(big_n):
        a_end = i
        b_end = big_n + i
        p = path_len[i]
        chain: List[int] = [a_end]
        for _ in range(max(0, p - 1)):
            chain.append(next_free)
            next_free += 1
        chain.append(b_end)
        for u, v in zip(chain, chain[1:]):
            template.add_edge(u, v)
        # Split ownership at the path's middle edge; count it as cut.
        internal = chain[1:-1]
        first_half = internal[: len(internal) // 2 + len(internal) % 2]
        second_half = internal[len(first_half):]
        alice_nodes.update(first_half)
        bob_nodes.update(second_half)
        cut += 1

    for u, v in f_graph.edges():
        template.add_edge(u, v)                      # F_A on V_A
        template.add_edge(big_n + u, big_n + v)      # F_B on V_B

    phi_a = {i: i for i in range(big_n)}
    phi_b = {i: big_n + i for i in range(big_n)}

    return LowerBoundGraph(
        name=f"C{ell}-lower-bound(N={big_n})",
        template=template,
        pattern=cycle_graph(ell),
        f_graph=f_graph,
        f_edges=sorted(f_graph.edges()),
        phi_a=phi_a,
        phi_b=phi_b,
        alice_nodes=alice_nodes,
        bob_nodes=bob_nodes,
        cut_edges=cut,
    )
