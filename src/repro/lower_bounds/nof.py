"""Theorem 24: triangle detection ⟹ 3-party NOF set disjointness.

The reduction uses the Ruzsa–Szemerédi graph G_n (Claim 23): its m =
|A|²/e^{O(√log|A|)} planted triangles are the disjointness universe.
Given NOF inputs X_A, X_B, X_C ⊆ [m], the instance graph G_X keeps

* the A–B edge of triangle t  iff  t ∈ X_C,
* the B–C edge of triangle t  iff  t ∈ X_A,
* the C–A edge of triangle t  iff  t ∈ X_B,

(each edge of G_n lies in exactly one planted triangle, so the rule is
total).  G_X contains a triangle iff some t lies in all three sets —
and crucially each party can build the rows of the nodes it simulates
from the two inputs on the *other* players' foreheads, which is exactly
the number-on-forehead information structure.

Executing a CLIQUE-BCAST triangle-detection protocol on G_X therefore
solves NOF-DISJ_m with n·b·R + 1 bits, so
R >= R_3-NOF(DISJ_m)/(n·b) — Theorem 24.  Plugging in the known NOF
bounds: Ω(m) deterministic (Rao–Yehudayoff) gives Corollary 25's
Ω(n/(e^{O(√log n)} b)); the randomized Ω(√m) (Sherstov) is just shy of
non-trivial, as the paper discusses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Optional

from repro.core.network import Mode, Network
from repro.graphs.generators import cycle_graph
from repro.graphs.graph import Graph
from repro.graphs.ruzsa_szemeredi import RuzsaSzemerediGraph, rs_graph
from repro.subgraphs.detection import full_learning_program

__all__ = [
    "nof_instance_graph",
    "NOFReductionRun",
    "NOFTriangleReduction",
    "nof_disj_deterministic_bits",
    "nof_disj_randomized_bits",
    "implied_triangle_rounds",
]

_TRIANGLE = cycle_graph(3)


def nof_instance_graph(
    rs: RuzsaSzemerediGraph,
    x_a: AbstractSet[int],
    x_b: AbstractSet[int],
    x_c: AbstractSet[int],
) -> Graph:
    """Build G_X from the three forehead sets (indices into
    ``rs.triangles``)."""
    instance = Graph(rs.graph.n)
    for t, (a, b, c) in enumerate(rs.triangles):
        if t in x_c:
            instance.add_edge(a, b)
        if t in x_a:
            instance.add_edge(b, c)
        if t in x_b:
            instance.add_edge(a, c)
    return instance


@dataclass(frozen=True)
class NOFReductionRun:
    disjoint: bool
    triangle_found: bool
    rounds: int
    blackboard_bits: int
    bits_by_party: tuple

    @property
    def total_communication(self) -> int:
        return self.blackboard_bits + 1


class NOFTriangleReduction:
    """Solve 3-party NOF DISJ over the planted triangles of G_n."""

    def __init__(
        self,
        class_size: int,
        bandwidth: int,
        seed: int = 0,
        rs: Optional[RuzsaSzemerediGraph] = None,
        engine: str = "fast",
    ) -> None:
        self.rs = rs if rs is not None else rs_graph(class_size)
        self.bandwidth = bandwidth
        self.seed = seed
        self.engine = engine
        self._program = full_learning_program(_TRIANGLE)

    @property
    def universe_size(self) -> int:
        return self.rs.triangle_count

    def solve(
        self,
        x_a: AbstractSet[int],
        x_b: AbstractSet[int],
        x_c: AbstractSet[int],
    ) -> NOFReductionRun:
        instance = nof_instance_graph(self.rs, x_a, x_b, x_c)
        network = Network(
            n=instance.n,
            bandwidth=self.bandwidth,
            mode=Mode.BROADCAST,
            seed=self.seed,
            record_transcript=True,
            engine=self.engine,
        )
        inputs = [sorted(instance.neighbors(v)) for v in range(instance.n)]
        result = network.run(self._program, inputs=inputs)
        outcome = result.outputs[0]
        parts = self.rs.parts
        bits = [0, 0, 0]
        for record in result.transcript or ():
            for sender, _receiver, payload in record.sends:
                for which, part in enumerate(parts):
                    if sender in part:
                        bits[which] += len(payload)
                        break
        return NOFReductionRun(
            disjoint=not outcome.contains,
            triangle_found=outcome.contains,
            rounds=result.rounds,
            blackboard_bits=result.total_bits,
            bits_by_party=tuple(bits),
        )


def nof_disj_deterministic_bits(universe: int) -> int:
    """Rao–Yehudayoff: deterministic 3-NOF DISJ_N needs Ω(N) bits; we
    report the bound with constant 1 (the paper states Ω(N))."""
    return universe


def nof_disj_randomized_bits(universe: int) -> int:
    """Sherstov: randomized 3-NOF DISJ_N needs Ω(√N) bits."""
    return int(math.isqrt(universe))


def implied_triangle_rounds(
    universe: int, n_players: int, bandwidth: int, deterministic: bool = True
) -> int:
    """Theorem 24's round bound: R >= f(m)/(n·b)."""
    bits = (
        nof_disj_deterministic_bits(universe)
        if deterministic
        else nof_disj_randomized_bits(universe)
    )
    return max(1, bits // max(1, n_players * bandwidth))
