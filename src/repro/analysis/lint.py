"""AST lint pass: determinism hazards in protocol code.

Everything in this repository's correctness story — cross-engine
digests, fault-schedule reproducibility, compiled-schedule replay —
rests on runs being pure functions of ``(program, inputs, seed)``.  The
lint pass walks :mod:`repro` source with the stdlib :mod:`ast` module
and flags the three ways that purity quietly breaks:

``unseeded-random``
    Module-level ``random.*`` / ``np.random.*`` calls draw from global,
    unseeded generator state.  Protocol code must thread an explicit
    ``random.Random(seed)`` / ``np.random.default_rng(seed)`` instance.
    Constructing such an instance (``random.Random``, ``random.seed``,
    ``np.random.default_rng``, ``np.random.RandomState``,
    ``np.random.Generator``, ``np.random.SeedSequence``) is of course
    allowed.

``wall-clock``
    ``time.time`` / ``time.monotonic`` / ``time.perf_counter`` /
    ``datetime.now`` and friends inside protocol paths make behaviour
    depend on the host clock.  (Harness timing code annotates its
    legitimate uses; see below.)

``dict-order-yield``
    A ``for`` loop over ``.items()`` / ``.keys()`` / ``.values()``
    whose body ``yield``\\ s makes the message *order* — and under
    heterogeneous widths, the structure — depend on dict insertion
    order.  Insertion order is deterministic in CPython, but it is an
    accident of construction order, not a declared protocol property;
    iterate ``sorted(...)`` instead.

A finding is suppressed by an explicit same-line pragma::

    start = time.perf_counter()  # analysis: allow(wall-clock)

which keeps the default strict (zero findings in ``src/repro/``) while
letting the measurement harness keep its clocks, visibly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["LintFinding", "lint_source", "lint_file", "lint_paths", "RULES"]

RULES = ("unseeded-random", "wall-clock", "dict-order-yield")

#: random-module attributes that *create or seed* generators (allowed)
#: rather than draw from global state (flagged).
_RANDOM_FACTORIES = {
    "Random",
    "SystemRandom",
    "seed",
    "getstate",
    "setstate",
    "default_rng",
    "RandomState",
    "Generator",
    "SeedSequence",
    "PCG64",
    "Philox",
    "bit_generator",
}

_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "process_time"),
    ("time", "time_ns"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "today"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

_DICT_VIEW_METHODS = {"items", "keys", "values"}


@dataclass(frozen=True)
class LintFinding:
    """One determinism hazard at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None for anything non-dotted."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: Sequence[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings: List[LintFinding] = []
        #: Local aliases of the random / numpy.random / time / datetime
        #: modules, tracked through imports in this file.
        self.random_aliases: set = set()
        self.np_aliases: set = set()
        self.time_aliases: set = set()
        self.datetime_aliases: set = set()
        #: Names imported *from* the hazardous modules, e.g.
        #: ``from random import randint`` / ``from time import time``.
        self.from_random: set = set()
        self.from_time: set = set()

    # -- bookkeeping ------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name in ("numpy", "np"):
                self.np_aliases.add(bound)
            elif alias.name == "numpy.random":
                # ``import numpy.random`` binds "numpy" (or the asname
                # to the submodule); either way draws are attribute
                # calls we catch through the numpy alias set.
                self.np_aliases.add(bound)
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_FACTORIES:
                    self.from_random.add(alias.asname or alias.name)
        elif node.module == "time":
            for alias in node.names:
                self.from_time.add(alias.asname or alias.name)
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _RANDOM_FACTORIES:
                    self.from_random.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- findings ---------------------------------------------------------

    def _allowed(self, line: int, rule: str) -> bool:
        if 1 <= line <= len(self.lines):
            return f"analysis: allow({rule})" in self.lines[line - 1]
        return False

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if self._allowed(line, rule):
            return
        self.findings.append(
            LintFinding(path=self.path, line=line, rule=rule, message=message)
        )

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            dotted = _dotted(node.func)
            if dotted is not None:
                self._check_call(node, dotted)
        elif isinstance(node.func, ast.Name):
            name = node.func.id
            if name in self.from_random:
                self._flag(
                    node,
                    "unseeded-random",
                    f"call to global random.{name}(); use an explicit "
                    f"random.Random(seed) instance",
                )
            elif name in self.from_time:
                self._flag(
                    node,
                    "wall-clock",
                    f"call to time.{name}(); protocol behaviour must not "
                    f"depend on the host clock",
                )
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, dotted: Tuple[str, ...]) -> None:
        head, rest = dotted[0], dotted[1:]
        # random.<draw>(...)
        if head in self.random_aliases and len(rest) == 1:
            if rest[0] not in _RANDOM_FACTORIES:
                self._flag(
                    node,
                    "unseeded-random",
                    f"call to global random.{rest[0]}(); use an explicit "
                    f"random.Random(seed) instance",
                )
            return
        # np.random.<draw>(...)
        if (
            head in self.np_aliases
            and len(rest) == 2
            and rest[0] == "random"
            and rest[1] not in _RANDOM_FACTORIES
        ):
            self._flag(
                node,
                "unseeded-random",
                f"call to global numpy random.{rest[1]}(); use "
                f"np.random.default_rng(seed)",
            )
            return
        # time.<clock>() / datetime.now() / datetime.datetime.now()
        if head in self.time_aliases and len(rest) == 1:
            if ("time", rest[0]) in _CLOCK_CALLS:
                self._flag(
                    node,
                    "wall-clock",
                    f"call to time.{rest[0]}(); protocol behaviour must "
                    f"not depend on the host clock",
                )
            return
        if head in self.datetime_aliases and rest:
            tail = rest[-1]
            if ("datetime", tail) in _CLOCK_CALLS or ("date", tail) in _CLOCK_CALLS:
                self._flag(
                    node,
                    "wall-clock",
                    f"call to datetime {'.'.join(rest)}(); protocol "
                    f"behaviour must not depend on the host clock",
                )

    def _visit_loop(self, node: ast.AST) -> None:
        iterator = node.iter
        if (
            isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Attribute)
            and iterator.func.attr in _DICT_VIEW_METHODS
            and not iterator.args
            and not iterator.keywords
        ):
            has_yield = any(
                isinstance(inner, (ast.Yield, ast.YieldFrom))
                for stmt in node.body
                for inner in ast.walk(stmt)
            )
            if has_yield:
                self._flag(
                    node,
                    "dict-order-yield",
                    f"loop over .{iterator.func.attr}() yields messages: "
                    f"send order depends on dict insertion order; iterate "
                    f"sorted(...) instead",
                )
        self.generic_visit(node)

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one Python source text; findings carry ``path``."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, source.splitlines())
    linter.visit(tree)
    linter.findings.sort(key=lambda f: (f.line, f.rule))
    return linter.findings


def lint_file(path: Path) -> List[LintFinding]:
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Iterable[Path]) -> List[LintFinding]:
    """Lint every ``.py`` file under each path (files lint directly)."""
    findings: List[LintFinding] = []
    for root in paths:
        root = Path(root)
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for file in files:
            findings.extend(lint_file(file))
    return findings
