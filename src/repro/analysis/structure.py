"""Communication-structure extraction: the analyzer's view of a protocol.

Two extraction paths feed the verifier:

* **Kernel programs** declare their entire round structure up front
  (:class:`~repro.core.kernels.UnicastRound` /
  :class:`~repro.core.kernels.BroadcastRound` specs), so
  :func:`kernel_structure` reads the shape straight off the
  declarations — no send/recv callback ever executes, which is what
  makes the pass *static*: a kernel program's structure cannot depend on
  inputs by construction.

* **Generator programs** interleave structure and computation, so their
  shape is observed by :func:`trace_structure`: one instrumented run on
  the legacy reference engine with ``record_transcript=True`` (the
  transcript-recording network doubles as the tracing stub — replay,
  caching and bulk lanes are all disabled under it, so the trace sees
  exactly the scalar reference semantics).  The obliviousness pass
  (:mod:`repro.analysis.oblivious`) compares such traces across probe
  inputs.

Both paths normalize to :class:`ProtocolStructure`, whose per-round
:meth:`signature` is the equality the obliviousness verdicts are defined
over: *who* sends, *to whom*, and *how many bits* — never the payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "RoundShape",
    "ProtocolStructure",
    "kernel_structure",
    "trace_structure",
]

#: One round's structural signature: sorted (sender, receiver, width)
#: triples, broadcasts encoded with receiver -1.
RoundSignature = Tuple[Tuple[int, int, int], ...]


@dataclass(frozen=True)
class RoundShape:
    """Shape of one communication round, payload-free."""

    kind: str  # "unicast" | "broadcast" | "mixed" | "silent"
    messages: int
    max_width: int
    total_bits: int
    #: Full structural signature; present on traced structures, None on
    #: kernel-declared ones (their round specs already *are* the
    #: structure, and per-message triples would be redundant).
    signature: Optional[RoundSignature] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "messages": self.messages,
            "max_width": self.max_width,
            "total_bits": self.total_bits,
        }


@dataclass
class ProtocolStructure:
    """Per-round communication shape of one protocol execution/declaration."""

    source: str  # "kernel-declared" | "traced"
    rounds: List[RoundShape] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def max_message_width(self) -> int:
        return max((shape.max_width for shape in self.rounds), default=0)

    @property
    def max_round_bits(self) -> int:
        return max((shape.total_bits for shape in self.rounds), default=0)

    @property
    def total_bits(self) -> int:
        return sum(shape.total_bits for shape in self.rounds)

    def signatures(self) -> List[Optional[RoundSignature]]:
        return [shape.signature for shape in self.rounds]

    def first_divergence(self, other: "ProtocolStructure") -> Optional[int]:
        """Index of the first round where the two structures differ
        (``None`` when structurally identical).  Rounds past the shorter
        structure's end count as divergent."""
        mine = self.signatures()
        theirs = other.signatures()
        for idx in range(min(len(mine), len(theirs))):
            if mine[idx] != theirs[idx]:
                return idx
        if len(mine) != len(theirs):
            return min(len(mine), len(theirs))
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "num_rounds": self.num_rounds,
            "max_message_width": self.max_message_width,
            "max_round_bits": self.max_round_bits,
            "total_bits": self.total_bits,
            "rounds": [shape.to_dict() for shape in self.rounds],
        }


def kernel_structure(program: Any) -> ProtocolStructure:
    """Read a :class:`~repro.core.kernels.KernelProgram`'s structure off
    its round declarations without executing any callback."""
    if not getattr(program, "is_kernel_program", False):
        raise TypeError(
            f"kernel_structure needs a KernelProgram, got {type(program).__name__}"
        )
    rounds = [
        RoundShape(
            kind=kind, messages=count, max_width=width, total_bits=total
        )
        for kind, count, width, total in program.declared_structure()
    ]
    return ProtocolStructure(source="kernel-declared", rounds=rounds)


def _shape_from_record(record: Any) -> RoundShape:
    """Collapse one transcript :class:`~repro.core.network.RoundRecord`
    into its structural shape + signature."""
    triples: List[Tuple[int, int, int]] = []
    kinds = set()
    total = 0
    max_width = 0
    for sender, receiver, bits in record.sends:
        width = len(bits)
        if receiver is None:
            kinds.add("broadcast")
            triples.append((sender, -1, width))
        else:
            kinds.add("unicast")
            triples.append((sender, receiver, width))
        total += width
        if width > max_width:
            max_width = width
    if not kinds:
        kind = "silent"
    elif len(kinds) == 2:
        kind = "mixed"
    else:
        kind = kinds.pop()
    return RoundShape(
        kind=kind,
        messages=len(triples),
        max_width=max_width,
        total_bits=total,
        signature=tuple(sorted(triples)),
    )


def trace_structure(
    program: Any,
    inputs: Optional[List[Any]],
    network_kwargs: Dict[str, Any],
    seed: int = 0,
) -> ProtocolStructure:
    """Observe a generator program's round structure through one
    transcript-recording run on the legacy reference engine.

    The recording network is the tracing stub: transcripts disable
    compiled replay and bulk lanes, so the observed structure is exactly
    the reference scalar semantics, and the traced network is fresh per
    call — tracing never pollutes any caller's schedule cache.
    """
    from repro.core.network import Network

    kwargs = dict(network_kwargs)
    kwargs.pop("engine", None)
    kwargs.pop("record_transcript", None)
    kwargs.setdefault("seed", seed)
    network = Network(engine="legacy", record_transcript=True, **kwargs)
    result = network.run(program, inputs=inputs)
    rounds = [_shape_from_record(record) for record in result.transcript]
    return ProtocolStructure(source="traced", rounds=rounds)
