"""Closed-form round bounds predicted by each theorem.

The benchmark harness compares these against engine-measured round
counts; the *shape* (exponent, crossover) is what reproduction means for
a theory paper — constants are implementation artefacts.
"""

from __future__ import annotations

import math

from repro.core.phases import phase_length
from repro.graphs.graph import Graph
from repro.graphs.turan import degeneracy_guess, ex_upper
from repro.subgraphs.becker import message_bits

__all__ = [
    "theorem2_round_bound",
    "theorem7_round_bound",
    "full_learning_round_bound",
    "theorem9_round_bound",
    "dlp_round_bound",
    "matmul_rounds_per_depth",
    "theorem15_lb_rounds",
    "theorem19_lb_rounds",
    "theorem22_lb_rounds",
    "theorem24_lb_rounds",
]


def theorem2_round_bound(depth: int, per_layer: int = 4) -> int:
    """O(D): at most ``per_layer`` engine rounds per circuit layer plus
    input/output redistribution (the constant reflects our (a)/(b)/(c)
    phases and the two-phase router)."""
    return per_layer * max(1, depth) + 2 * per_layer


def theorem7_round_bound(n: int, pattern: Graph, bandwidth: int) -> int:
    """Exact predicted cost of our Theorem 7 implementation: one
    algorithm-A broadcast of message_bits(n, k) bits, chunked."""
    k = min(degeneracy_guess(n, pattern), max(1, n - 1))
    return phase_length(message_bits(n, k), bandwidth)


def full_learning_round_bound(n: int, bandwidth: int) -> int:
    """The trivial algorithm: n-bit adjacency rows, chunked."""
    return phase_length(n, bandwidth)


def theorem9_round_bound(n: int, pattern: Graph, bandwidth: int) -> int:
    """Õ(ex(n,H)/(n·b)): the adaptive algorithm pays an extra log² n for
    the doubling search and the ℓ+1 sampling levels."""
    log_n = max(1, math.ceil(math.log2(max(2, n))))
    base = theorem7_round_bound(n, pattern, bandwidth)
    return base * log_n * log_n + phase_length(log_n, bandwidth)


def dlp_round_bound(n: int, bandwidth: int) -> float:
    """Õ(n^{1/3}) of [8]: per-player traffic ≈ 3·(n/g)²·g³/n bits with
    g = n^{1/3}, over n links of b bits."""
    g = max(1.0, round(n ** (1.0 / 3.0)))
    traffic = 3.0 * (n / g) ** 2 * max(1.0, g**3 / n)
    return max(1.0, traffic / (n * bandwidth))


def matmul_rounds_per_depth(wires: int, size: int) -> float:
    """Section 2.1 bookkeeping: s = wires/n² drives the bandwidth; the
    round count is O(depth) at bandwidth O(s)."""
    return max(1.0, wires / (size * size))


def theorem15_lb_rounds(n: int, bandwidth: int) -> int:
    """Ω(n/b): |E_F| = Θ(n²) elements over n·b blackboard bits/round.
    With the Lemma 14 layout n = 4N + ℓ − 4, |E_F| = N²."""
    big_n = max(1, n // 4)
    return max(1, big_n * big_n // (n * bandwidth))


def theorem19_lb_rounds(n: int, cycle_length: int, bandwidth: int) -> int:
    """Ω(ex(n, C_ℓ)/(n·b)) with the construction's own |E_F|."""
    from repro.graphs.generators import cycle_graph

    ex_bound = ex_upper(n, cycle_graph(cycle_length))
    return max(1, ex_bound // (n * bandwidth))


def theorem22_lb_rounds(n: int, bandwidth: int) -> int:
    """Ω(√n/b): |E_F| = Θ(N^{3/2}) with n = Θ(N)."""
    big_n = max(1, n // 2)
    return max(1, int(big_n**1.5) // (n * bandwidth))


def theorem24_lb_rounds(
    n_players: int, triangles: int, bandwidth: int, deterministic: bool = True
) -> int:
    bits = triangles if deterministic else math.isqrt(triangles)
    return max(1, bits // (n_players * bandwidth))
