"""Predicted bounds per theorem plus table rendering for the harness."""

from repro.analysis.bounds import (
    dlp_round_bound,
    full_learning_round_bound,
    matmul_rounds_per_depth,
    theorem2_round_bound,
    theorem7_round_bound,
    theorem9_round_bound,
    theorem15_lb_rounds,
    theorem19_lb_rounds,
    theorem22_lb_rounds,
    theorem24_lb_rounds,
)
from repro.analysis.reporting import Table, fmt, geometric_mean, ratio

__all__ = [
    "theorem2_round_bound",
    "theorem7_round_bound",
    "full_learning_round_bound",
    "theorem9_round_bound",
    "dlp_round_bound",
    "matmul_rounds_per_depth",
    "theorem15_lb_rounds",
    "theorem19_lb_rounds",
    "theorem22_lb_rounds",
    "theorem24_lb_rounds",
    "Table",
    "ratio",
    "geometric_mean",
    "fmt",
]
