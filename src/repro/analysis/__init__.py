"""Analysis layer: predicted bounds, report tables, and the static
protocol verifier (structure extraction, obliviousness proofs/refutations,
bandwidth budgets, determinism lint — see ``python -m repro.analysis``)."""

from repro.analysis.bounds import (
    dlp_round_bound,
    full_learning_round_bound,
    matmul_rounds_per_depth,
    theorem2_round_bound,
    theorem7_round_bound,
    theorem9_round_bound,
    theorem15_lb_rounds,
    theorem19_lb_rounds,
    theorem22_lb_rounds,
    theorem24_lb_rounds,
)
from repro.analysis.budget import BandwidthBudget, BudgetCheck, check_budget, log2_ceil
from repro.analysis.lint import LintFinding, lint_file, lint_paths, lint_source
from repro.analysis.oblivious import (
    ObliviousnessVerdict,
    perturb_inputs,
    verify_obliviousness,
)
from repro.analysis.reporting import Table, fmt, geometric_mean, ratio
from repro.analysis.structure import (
    ProtocolStructure,
    RoundShape,
    kernel_structure,
    trace_structure,
)

# The verifier imports the scenario registry, which itself imports
# repro.analysis.budget (budgets live on ProtocolSpec); loading it lazily
# keeps this package importable from the registry without a cycle.
_VERIFIER_EXPORTS = (
    "AnalysisReport",
    "ProtocolAnalysis",
    "RegistryFinding",
    "analyze_all",
    "analyze_protocol",
    "check_registry",
    "DEFAULT_SIZES",
)


def __getattr__(name):
    if name in _VERIFIER_EXPORTS:
        from repro.analysis import verifier

        return getattr(verifier, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "theorem2_round_bound",
    "theorem7_round_bound",
    "full_learning_round_bound",
    "theorem9_round_bound",
    "dlp_round_bound",
    "matmul_rounds_per_depth",
    "theorem15_lb_rounds",
    "theorem19_lb_rounds",
    "theorem22_lb_rounds",
    "theorem24_lb_rounds",
    "Table",
    "ratio",
    "geometric_mean",
    "fmt",
    "BandwidthBudget",
    "BudgetCheck",
    "check_budget",
    "log2_ceil",
    "LintFinding",
    "lint_source",
    "lint_file",
    "lint_paths",
    "ObliviousnessVerdict",
    "perturb_inputs",
    "verify_obliviousness",
    "ProtocolStructure",
    "RoundShape",
    "kernel_structure",
    "trace_structure",
    *_VERIFIER_EXPORTS,
]
