"""Table rendering for the benchmark harness and EXPERIMENTS.md."""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Sequence

__all__ = ["Table", "ratio", "geometric_mean", "fmt"]


def fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def ratio(measured: float, predicted: float) -> float:
    if predicted == 0:
        return math.inf
    return measured / predicted


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


class Table:
    """A fixed-header table rendered as markdown or aligned plain text."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(values)}"
            )
        self.rows.append([fmt(v) for v in values])

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def to_text(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        out = [self.title]
        out.append(
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        )
        out.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            out.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(out)

    def __str__(self) -> str:
        return self.to_text()
