"""The protocol verifier: one report over every registered protocol.

Pulls the analysis passes together against the scenario registry:

* per protocol × n, an :class:`ObliviousnessVerdict` for every program
  flavour the spec ships (kernel programs prove by declaration,
  generator programs by probe tracing), checked for *consistency with
  the declaration* — a ``mark_oblivious`` program the tracer refutes is
  a violation naming the offending round;
* per protocol × n, a :class:`~repro.analysis.budget.BudgetCheck` of the
  prepared instance's declared message width against the spec's
  ``bandwidth_budget``;
* one registry-consistency pass (:func:`check_registry`): every engine a
  spec claims must have a program flavour to run and a backend that
  accepts that flavour, and every engine it *doesn't* claim is explained
  (these unclaimed pairs are exactly the scenario matrix's
  ``unsupported`` cells);
* optionally, the determinism lint over ``src/repro``.

:func:`analyze_all` is what ``python -m repro.analysis`` and the
``ScenarioMatrix(analyze=True)`` integration call; its
:class:`AnalysisReport` serializes to the JSON artifact CI uploads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.budget import BudgetCheck, check_budget
from repro.analysis.lint import LintFinding, lint_paths
from repro.analysis.oblivious import ObliviousnessVerdict, verify_obliviousness
from repro.analysis.structure import kernel_structure, trace_structure

__all__ = [
    "ProtocolAnalysis",
    "RegistryFinding",
    "AnalysisReport",
    "analyze_protocol",
    "check_registry",
    "analyze_all",
    "DEFAULT_SIZES",
]

#: Sizes the CLI analyzes by default: small enough that tracing every
#: protocol stays in CI-smoke territory, large enough that log-term
#: budgets actually bind.
DEFAULT_SIZES = (6, 8)


@dataclass
class ProtocolAnalysis:
    """Verdicts for one (protocol, n) coordinate."""

    protocol: str
    n: int
    family: str
    #: flavour ("generator"/"kernel") -> verdict.
    oblivious: Dict[str, ObliviousnessVerdict] = field(default_factory=dict)
    budget: Optional[BudgetCheck] = None
    #: Widest message the structure extraction actually saw (traced or
    #: declared) — the evidence behind the budget check.
    observed_width: Optional[int] = None
    rounds: Optional[int] = None
    violations: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "family": self.family,
            "oblivious": {
                flavour: verdict.to_dict()
                for flavour, verdict in sorted(self.oblivious.items())
            },
            "budget": self.budget.to_dict() if self.budget else None,
            "observed_width": self.observed_width,
            "rounds": self.rounds,
            "violations": list(self.violations),
            "error": self.error,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class RegistryFinding:
    """One registry-consistency fact: a violation or an explained gap."""

    protocol: str
    engine: str
    kind: str  # "violation" | "unsupported"
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "engine": self.engine,
            "kind": self.kind,
            "detail": self.detail,
        }


def analyze_protocol(
    spec: Any,
    n: int,
    *,
    family: str = "gnp",
    seed: int = 0,
) -> ProtocolAnalysis:
    """Run the static passes on one registered protocol at size ``n``.

    The instance is drawn the same way a matrix cell would draw it
    (family rng keyed on a stable coordinate), so analyzer verdicts
    describe the same population of runs the sweeps execute.
    """
    from repro.scenarios.families import get_family

    analysis = ProtocolAnalysis(protocol=spec.name, n=n, family=family)
    try:
        rng = random.Random(f"analysis:{seed}:{spec.name}:{family}:{n}")
        graph = get_family(family).build(n, rng)
        prepared = spec.prepare(n, graph, rng)
    except Exception as exc:  # noqa: BLE001 - isolate per coordinate
        analysis.error = f"prepare failed: {type(exc).__name__}: {exc}"
        return analysis

    observed_width = 0
    rounds = None
    for flavour, program in sorted(prepared.programs.items()):
        try:
            verdict = verify_obliviousness(
                program,
                prepared.inputs,
                prepared.network_kwargs,
                seed=seed,
            )
        except Exception as exc:  # noqa: BLE001 - isolate per flavour
            analysis.violations.append(
                f"{flavour}: obliviousness check crashed: "
                f"{type(exc).__name__}: {exc}"
            )
            continue
        analysis.oblivious[flavour] = verdict
        if verdict.mismarked:
            analysis.violations.append(
                f"{flavour}: {verdict.program} is marked oblivious but "
                f"was refuted at round {verdict.round} — {verdict.detail}"
            )
        if getattr(program, "is_kernel_program", False):
            structure = kernel_structure(program)
        else:
            structure = trace_structure(
                program, prepared.inputs, prepared.network_kwargs, seed=seed
            )
        observed_width = max(observed_width, structure.max_message_width)
        if rounds is None:
            rounds = structure.num_rounds

    # The budget binds the *declared* per-message width (what the
    # protocol demands of the model), which dominates every width the
    # structure extraction observed.
    declared_width = int(prepared.network_kwargs.get("bandwidth", 0))
    analysis.observed_width = max(observed_width, declared_width)
    analysis.rounds = rounds
    analysis.budget = check_budget(
        spec.bandwidth_budget, n, analysis.observed_width
    )
    if not analysis.budget.ok:
        analysis.violations.append(f"budget: {analysis.budget.detail}")
    return analysis


def check_registry(*, n: int = 6, family: str = "gnp") -> List[RegistryFinding]:
    """Cross-check every spec's engine claims against what it prepares
    and what the backends accept.

    Violations: a claimed engine with no program flavour to run, or a
    claimed engine whose backend rejects the flavour's program type.
    ``unsupported`` findings are not violations — they are the explained
    gaps behind the scenario matrix's unsupported cells (e.g. a protocol
    with no kernel twin cannot claim the kernel engine).
    """
    from repro.core.engine.planner import ENGINES
    from repro.scenarios.families import get_family
    from repro.scenarios.registry import PROTOCOLS

    findings: List[RegistryFinding] = []
    for name, spec in sorted(PROTOCOLS.items()):
        try:
            rng = random.Random(f"registry-check:{name}:{family}:{n}")
            prepared = spec.prepare(n, get_family(family).build(n, rng), rng)
        except Exception as exc:  # noqa: BLE001 - isolate per spec
            findings.append(
                RegistryFinding(
                    protocol=name,
                    engine="*",
                    kind="violation",
                    detail=f"prepare failed: {type(exc).__name__}: {exc}",
                )
            )
            continue
        for engine_name in sorted(ENGINES):
            engine = ENGINES[engine_name]
            flavour = spec.program_for(engine_name)
            program = prepared.programs.get(flavour)
            if engine_name in spec.engines:
                if program is None:
                    findings.append(
                        RegistryFinding(
                            protocol=name,
                            engine=engine_name,
                            kind="violation",
                            detail=(
                                f"spec claims engine {engine_name!r} but "
                                f"prepares no {flavour!r} program"
                            ),
                        )
                    )
                    continue
                is_kernel = bool(getattr(program, "is_kernel_program", False))
                accepts = (
                    engine.supports_kernel_programs
                    if is_kernel
                    else engine.supports_generator_programs
                )
                if not accepts:
                    kind_name = "kernel" if is_kernel else "generator"
                    findings.append(
                        RegistryFinding(
                            protocol=name,
                            engine=engine_name,
                            kind="violation",
                            detail=(
                                f"spec claims engine {engine_name!r} but the "
                                f"backend rejects {kind_name} programs"
                            ),
                        )
                    )
            else:
                if program is not None:
                    detail = (
                        f"engine {engine_name!r} unclaimed although a "
                        f"{flavour!r} program exists — claim it or drop the "
                        f"flavour"
                    )
                    kind = "violation"
                else:
                    detail = (
                        f"no {flavour!r} program flavour: the matrix marks "
                        f"({name}, {engine_name}) cells unsupported"
                    )
                    kind = "unsupported"
                findings.append(
                    RegistryFinding(
                        protocol=name, engine=engine_name, kind=kind,
                        detail=detail,
                    )
                )
    return findings


@dataclass
class AnalysisReport:
    """Everything one ``python -m repro.analysis`` invocation decided."""

    analyses: List[ProtocolAnalysis] = field(default_factory=list)
    registry: List[RegistryFinding] = field(default_factory=list)
    lint: List[LintFinding] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def violations(self) -> List[str]:
        """Flat, human-readable list of every hard violation."""
        out: List[str] = []
        for analysis in self.analyses:
            coordinate = f"{analysis.protocol} @ n={analysis.n}"
            if analysis.error is not None:
                out.append(f"{coordinate}: {analysis.error}")
            out.extend(
                f"{coordinate}: {violation}"
                for violation in analysis.violations
            )
        out.extend(
            f"registry {finding.protocol}/{finding.engine}: {finding.detail}"
            for finding in self.registry
            if finding.kind == "violation"
        )
        out.extend(str(finding) for finding in self.lint)
        return out

    @property
    def ok(self) -> bool:
        return not self.violations()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "meta": self.meta,
            "ok": self.ok,
            "violations": self.violations(),
            "protocols": [analysis.to_dict() for analysis in self.analyses],
            "registry": [finding.to_dict() for finding in self.registry],
            "lint": [finding.to_dict() for finding in self.lint],
        }


def analyze_all(
    *,
    protocols: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    family: str = "gnp",
    seed: int = 0,
    lint_roots: Optional[Sequence[Any]] = None,
) -> AnalysisReport:
    """Run every pass over the registered protocols.

    ``lint_roots=None`` skips the lint pass (the CLI passes the
    ``src/repro`` tree; library callers like the matrix integration
    usually only want the per-protocol verdicts).
    """
    from repro.scenarios.registry import PROTOCOLS, get_protocol

    names = sorted(PROTOCOLS) if protocols is None else list(protocols)
    report = AnalysisReport(
        meta={
            "protocols": names,
            "sizes": list(sizes),
            "family": family,
            "seed": seed,
        }
    )
    for name in names:
        spec = get_protocol(name)
        for n in sizes:
            report.analyses.append(
                analyze_protocol(spec, n, family=family, seed=seed)
            )
    report.registry = check_registry(n=min(sizes) if sizes else 6, family=family)
    if lint_roots is not None:
        report.lint = lint_paths(lint_roots)
    return report
