"""Bandwidth budgets: declared per-round bit bounds, checked statically.

The congested clique's defining constraint is the per-round message
width — :math:`O(\\log n)` bits per link in the paper's CLIQUE-UCAST,
one :math:`O(\\log n)`-bit blackboard word per node in CLIQUE-BCAST.
:class:`BandwidthBudget` turns that asymptotic statement into a checkable
concrete bound: a protocol declares the coefficients of

.. math::

    \\text{bits}(n) = \\text{flat}
        + \\text{log\\_coeff} \\cdot L
        + \\text{log\\_sq\\_coeff} \\cdot L^2
        + \\text{linear\\_coeff} \\cdot n,
    \\qquad L = \\lceil \\log_2 \\max(2, n) \\rceil

and the analyzer verifies that the protocol's worst-case per-message
width (its declared network ``bandwidth``) never exceeds the budget at
any analyzed ``n``.  The :math:`L^2` term admits the paper's
simulation-based protocols, whose word size carries a
:math:`\\log^2 n` factor from pointer-per-level encodings; the linear
term exists only so deliberately over-budget *fixtures* can be written —
no registered protocol uses it.

This module is dependency-free (no imports from the scenario layer) so
:mod:`repro.scenarios.registry` can attach budgets to its specs without
an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["BandwidthBudget", "BudgetCheck", "check_budget", "log2_ceil"]


def log2_ceil(n: int) -> int:
    """:math:`\\lceil \\log_2 \\max(2, n) \\rceil` — the model's word
    size at problem size ``n`` (clamped so tiny instances still get a
    positive word)."""
    m = max(2, int(n))
    return (m - 1).bit_length()


@dataclass(frozen=True)
class BandwidthBudget:
    """A declared per-round message-width bound, bits as a function of n."""

    flat: int = 0
    log_coeff: int = 0
    log_sq_coeff: int = 0
    linear_coeff: int = 0

    def bits(self, n: int) -> int:
        """The budgeted maximum message width at problem size ``n``."""
        level = log2_ceil(n)
        return (
            self.flat
            + self.log_coeff * level
            + self.log_sq_coeff * level * level
            + self.linear_coeff * int(n)
        )

    @property
    def is_loglinear(self) -> bool:
        """True when the budget is :math:`O(\\mathrm{polylog}\\,n)` —
        i.e. it respects the clique model's word-size regime (no linear
        term)."""
        return self.linear_coeff == 0

    def describe(self) -> str:
        """Human form, e.g. ``"2*log(n) + 9"`` or ``"16*log^2(n)"``."""
        terms = []
        if self.linear_coeff:
            terms.append(f"{self.linear_coeff}*n")
        if self.log_sq_coeff:
            terms.append(f"{self.log_sq_coeff}*log^2(n)")
        if self.log_coeff:
            terms.append(f"{self.log_coeff}*log(n)")
        if self.flat or not terms:
            terms.append(str(self.flat))
        return " + ".join(terms)


@dataclass(frozen=True)
class BudgetCheck:
    """Verdict of one budget comparison at one problem size."""

    n: int
    allowed: int
    observed: int
    ok: bool
    detail: str

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "allowed": self.allowed,
            "observed": self.observed,
            "ok": self.ok,
            "detail": self.detail,
        }


def check_budget(
    budget: Optional[BandwidthBudget], n: int, observed_bits: int
) -> BudgetCheck:
    """Compare a protocol's observed worst-case message width against
    its declared budget at size ``n``.

    A missing budget is itself a violation in strict mode — every
    registered protocol must state its width bound explicitly.
    """
    if budget is None:
        return BudgetCheck(
            n=n,
            allowed=0,
            observed=observed_bits,
            ok=False,
            detail="no bandwidth_budget declared",
        )
    allowed = budget.bits(n)
    ok = observed_bits <= allowed
    detail = (
        f"width {observed_bits} <= {allowed} = {budget.describe()} @ n={n}"
        if ok
        else (
            f"width {observed_bits} EXCEEDS budget "
            f"{allowed} = {budget.describe()} @ n={n}"
        )
    )
    return BudgetCheck(
        n=n, allowed=allowed, observed=observed_bits, ok=ok, detail=detail
    )
