"""``python -m repro.analysis`` — the static protocol verifier CLI.

Runs the analysis passes (obliviousness, bandwidth budgets, registry
consistency, determinism lint) over the registered protocols and prints
a human report; ``--json`` additionally writes the machine-readable
artifact CI uploads, and ``--strict`` turns any violation into exit
code 1 — the hard-gate mode the CI ``analysis`` job runs.

Examples::

    python -m repro.analysis --all --strict
    python -m repro.analysis --protocol routing --sizes 6,8,12
    python -m repro.analysis --all --json analysis_report.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.reporting import Table
from repro.analysis.verifier import DEFAULT_SIZES, AnalysisReport, analyze_all


def _parse_sizes(text: str) -> List[int]:
    try:
        sizes = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"sizes must be comma-separated integers, got {text!r}"
        ) from None
    if not sizes or any(n < 2 for n in sizes):
        raise argparse.ArgumentTypeError("sizes must be integers >= 2")
    return sizes


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static protocol verifier for the congested-clique repro",
    )
    scope = parser.add_mutually_exclusive_group()
    scope.add_argument(
        "--all",
        action="store_true",
        help="analyze every registered protocol (the default)",
    )
    scope.add_argument(
        "--protocol",
        action="append",
        metavar="NAME",
        help="analyze only the named protocol (repeatable)",
    )
    parser.add_argument(
        "--sizes",
        type=_parse_sizes,
        default=list(DEFAULT_SIZES),
        metavar="N,N,...",
        help=f"problem sizes to analyze (default {','.join(map(str, DEFAULT_SIZES))})",
    )
    parser.add_argument(
        "--family",
        default="gnp",
        help="graph family for probe instances (default gnp)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any violation (the CI gate mode)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the full report as JSON",
    )
    parser.add_argument(
        "--lint-root",
        action="append",
        metavar="PATH",
        help="lint these paths instead of the installed repro package",
    )
    parser.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the determinism lint pass",
    )
    return parser


def _lint_roots(args: argparse.Namespace) -> Optional[List[Path]]:
    if args.no_lint:
        return None
    if args.lint_root:
        return [Path(root) for root in args.lint_root]
    # Default: lint the installed repro package sources.
    import repro

    return [Path(repro.__file__).parent]


def _render(report: AnalysisReport, out) -> None:
    from repro.scenarios.registry import PROTOCOLS

    table = Table(
        "Static protocol analysis",
        ["protocol", "n", "oblivious", "width", "budget", "ok"],
    )
    for analysis in report.analyses:
        budget = (
            PROTOCOLS[analysis.protocol].bandwidth_budget
            if analysis.protocol in PROTOCOLS
            else None
        )
        verdicts = []
        for flavour, verdict in sorted(analysis.oblivious.items()):
            state = "proven" if verdict.oblivious else f"REFUTED@r{verdict.round}"
            verdicts.append(f"{flavour}:{state}")
        table.add_row(
            analysis.protocol,
            analysis.n,
            " ".join(verdicts) or "-",
            analysis.observed_width if analysis.observed_width is not None else "-",
            (
                f"{analysis.budget.observed}<={analysis.budget.allowed}"
                f" [{budget.describe()}]"
                if analysis.budget is not None and budget is not None
                else "MISSING"
            ),
            "yes" if analysis.ok else "NO",
        )
    out.write(table.to_text() + "\n\n")

    unsupported = [f for f in report.registry if f.kind == "unsupported"]
    if unsupported:
        out.write("Registry gaps (matrix 'unsupported' cells, explained):\n")
        for finding in unsupported:
            out.write(
                f"  {finding.protocol}/{finding.engine}: {finding.detail}\n"
            )
        out.write("\n")

    violations = report.violations()
    if violations:
        out.write(f"{len(violations)} violation(s):\n")
        for violation in violations:
            out.write(f"  {violation}\n")
    else:
        out.write(
            f"OK: {len(report.analyses)} protocol×n coordinates, "
            f"{len(report.lint)} lint findings, 0 violations\n"
        )


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    report = analyze_all(
        protocols=args.protocol if args.protocol else None,
        sizes=args.sizes,
        family=args.family,
        seed=args.seed,
        lint_roots=_lint_roots(args),
    )
    _render(report, sys.stdout)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        sys.stdout.write(f"report written to {args.json}\n")
    if args.strict and not report.ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
