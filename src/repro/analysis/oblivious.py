"""Obliviousness verification: prove or refute structure-independence.

A program is *oblivious* when its communication structure — who sends,
to whom, how many bits, per round — depends only on the problem size and
public parameters, never on the inputs or the seed.  Obliviousness is
the compiled-replay contract: :func:`~repro.core.compiled.mark_oblivious`
asserts it, the fast engine bets a recording run on it, and a wrong
assertion costs an eviction (now a
:class:`~repro.core.errors.ReplayEvictionWarning`) *after* the wasted
run.  This pass makes the same judgement *before* the first recording
run:

* **Kernel programs** are oblivious by construction — their structure is
  declared, not computed — so the verdict is a proof, no execution
  needed.

* **Generator programs** are checked by abstract interpretation over
  probe inputs: the program runs through the tracing network stub
  (:func:`~repro.analysis.structure.trace_structure`) on its base
  inputs, on seed variants, and on systematically perturbed inputs
  (:func:`perturb_inputs` flips payload bits and booleans while
  preserving every *public* parameter — key sets, lengths, widths).
  Identical structural signatures across all probes prove obliviousness
  up to the probe family; any divergence refutes it with the exact
  offending round.

A refutation is definitive.  A pass is a proof relative to the probe
set — the same epistemic status as the runtime replay check, reached
without spending a recording run, and strong enough in practice to
catch every mis-marked program the eviction path would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.analysis.structure import ProtocolStructure, kernel_structure, trace_structure
from repro.core.bits import Bits

__all__ = ["ObliviousnessVerdict", "perturb_inputs", "verify_obliviousness"]


def perturb_inputs(inputs: Any, rng: random.Random) -> Any:
    """A structure-preserving perturbation of a per-node input value.

    Flips payloads while keeping everything a protocol may treat as a
    public parameter fixed: dict key sets, sequence lengths,
    :class:`~repro.core.bits.Bits` widths.  Values it cannot perturb
    safely (general ints encoding graph structure, None, sets) pass
    through unchanged — a conservative choice: a missed perturbation can
    only weaken a probe, never fabricate a refutation.
    """
    if isinstance(inputs, bool):
        return not inputs
    if isinstance(inputs, Bits):
        if len(inputs) == 0:
            return inputs
        position = rng.randrange(len(inputs))
        flipped = [bool(b) for b in inputs]
        flipped[position] = not flipped[position]
        return Bits.from_bools(flipped)
    if isinstance(inputs, int):
        return 1 - inputs if inputs in (0, 1) else inputs
    if isinstance(inputs, dict):
        return {key: perturb_inputs(value, rng) for key, value in inputs.items()}
    if isinstance(inputs, tuple):
        return tuple(perturb_inputs(value, rng) for value in inputs)
    if isinstance(inputs, list):
        return [perturb_inputs(value, rng) for value in inputs]
    return inputs


@dataclass
class ObliviousnessVerdict:
    """Outcome of one obliviousness check."""

    program: str
    #: True = proven over the probe family; False = refuted.
    oblivious: bool
    #: Whether the program carries a ``mark_oblivious`` declaration.
    declared: bool
    #: 0-based index of the first structurally divergent round
    #: (refutations only).
    round: Optional[int]
    #: How the verdict was reached.
    method: str  # "kernel-declared" | "traced"
    probes: int
    detail: str

    @property
    def mismarked(self) -> bool:
        """A declared-oblivious program the analyzer refuted — the
        exact population the replay-eviction path punishes at runtime."""
        return self.declared and not self.oblivious

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "oblivious": self.oblivious,
            "declared": self.declared,
            "round": self.round,
            "method": self.method,
            "probes": self.probes,
            "detail": self.detail,
            "mismarked": self.mismarked,
        }


def _describe(program: Any) -> str:
    from repro.core.compiled import describe_program

    return describe_program(program)


def verify_obliviousness(
    program: Any,
    inputs: Optional[List[Any]],
    network_kwargs: Dict[str, Any],
    *,
    seed: int = 0,
    seed_variants: int = 2,
    input_variants: int = 2,
) -> ObliviousnessVerdict:
    """Prove or refute that ``program``'s communication structure is
    independent of its inputs and seed.

    Probes: the base trace, ``seed_variants`` re-traces under different
    network seeds, and ``input_variants`` re-traces on perturbed inputs
    (when there are inputs to perturb).  The first probe whose per-round
    structural signature deviates from the base refutes obliviousness,
    and the verdict carries the 0-based index of the offending round.
    """
    from repro.core.compiled import oblivious_key

    declared = oblivious_key(program) is not None
    name = _describe(program)

    if getattr(program, "is_kernel_program", False):
        structure = kernel_structure(program)
        return ObliviousnessVerdict(
            program=name,
            oblivious=True,
            declared=declared,
            round=None,
            method="kernel-declared",
            probes=0,
            detail=(
                f"structure fully declared ({structure.num_rounds} rounds); "
                f"oblivious by construction"
            ),
        )

    base = trace_structure(program, inputs, network_kwargs, seed=seed)
    probes: List[ProtocolStructure] = []
    probe_names: List[str] = []
    for offset in range(1, seed_variants + 1):
        probes.append(
            trace_structure(program, inputs, network_kwargs, seed=seed + offset)
        )
        probe_names.append(f"seed+{offset}")
    if inputs is not None:
        for variant in range(input_variants):
            rng = random.Random(f"{seed}:perturb:{variant}")
            perturbed = [perturb_inputs(node_inputs, rng) for node_inputs in inputs]
            probes.append(
                trace_structure(program, perturbed, network_kwargs, seed=seed)
            )
            probe_names.append(f"inputs#{variant}")

    for probe_name, probe in zip(probe_names, probes):
        divergence = base.first_divergence(probe)
        if divergence is not None:
            return ObliviousnessVerdict(
                program=name,
                oblivious=False,
                declared=declared,
                round=divergence,
                method="traced",
                probes=len(probes),
                detail=(
                    f"probe {probe_name} diverged structurally at round "
                    f"{divergence} (base: {base.num_rounds} rounds, probe: "
                    f"{probe.num_rounds} rounds)"
                ),
            )
    return ObliviousnessVerdict(
        program=name,
        oblivious=True,
        declared=declared,
        round=None,
        method="traced",
        probes=len(probes),
        detail=(
            f"structure identical over {len(probes)} probes "
            f"({base.num_rounds} rounds)"
        ),
    )
