"""Algorithm A: one-round reconstruction of low-degeneracy graphs.

This is the Becker et al. [2] primitive both Theorem 7 and Theorem 9
consume: run on a graph of degeneracy at most k, every node broadcasts a
single O(k log n)-bit message from which *all* nodes deterministically
reconstruct the entire topology; if the degeneracy exceeds k, all nodes
learn that instead (the ``success`` flag of the paper's pseudocode).

Our encoding (DESIGN.md substitution #2): each node broadcasts its
degree plus a capacity-k BCH power-sum sketch of its neighbour set
(:mod:`repro.sketch`).  Decoding peels low-residual nodes exactly along
a degeneracy order:

* a graph of degeneracy <= k always has a node whose *residual* (not yet
  learned) neighbourhood has size <= k — its sketch decodes;
* learned edges are subtracted from both endpoint sketches, shrinking
  residuals until everything decodes.

If at some point no undecoded node has residual <= k, the input graph's
degeneracy exceeds k (failure is *certified*: the peeling order of a
k-degenerate graph always makes progress).

The decoder is a pure deterministic function of the blackboard, so all
nodes compute identical results; we memoise it per blackboard to avoid
recomputing it once per node in the engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bits import BitReader, Bits, BitWriter
from repro.core.network import Context
from repro.core.phases import transmit_broadcast
from repro.graphs.graph import Graph
from repro.sketch.gf2m import GF2m, field_for_universe
from repro.sketch.set_sketch import SetSketch

__all__ = [
    "message_bits",
    "encode_neighborhood",
    "decode_blackboard",
    "reconstruct",
    "algorithm_a",
]


def _field(n: int) -> GF2m:
    return field_for_universe(n)  # elements 1..n encode vertices 0..n-1


def _degree_width(n: int) -> int:
    return max(1, (n - 1).bit_length())


def message_bits(n: int, k: int) -> int:
    """Exact broadcast size of A(·, k) on n nodes: degree + k syndromes.

    This is the O(k log n) of [2]; with bandwidth b the phase layer turns
    it into ⌈(header + message)/b⌉ rounds.
    """
    return _degree_width(n) + k * _field(n).m


def encode_neighborhood(n: int, k: int, neighbors: Sequence[int]) -> Bits:
    """The broadcast message of one node: degree, then the sketch."""
    field = _field(n)
    writer = BitWriter()
    writer.write_uint(len(neighbors), _degree_width(n))
    sketch = SetSketch(field, k, (v + 1 for v in neighbors))
    writer.write_bits(sketch.to_bits())
    return writer.getvalue()


def _parse_message(n: int, k: int, message: Bits) -> Tuple[int, SetSketch]:
    field = _field(n)
    reader = BitReader(message)
    degree = reader.read_uint(_degree_width(n))
    sketch = SetSketch.from_bits(field, k, reader.read_bits(k * field.m))
    return degree, sketch


_decode_cache: Dict[Tuple, Optional[Graph]] = {}


def decode_blackboard(
    n: int, k: int, messages: Sequence[Bits]
) -> Optional[Graph]:
    """Reconstruct the graph from all n broadcast messages, or return
    None (degeneracy > k).  Deterministic; memoised per blackboard."""
    key = (n, k, tuple(messages))
    if key in _decode_cache:
        return _decode_cache[key]
    result = _decode_blackboard_impl(n, k, messages)
    if len(_decode_cache) > 256:
        _decode_cache.clear()
    _decode_cache[key] = result
    return result


def _decode_blackboard_impl(
    n: int, k: int, messages: Sequence[Bits]
) -> Optional[Graph]:
    degrees: List[int] = []
    sketches: List[SetSketch] = []
    for message in messages:
        degree, sketch = _parse_message(n, k, message)
        degrees.append(degree)
        sketches.append(sketch)

    universe = range(1, n + 1)
    graph = Graph(n)
    known = [0] * n
    done = [False] * n
    remaining = n
    while remaining:
        progressed = False
        for v in range(n):
            if done[v]:
                continue
            residual = degrees[v] - known[v]
            if residual > k:
                continue
            decoded = sketches[v].decode(universe, expected_size=residual)
            if decoded is None:
                # An honest blackboard never fails here; an inconsistent
                # one (possible only outside the engine) is a failure.
                return None
            done[v] = True
            remaining -= 1
            progressed = True
            for element in decoded:
                u = element - 1
                graph.add_edge(v, u)
                known[u] += 1
                sketches[u].toggle(v + 1)
            sketches[v] = SetSketch(sketches[v].field, k)  # now empty
        if not progressed:
            return None  # certified: degeneracy > k
    return graph


def reconstruct(graph: Graph, k: int) -> Optional[Graph]:
    """Offline round-trip (no engine): encode all nodes, decode."""
    n = graph.n
    messages = [
        encode_neighborhood(n, k, sorted(graph.neighbors(v))) for v in range(n)
    ]
    return decode_blackboard(n, k, messages)


def algorithm_a(ctx: Context, neighbors: Sequence[int], k: int):
    """One execution of A(G, k) from inside a node program (sub-generator).

    ``neighbors`` is this node's adjacency list in G (which may be a
    sampled subgraph, per Theorem 9).  Returns (success, graph-or-None).
    """
    n = ctx.n
    message = encode_neighborhood(n, k, neighbors)
    limit = message_bits(n, k)
    received = yield from transmit_broadcast(ctx, message, max_bits=limit)
    blackboard = []
    for v in range(n):
        if v == ctx.node_id:
            blackboard.append(message)
        else:
            blackboard.append(received[v])
    graph = decode_blackboard(n, k, blackboard)
    return (graph is not None), graph
