"""Theorem 9: H-subgraph detection without knowing ex(n, H).

The algorithm of Section 3.1 for patterns whose Turán number is unknown:

1. Every node v draws X_v uniformly from {0..N-1} (N = largest power of
   two <= n) and broadcasts it (O(log n / b) rounds).  This defines the
   nested random subgraphs G_0 ⊇ G_1 ⊇ ... ⊇ G_ℓ with
   E_j = { {u,v} ∈ E : X_u ≡ X_v (mod 2^j) }  —  every node knows which
   of *its* edges survive in each G_j.
2. For exponentially increasing degeneracy guesses k_i = 2^i and each
   sampling level j = 0..ℓ, run A(G_j, k_i).  When a level decodes:
   a copy of H found in G_j is reported (always sound — G_j ⊆ G); a
   *negative* is accepted only at j = 0, where the decode is exact.

Note on the paper's pseudocode: the printed loop returns "no
H-subgraph" from the first successful level of *any* sparsity, but an
over-sparse sample (e.g. G_j of K_n with k_i = 2) decodes trivially
while losing every copy of H — so read literally it answers incorrectly
on dense inputs at any scale.  The accompanying text makes clear that a
negative should only be trusted when the sample's degeneracy is still
>= 4·ex(n,H)/n; since ex(n,H) is exactly what the algorithm does not
know, the sound realisation is the one above: negatives only from
level 0.  Under it, Theorem 9's statement holds verbatim — H-free
inputs terminate (deterministically correct) after the doubling search
reaches the true degeneracy <= 4·ex(n,H)/n, i.e. O(ex·log²n/(n·b))
rounds, and H-containing inputs are answered w.h.p. as soon as a
still-dense sample decodes.  Pass ``accept_sampled_negatives=True`` to
run the pseudocode as printed (used by the tests to demonstrate the
discrepancy).

G_0 = G itself, so the loop always terminates: once k_i exceeds the true
degeneracy, A(G_0, k_i) succeeds and the answer is exact.

:func:`sampled_degeneracy_profile` exposes the Lemma 8 concentration
statement (degeneracy of G_j ≈ k·2^{-j}) for direct empirical testing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.bits import Bits
from repro.core.network import Mode, Network, RunResult
from repro.core.phases import transmit_broadcast
from repro.graphs.degeneracy import degeneracy
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.subgraph_iso import find_embedding
from repro.subgraphs.becker import algorithm_a

__all__ = [
    "AdaptiveOutcome",
    "adaptive_program",
    "adaptive_detect",
    "sample_subgraph_edges",
    "sampled_degeneracy_profile",
]


@dataclass(frozen=True)
class AdaptiveOutcome:
    contains: bool
    witness: Optional[FrozenSet[Edge]]
    k_used: int
    level_used: int


def sample_subgraph_edges(
    graph: Graph, labels: Sequence[int], level: int
) -> Graph:
    """The sampled subgraph G_j: keep {u,v} iff X_u ≡ X_v (mod 2^j)."""
    modulus = 1 << level
    sampled = Graph(graph.n)
    for u, v in graph.edges():
        if (labels[u] - labels[v]) % modulus == 0:
            sampled.add_edge(u, v)
    return sampled


def sampled_degeneracy_profile(
    graph: Graph, labels: Sequence[int]
) -> List[Tuple[int, int]]:
    """(level j, degeneracy of G_j) for all levels — the quantity Lemma 8
    says concentrates around k·2^{-j}."""
    levels = max(1, (graph.n).bit_length() - 1)
    return [
        (j, degeneracy(sample_subgraph_edges(graph, labels, j)))
        for j in range(levels + 1)
    ]


def adaptive_program(pattern: Graph, accept_sampled_negatives: bool = False):
    """Theorem 9's node program; ``ctx.input`` = sorted adjacency list.

    ``accept_sampled_negatives`` switches to the paper's literal
    pseudocode (trust "no H" from any successful level) — unsound on
    dense inputs; see the module docstring.
    """

    def program(ctx):
        n = ctx.n
        ell = max(0, n.bit_length() - 1)  # N = 2^ell <= n
        big_n = 1 << ell

        # Step 1: broadcast the random labels X_v.
        my_label = ctx.rng.randrange(big_n)
        label_bits = max(1, ell)
        received = yield from transmit_broadcast(
            ctx, Bits.from_uint(my_label, label_bits), max_bits=label_bits
        )
        labels: Dict[int, int] = {ctx.node_id: my_label}
        for v, payload in received.items():
            labels[v] = payload.to_uint()

        # Our adjacency in each sampled level (only our own edges are
        # needed — exactly the local knowledge the paper uses).
        def my_neighbors(level: int) -> List[int]:
            modulus = 1 << level
            return [
                u
                for u in ctx.input
                if (labels[u] - labels[ctx.node_id]) % modulus == 0
            ]

        # Step 2: doubling guesses, all sampling levels.
        max_i = max(1, math.ceil(math.log2(max(2, n))))
        for i in range(1, max_i + 1):
            k_i = min(1 << i, max(1, n - 1))
            for j in range(ell + 1):
                success, reconstructed = yield from algorithm_a(
                    ctx, my_neighbors(j), k_i
                )
                if not success:
                    continue
                embedding = find_embedding(reconstructed, pattern)
                if embedding is not None:
                    witness = frozenset(
                        canonical_edge(embedding[u], embedding[v])
                        for u, v in pattern.edges()
                    )
                    return AdaptiveOutcome(True, witness, k_i, j)
                if j == 0 or accept_sampled_negatives:
                    return AdaptiveOutcome(False, None, k_i, j)
                # A sparser-level success without H proves nothing, and
                # every sparser level also decodes; move to the next k.
                break
        # Unreachable: k_i reaches n-1 >= degeneracy(G_0).
        raise AssertionError("adaptive loop failed to terminate")

    return program


def adaptive_detect(
    graph: Graph,
    pattern: Graph,
    bandwidth: int,
    seed: int = 0,
    accept_sampled_negatives: bool = False,
    record_transcript: bool = False,
    engine: str = "fast",
) -> Tuple[AdaptiveOutcome, RunResult]:
    """Run Theorem 9's protocol on ``graph`` in CLIQUE-BCAST."""
    network = Network(
        n=graph.n,
        bandwidth=bandwidth,
        mode=Mode.BROADCAST,
        seed=seed,
        record_transcript=record_transcript,
        engine=engine,
    )
    inputs = [sorted(graph.neighbors(v)) for v in range(graph.n)]
    result = network.run(
        adaptive_program(pattern, accept_sampled_negatives), inputs=inputs
    )
    return result.outputs[0], result
