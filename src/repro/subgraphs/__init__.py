"""Subgraph detection in CLIQUE-BCAST (Section 3.1 upper bounds)."""

from repro.subgraphs.adaptive import (
    AdaptiveOutcome,
    adaptive_detect,
    adaptive_program,
    sample_subgraph_edges,
    sampled_degeneracy_profile,
)
from repro.subgraphs.becker import (
    algorithm_a,
    decode_blackboard,
    encode_neighborhood,
    message_bits,
    reconstruct,
)
from repro.subgraphs.detection import (
    DetectionOutcome,
    detect_subgraph,
    detection_program,
    full_learning_detect,
    full_learning_program,
)

__all__ = [
    "message_bits",
    "encode_neighborhood",
    "decode_blackboard",
    "reconstruct",
    "algorithm_a",
    "DetectionOutcome",
    "detection_program",
    "detect_subgraph",
    "full_learning_program",
    "full_learning_detect",
    "AdaptiveOutcome",
    "adaptive_program",
    "adaptive_detect",
    "sample_subgraph_edges",
    "sampled_degeneracy_profile",
]
