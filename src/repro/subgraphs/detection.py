"""H-subgraph detection in CLIQUE-BCAST (Theorem 7) plus baselines.

Theorem 7: for fixed H, H-subgraph detection runs in
O(ex(n,H)/n · log n / b) rounds — guess the degeneracy bound
k = 4·ex(n,H)/n from Claim 6, run the one-round reconstruction A(G, k)
(chunked into b-bit frames), and search the reconstructed graph locally.

Soundness when reconstruction *fails* follows from Claim 6's
contrapositive: failure certifies degeneracy > 4·ex(n,H)/n, and any
graph of degeneracy > 4·ex(n,H)/n contains a subgraph of minimum degree
> 4·ex(n,H)/n >= 2·ex(n',H)·(n'/n)·(2/n')... i.e. more than ex(n', H)
edges on its n' vertices, hence a copy of H.  So the protocol always
answers the decision problem correctly; a witness is produced whenever
the reconstruction succeeds.

:func:`full_learning_program` is the trivial O(n log n / b) baseline the
paper mentions for χ(H) >= 3: every node broadcasts its adjacency row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.core.bits import Bits
from repro.core.compiled import declare_schedule_digest, mark_oblivious
from repro.core.network import Mode, Network, RunResult
from repro.core.phases import transmit_broadcast
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.subgraph_iso import find_embedding
from repro.graphs.turan import degeneracy_guess, ex_upper
from repro.subgraphs.becker import algorithm_a

__all__ = [
    "DetectionOutcome",
    "detection_program",
    "detect_subgraph",
    "full_learning_program",
    "full_learning_detect",
    "full_learning_detect_many",
]


@dataclass(frozen=True)
class DetectionOutcome:
    """What each node outputs: the decision, an optional witness (edge
    set of a copy of H), and whether the answer came from a successful
    reconstruction or from the density (degeneracy-overflow) argument."""

    contains: bool
    witness: Optional[FrozenSet[Edge]]
    via_density: bool


def _witness(graph: Graph, pattern: Graph) -> Optional[FrozenSet[Edge]]:
    embedding = find_embedding(graph, pattern)
    if embedding is None:
        return None
    return frozenset(
        canonical_edge(embedding[u], embedding[v]) for u, v in pattern.edges()
    )


def detection_program(pattern: Graph, ex_bound: Optional[int] = None):
    """Theorem 7's node program.  ``ctx.input`` = sorted adjacency list."""

    def program(ctx):
        k = degeneracy_guess(
            ctx.n,
            pattern,
            ex_upper(ctx.n, pattern) if ex_bound is None else ex_bound,
        )
        k = min(k, max(1, ctx.n - 1))
        success, reconstructed = yield from algorithm_a(ctx, ctx.input, k)
        if not success:
            # Degeneracy > 4·ex(n,H)/n certifies a copy of H exists.
            return DetectionOutcome(contains=True, witness=None, via_density=True)
        witness = _witness(reconstructed, pattern)
        return DetectionOutcome(
            contains=witness is not None, witness=witness, via_density=False
        )

    return program


def detect_subgraph(
    graph: Graph,
    pattern: Graph,
    bandwidth: int,
    ex_bound: Optional[int] = None,
    seed: int = 0,
    record_transcript: bool = False,
    engine: str = "fast",
) -> Tuple[DetectionOutcome, RunResult]:
    """Run Theorem 7's protocol on ``graph`` in CLIQUE-BCAST."""
    network = Network(
        n=graph.n,
        bandwidth=bandwidth,
        mode=Mode.BROADCAST,
        seed=seed,
        record_transcript=record_transcript,
        engine=engine,
    )
    inputs = [sorted(graph.neighbors(v)) for v in range(graph.n)]
    result = network.run(detection_program(pattern, ex_bound), inputs=inputs)
    return result.outputs[0], result


def full_learning_program(pattern: Graph):
    """The trivial baseline: broadcast the full adjacency row (n bits per
    node, O(n/b) rounds) and search locally.  For χ(H) >= 3 this matches
    Theorem 7's bound up to the log factor, as the paper notes."""

    def program(ctx):
        n = ctx.n
        row = Bits.from_bools([u in ctx.input for u in range(n)])
        received = yield from transmit_broadcast(ctx, row, max_bits=n)
        graph = Graph(n)
        rows = {v: payload.to_uint() for v, payload in received.items()}
        rows[ctx.node_id] = row.to_uint()
        for v in range(n):
            # Walk only the set bits of the row (bit 0 of the Bits
            # payload is the MSB of its uint, hence u = n-1-position).
            value = rows[v]
            while value:
                low = value & -value
                u = n - low.bit_length()
                if u != v:
                    graph.add_edge(v, u)
                value ^= low
        witness = _witness(graph, pattern)
        return DetectionOutcome(
            contains=witness is not None, witness=witness, via_density=False
        )

    # Every node broadcasts a full n-bit row every run: the phase
    # structure depends only on n, never on the edges — so the
    # persistent-cache identity needs no parts beyond the name (n is
    # part of the cache key material).
    declare_schedule_digest(program, "full_learning")
    return mark_oblivious(program)


def full_learning_detect(
    graph: Graph,
    pattern: Graph,
    bandwidth: int,
    seed: int = 0,
    record_transcript: bool = False,
    engine: str = "fast",
) -> Tuple[DetectionOutcome, RunResult]:
    network = Network(
        n=graph.n,
        bandwidth=bandwidth,
        mode=Mode.BROADCAST,
        seed=seed,
        record_transcript=record_transcript,
        engine=engine,
    )
    inputs = [graph.neighbors(v) for v in range(graph.n)]
    result = network.run(full_learning_program(pattern), inputs=inputs)
    return result.outputs[0], result


def full_learning_detect_many(
    graphs: Sequence[Graph],
    pattern: Graph,
    bandwidth: int,
    seed: int = 0,
) -> Tuple[List[DetectionOutcome], List[RunResult]]:
    """Full-learning detection over many same-size graphs with one
    compiled schedule: the broadcast-phase structure depends only on
    ``n``, so the first instance records it and the rest replay via
    :meth:`~repro.core.network.Network.run_many`.  Per-instance results
    are byte-identical to :func:`full_learning_detect`."""
    if not graphs:
        return [], []
    n = graphs[0].n
    for graph in graphs:
        if graph.n != n:
            raise ValueError("full_learning_detect_many needs same-size graphs")
    network = Network(n=n, bandwidth=bandwidth, mode=Mode.BROADCAST, seed=seed)
    program = full_learning_program(pattern)
    inputs_list = [
        [graph.neighbors(v) for v in range(n)] for graph in graphs
    ]
    results = network.run_many(program, inputs_list)
    return [result.outputs[0] for result in results], results
