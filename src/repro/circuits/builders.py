"""Circuit families used by the simulation benchmarks and tests.

These realise the circuit classes Section 2 connects to the congested
clique: parity (the hard function for bounded-depth threshold circuits),
threshold/majority circuits (TC0), MOD_m circuits (CC[m] / ACC), plus
random layered circuits for property testing.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.circuits.circuit import Circuit
from repro.circuits.gates import (
    AND,
    NOT,
    OR,
    XOR,
    Gate,
    MajorityGate,
    ModGate,
    ThresholdGate,
)

__all__ = [
    "parity_tree",
    "and_tree",
    "or_tree",
    "majority_circuit",
    "mod_tree",
    "cc_parity_circuit",
    "threshold_parity_circuit",
    "inner_product_circuit",
    "random_layered_circuit",
]


def _tree_reduce(circuit: Circuit, gate_factory, leaves: Sequence[int], fan_in: int) -> int:
    """Reduce ``leaves`` with layers of ``fan_in``-ary gates; returns the
    root gate id."""
    if fan_in < 2:
        raise ValueError("fan-in must be at least 2")
    level = list(leaves)
    while len(level) > 1:
        nxt: List[int] = []
        for i in range(0, len(level), fan_in):
            group = level[i : i + fan_in]
            if len(group) == 1:
                nxt.append(group[0])
            else:
                nxt.append(circuit.add_gate(gate_factory(), group))
        level = nxt
    return level[0]


def parity_tree(n_inputs: int, fan_in: int = 2) -> Circuit:
    """Parity of n inputs as a tree of unbounded-fan-in XOR gates with
    the given branching; depth ≈ log_{fan_in} n."""
    circuit = Circuit()
    inputs = circuit.add_inputs(n_inputs)
    root = _tree_reduce(circuit, lambda: XOR, inputs, fan_in)
    circuit.mark_output(root)
    return circuit


def and_tree(n_inputs: int, fan_in: int = 2) -> Circuit:
    circuit = Circuit()
    inputs = circuit.add_inputs(n_inputs)
    root = _tree_reduce(circuit, lambda: AND, inputs, fan_in)
    circuit.mark_output(root)
    return circuit


def or_tree(n_inputs: int, fan_in: int = 2) -> Circuit:
    circuit = Circuit()
    inputs = circuit.add_inputs(n_inputs)
    root = _tree_reduce(circuit, lambda: OR, inputs, fan_in)
    circuit.mark_output(root)
    return circuit


def majority_circuit(n_inputs: int) -> Circuit:
    """Depth-1 majority: one unbounded-fan-in threshold gate (TC0)."""
    circuit = Circuit()
    inputs = circuit.add_inputs(n_inputs)
    root = circuit.add_gate(MajorityGate(n_inputs), inputs)
    circuit.mark_output(root)
    return circuit


def mod_tree(n_inputs: int, modulus: int, fan_in: int) -> Circuit:
    """A tree of MOD_m gates (a CC[m] circuit).  Note MOD gates output
    "sum ≡ 0", so the tree computes an iterated MOD-of-MODs predicate —
    what matters for the benchmarks is its shape (depth, wires,
    O(1)-separable gates), mirroring the CC[m] circuits of Section 2."""
    circuit = Circuit()
    inputs = circuit.add_inputs(n_inputs)
    root = _tree_reduce(circuit, lambda: ModGate(modulus), inputs, fan_in)
    circuit.mark_output(root)
    return circuit


def cc_parity_circuit(n_inputs: int) -> Circuit:
    """Parity from MOD2 gates: MOD2 computes NOT-parity, so parity =
    MOD2(MOD2(x), 0-padding trick) — here simply MOD2 followed by NOT."""
    circuit = Circuit()
    inputs = circuit.add_inputs(n_inputs)
    mod = circuit.add_gate(ModGate(2), inputs)
    root = circuit.add_gate(NOT, [mod])
    circuit.mark_output(root)
    return circuit


def threshold_parity_circuit(n_inputs: int) -> Circuit:
    """Parity as a depth-2 unweighted threshold circuit: exact-count
    gates EXACT_k = THR>=k AND NOT THR>=k+1 for odd k, OR-ed together.
    This is the classic TC0 parity circuit with O(n²) wires — the object
    of the Impagliazzo–Paturi–Saks wire lower bound discussed in
    Section 2."""
    circuit = Circuit()
    inputs = circuit.add_inputs(n_inputs)
    odd_detectors: List[int] = []
    for k in range(1, n_inputs + 1, 2):
        at_least_k = circuit.add_gate(ThresholdGate(k), inputs)
        if k + 1 <= n_inputs:
            at_least_k1 = circuit.add_gate(ThresholdGate(k + 1), inputs)
            not_k1 = circuit.add_gate(NOT, [at_least_k1])
            odd_detectors.append(circuit.add_gate(AND, [at_least_k, not_k1]))
        else:
            odd_detectors.append(at_least_k)
    root = (
        odd_detectors[0]
        if len(odd_detectors) == 1
        else circuit.add_gate(OR, odd_detectors)
    )
    circuit.mark_output(root)
    return circuit


def inner_product_circuit(half_n: int) -> Circuit:
    """IP2: parity of pairwise ANDs of x (first half) and y (second
    half) — the classic hard function of communication complexity."""
    circuit = Circuit()
    xs = circuit.add_inputs(half_n)
    ys = circuit.add_inputs(half_n)
    products = [circuit.add_gate(AND, [x, y]) for x, y in zip(xs, ys)]
    root = circuit.add_gate(XOR, products)
    circuit.mark_output(root)
    return circuit


def random_layered_circuit(
    n_inputs: int,
    depth: int,
    width: int,
    rng: random.Random,
    max_fan_in: int = 4,
    gate_pool: Optional[Sequence[Gate]] = None,
) -> Circuit:
    """A random circuit for property tests: ``depth`` layers of ``width``
    gates, each wired to random gates in earlier layers."""
    if gate_pool is None:
        gate_pool = [AND, OR, XOR, ModGate(3), ThresholdGate(2)]
    circuit = Circuit()
    previous = circuit.add_inputs(n_inputs)
    reachable = list(previous)
    for _ in range(depth):
        layer: List[int] = []
        for _ in range(width):
            fan_in = rng.randint(1, min(max_fan_in, len(reachable)))
            sources = rng.sample(reachable, fan_in)
            gate = rng.choice(gate_pool)
            if gate.arity() == 1:
                sources = sources[:1]
            layer.append(circuit.add_gate(gate, sources))
        reachable.extend(layer)
        previous = layer
    for gid in previous:
        circuit.mark_output(gid)
    return circuit
