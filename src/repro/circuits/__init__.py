"""Circuit substrate: gates with b-separability, DAG circuits, builders,
and F2 arithmetic circuits for matrix multiplication."""

from repro.circuits.circuit import CONST_KIND, GATE_KIND, INPUT_KIND, Circuit, GateNode
from repro.circuits.gates import (
    AND,
    NOT,
    OR,
    XOR,
    AndGate,
    Gate,
    GenericGate,
    MajorityGate,
    ModGate,
    NotGate,
    OrGate,
    ThresholdGate,
    XorGate,
)
from repro.circuits import arithmetic, builders, transforms

__all__ = [
    "Circuit",
    "GateNode",
    "INPUT_KIND",
    "CONST_KIND",
    "GATE_KIND",
    "Gate",
    "AndGate",
    "OrGate",
    "NotGate",
    "XorGate",
    "ModGate",
    "ThresholdGate",
    "MajorityGate",
    "GenericGate",
    "AND",
    "OR",
    "NOT",
    "XOR",
    "builders",
    "arithmetic",
    "transforms",
]
