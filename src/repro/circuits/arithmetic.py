"""Arithmetic circuits over F2 for matrix multiplication (Section 2.1).

The paper's conditional triangle-detection result translates small
arithmetic circuits for matrix multiplication into fast CLIQUE-UCAST
protocols via the Theorem 2 simulation.  Over F2, addition is XOR and
multiplication is AND, so an arithmetic circuit *is* a Boolean circuit
of O(1)-separable gates.

Two constructions are provided:

* :func:`matmul_circuit_naive` — the school method: k³ AND gates and k²
  unbounded-fan-in XOR gates, depth 2, Θ(k³) wires.
* :func:`matmul_circuit_strassen` — Strassen's recursion (exponent
  log2 7 ≈ 2.81): Θ(k^{2.81}) wires and O(log k) depth, standing in for
  the "size O(n^{2+ε}) circuits" of the conjecture.  The block structure
  mirrors the Bürgisser–Clausen–Shokrollahi Prop. 15.1 argument the
  paper cites for getting few wires *and* small depth.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuits.circuit import Circuit
from repro.circuits.gates import AND, XOR

__all__ = [
    "matmul_circuit_naive",
    "matmul_circuit_strassen",
    "matrix_inputs",
    "pack_matrices",
    "unpack_product",
]

Matrix = List[List[int]]  # gate ids


def matrix_inputs(circuit: Circuit, size: int) -> Matrix:
    """Add size² fresh inputs arranged row-major as a matrix of gate ids."""
    return [[circuit.add_input() for _ in range(size)] for _ in range(size)]


def _xor_of(circuit: Circuit, sources: Sequence[int]) -> int:
    if len(sources) == 1:
        return sources[0]
    return circuit.add_gate(XOR, list(sources))


def _add_mats(circuit: Circuit, x: Matrix, y: Matrix) -> Matrix:
    return [
        [_xor_of(circuit, [x[i][j], y[i][j]]) for j in range(len(x))]
        for i in range(len(x))
    ]


def _mult_naive(circuit: Circuit, a: Matrix, b: Matrix) -> Matrix:
    size = len(a)
    result: Matrix = []
    for i in range(size):
        row: List[int] = []
        for j in range(size):
            products = [
                circuit.add_gate(AND, [a[i][k], b[k][j]]) for k in range(size)
            ]
            row.append(_xor_of(circuit, products))
        result.append(row)
    return result


def _split(mat: Matrix) -> List[Matrix]:
    half = len(mat) // 2
    return [
        [row[:half] for row in mat[:half]],
        [row[half:] for row in mat[:half]],
        [row[:half] for row in mat[half:]],
        [row[half:] for row in mat[half:]],
    ]


def _join(c11: Matrix, c12: Matrix, c21: Matrix, c22: Matrix) -> Matrix:
    top = [r1 + r2 for r1, r2 in zip(c11, c12)]
    bottom = [r1 + r2 for r1, r2 in zip(c21, c22)]
    return top + bottom


def _mult_strassen(circuit: Circuit, a: Matrix, b: Matrix, cutoff: int) -> Matrix:
    size = len(a)
    if size <= cutoff:
        return _mult_naive(circuit, a, b)
    a11, a12, a21, a22 = _split(a)
    b11, b12, b21, b22 = _split(b)
    # Over F2 subtraction equals addition (XOR).
    m1 = _mult_strassen(circuit, _add_mats(circuit, a11, a22), _add_mats(circuit, b11, b22), cutoff)
    m2 = _mult_strassen(circuit, _add_mats(circuit, a21, a22), b11, cutoff)
    m3 = _mult_strassen(circuit, a11, _add_mats(circuit, b12, b22), cutoff)
    m4 = _mult_strassen(circuit, a22, _add_mats(circuit, b21, b11), cutoff)
    m5 = _mult_strassen(circuit, _add_mats(circuit, a11, a12), b22, cutoff)
    m6 = _mult_strassen(circuit, _add_mats(circuit, a21, a11), _add_mats(circuit, b11, b12), cutoff)
    m7 = _mult_strassen(circuit, _add_mats(circuit, a12, a22), _add_mats(circuit, b21, b22), cutoff)
    half = len(m1)
    c11 = [
        [_xor_of(circuit, [m1[i][j], m4[i][j], m5[i][j], m7[i][j]]) for j in range(half)]
        for i in range(half)
    ]
    c12 = [
        [_xor_of(circuit, [m3[i][j], m5[i][j]]) for j in range(half)]
        for i in range(half)
    ]
    c21 = [
        [_xor_of(circuit, [m2[i][j], m4[i][j]]) for j in range(half)]
        for i in range(half)
    ]
    c22 = [
        [_xor_of(circuit, [m1[i][j], m2[i][j], m3[i][j], m6[i][j]]) for j in range(half)]
        for i in range(half)
    ]
    return _join(c11, c12, c21, c22)


def _padded_size(size: int) -> int:
    padded = 1
    while padded < size:
        padded *= 2
    return padded


def _pad_matrix(circuit: Circuit, mat: Matrix, padded: int) -> Matrix:
    size = len(mat)
    if padded == size:
        return mat
    zero = circuit.add_const(False)
    out = [row + [zero] * (padded - size) for row in mat]
    out.extend([[zero] * padded for _ in range(padded - size)])
    return out


def matmul_circuit_naive(size: int) -> Circuit:
    """C = A·B over F2, school method.  Inputs: A row-major, then B
    row-major; outputs: C row-major."""
    circuit = Circuit()
    a = matrix_inputs(circuit, size)
    b = matrix_inputs(circuit, size)
    c = _mult_naive(circuit, a, b)
    for row in c:
        for gid in row:
            circuit.mark_output(gid)
    return circuit


def matmul_circuit_strassen(size: int, cutoff: int = 2) -> Circuit:
    """C = A·B over F2 by Strassen's recursion (padded to a power of 2)."""
    circuit = Circuit()
    a = matrix_inputs(circuit, size)
    b = matrix_inputs(circuit, size)
    padded = _padded_size(size)
    a = _pad_matrix(circuit, a, padded)
    b = _pad_matrix(circuit, b, padded)
    c = _mult_strassen(circuit, a, b, cutoff)
    for i in range(size):
        for j in range(size):
            circuit.mark_output(c[i][j])
    return circuit


def pack_matrices(a_rows: Sequence[Sequence[int]], b_rows: Sequence[Sequence[int]]) -> List[bool]:
    """Flatten two 0/1 matrices into the circuit input order."""
    flat: List[bool] = []
    for row in a_rows:
        flat.extend(bool(x) for x in row)
    for row in b_rows:
        flat.extend(bool(x) for x in row)
    return flat


def unpack_product(outputs: Sequence[bool], size: int) -> List[List[int]]:
    """Reshape the circuit's outputs back into a size×size 0/1 matrix."""
    return [
        [1 if outputs[i * size + j] else 0 for j in range(size)]
        for i in range(size)
    ]
