"""DAG circuits with the paper's complexity measures.

A circuit is a DAG of gates (Section 2): inputs are source nodes,
outputs are marked gates, the *depth* is the longest input-to-output
path, and the *wire count* is the number of edges.  ``layers()``
computes exactly the layering used in Theorem 2's simulation:
L_0 = gates with no inputs, and L_r = gates whose inputs all lie in
earlier layers.

Gate ids are dense integers assigned in insertion order; inputs must
already exist when a gate is added, which guarantees acyclicity by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.gates import Gate

__all__ = ["GateNode", "Circuit", "INPUT_KIND", "CONST_KIND", "GATE_KIND"]

INPUT_KIND = "input"
CONST_KIND = "const"
GATE_KIND = "gate"


@dataclass(frozen=True)
class GateNode:
    gate_id: int
    kind: str
    gate: Optional[Gate]
    inputs: Tuple[int, ...]
    const_value: bool = False
    input_index: int = -1


class Circuit:
    """A Boolean circuit as a DAG of :class:`GateNode`\\ s."""

    def __init__(self) -> None:
        self._nodes: List[GateNode] = []
        self._outputs: List[int] = []
        self._input_ids: List[int] = []
        self._fan_out: List[int] = []
        self._layers_cache: Optional[List[List[int]]] = None

    # -- construction ----------------------------------------------------

    def add_input(self) -> int:
        gid = len(self._nodes)
        self._nodes.append(
            GateNode(gid, INPUT_KIND, None, (), input_index=len(self._input_ids))
        )
        self._fan_out.append(0)
        self._input_ids.append(gid)
        self._layers_cache = None
        return gid

    def add_inputs(self, count: int) -> List[int]:
        return [self.add_input() for _ in range(count)]

    def add_const(self, value: bool) -> int:
        gid = len(self._nodes)
        self._nodes.append(GateNode(gid, CONST_KIND, None, (), const_value=bool(value)))
        self._fan_out.append(0)
        self._layers_cache = None
        return gid

    def add_gate(self, gate: Gate, inputs: Sequence[int]) -> int:
        gid = len(self._nodes)
        for source in inputs:
            if not 0 <= source < gid:
                raise ValueError(
                    f"gate {gid} references nonexistent input {source}"
                )
        arity = gate.arity()
        if arity is not None and len(inputs) != arity:
            raise ValueError(
                f"gate {gate!r} has arity {arity}, got {len(inputs)} inputs"
            )
        if not inputs:
            raise ValueError("non-input gates must have at least one input")
        self._nodes.append(GateNode(gid, GATE_KIND, gate, tuple(inputs)))
        self._fan_out.append(0)
        for source in inputs:
            self._fan_out[source] += 1
        self._layers_cache = None
        return gid

    def mark_output(self, gate_id: int) -> None:
        self.node(gate_id)
        self._outputs.append(gate_id)

    # -- queries ----------------------------------------------------------

    def node(self, gate_id: int) -> GateNode:
        if not 0 <= gate_id < len(self._nodes):
            raise ValueError(f"no gate with id {gate_id}")
        return self._nodes[gate_id]

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> Sequence[GateNode]:
        return self._nodes

    @property
    def outputs(self) -> List[int]:
        return list(self._outputs)

    @property
    def input_ids(self) -> List[int]:
        return list(self._input_ids)

    @property
    def num_inputs(self) -> int:
        return len(self._input_ids)

    def fan_in(self, gate_id: int) -> int:
        return len(self.node(gate_id).inputs)

    def fan_out(self, gate_id: int) -> int:
        return self._fan_out[gate_id]

    def weight(self, gate_id: int) -> int:
        """w(G) = |in(G)| + |out(G)| — the measure driving Theorem 2's
        heavy/light split."""
        return self.fan_in(gate_id) + self.fan_out(gate_id)

    def wire_count(self) -> int:
        """Number of wires N (edges of the DAG)."""
        return sum(len(node.inputs) for node in self._nodes)

    def layers(self) -> List[List[int]]:
        """The paper's layering: L_0 = sources; L_r = gates whose inputs
        all lie in strictly earlier layers."""
        if self._layers_cache is not None:
            return self._layers_cache
        layer_of: Dict[int, int] = {}
        layers: List[List[int]] = []
        for node in self._nodes:
            if node.kind in (INPUT_KIND, CONST_KIND):
                level = 0
            else:
                level = 1 + max(layer_of[src] for src in node.inputs)
            layer_of[node.gate_id] = level
            while len(layers) <= level:
                layers.append([])
            layers[level].append(node.gate_id)
        self._layers_cache = layers
        return layers

    def depth(self) -> int:
        """Longest path from a source to any gate (= number of non-input
        layers)."""
        return len(self.layers()) - 1

    def max_summary_width(self) -> int:
        """Largest separability parameter over all gates — the b of
        Definition 1 actually needed by this circuit."""
        width = 1
        for node in self._nodes:
            if node.kind == GATE_KIND:
                width = max(width, node.gate.summary_width(len(node.inputs)))
        return width

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, input_values: Sequence[bool]) -> Dict[int, bool]:
        """Direct (non-distributed) evaluation; returns value of every
        gate.  This is the ground truth the simulation is tested against."""
        if len(input_values) != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} inputs, got {len(input_values)}"
            )
        values: Dict[int, bool] = {}
        for node in self._nodes:
            if node.kind == INPUT_KIND:
                values[node.gate_id] = bool(input_values[node.input_index])
            elif node.kind == CONST_KIND:
                values[node.gate_id] = node.const_value
            else:
                values[node.gate_id] = node.gate.compute(
                    [values[src] for src in node.inputs]
                )
        return values

    def evaluate_outputs(self, input_values: Sequence[bool]) -> List[bool]:
        values = self.evaluate(input_values)
        return [values[gid] for gid in self._outputs]

    def stats(self) -> Dict[str, int]:
        return {
            "gates": len(self._nodes),
            "inputs": self.num_inputs,
            "outputs": len(self._outputs),
            "wires": self.wire_count(),
            "depth": self.depth(),
            "max_summary_width": self.max_summary_width(),
        }

    def __repr__(self) -> str:
        return (
            f"Circuit(gates={len(self._nodes)}, wires={self.wire_count()}, "
            f"depth={self.depth()})"
        )
