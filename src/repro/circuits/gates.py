"""Gate types and their b-separability decompositions (Definition 1).

The paper's circuit simulation (Theorem 2) relies on gates being
*b-separable*: for any partition (I_1..I_k) of the gate's inputs there
are b-bit summaries g_j of each part and a combiner h with
f(x) = h(g_1(x_{I_1}), ..., g_k(x_{I_k})).

Each gate class here implements its own decomposition:

=================  =========================  =======================
gate               summary                    separability
=================  =========================  =======================
AND / OR / NAND    partial AND / OR           1 bit
XOR / parity       partial parity             1 bit
MOD_m              partial sum mod m          ⌈log2 m⌉ bits (O(1))
threshold          partial (weighted) sum     ⌈log2(W+1)⌉ bits
                                              (O(log n) unweighted)
generic            raw input bits             |I_j| bits (fallback)
=================  =========================  =======================

Summaries receive *indexed* values (position in the gate's input list
plus value) so that weighted gates know which weight applies.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.bits import BitReader, Bits, BitWriter

__all__ = [
    "Gate",
    "AndGate",
    "OrGate",
    "NotGate",
    "XorGate",
    "ModGate",
    "ThresholdGate",
    "MajorityGate",
    "GenericGate",
    "AND",
    "OR",
    "NOT",
    "XOR",
]

IndexedValues = Sequence[Tuple[int, bool]]


class Gate:
    """Base class: a Boolean function with a separability decomposition."""

    name = "gate"

    def compute(self, values: Sequence[bool]) -> bool:
        raise NotImplementedError

    def arity(self) -> Optional[int]:
        """Fixed arity, or None for unbounded fan-in."""
        return None

    # -- separability ----------------------------------------------------

    def summary_width(self, fan_in: int) -> int:
        """Bits per part summary — the gate's separability parameter b."""
        raise NotImplementedError

    def partial_summary(self, part: IndexedValues, fan_in: int) -> Bits:
        raise NotImplementedError

    def combine(self, summaries: Sequence[Bits], fan_in: int) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name


class AndGate(Gate):
    name = "AND"

    def compute(self, values: Sequence[bool]) -> bool:
        return all(values)

    def summary_width(self, fan_in: int) -> int:
        return 1

    def partial_summary(self, part: IndexedValues, fan_in: int) -> Bits:
        return Bits.from_uint(1 if all(v for _, v in part) else 0, 1)

    def combine(self, summaries: Sequence[Bits], fan_in: int) -> bool:
        return all(s.to_uint() == 1 for s in summaries)


class OrGate(Gate):
    name = "OR"

    def compute(self, values: Sequence[bool]) -> bool:
        return any(values)

    def summary_width(self, fan_in: int) -> int:
        return 1

    def partial_summary(self, part: IndexedValues, fan_in: int) -> Bits:
        return Bits.from_uint(1 if any(v for _, v in part) else 0, 1)

    def combine(self, summaries: Sequence[Bits], fan_in: int) -> bool:
        return any(s.to_uint() == 1 for s in summaries)


class NotGate(Gate):
    name = "NOT"

    def compute(self, values: Sequence[bool]) -> bool:
        if len(values) != 1:
            raise ValueError("NOT takes exactly one input")
        return not values[0]

    def arity(self) -> Optional[int]:
        return 1

    def summary_width(self, fan_in: int) -> int:
        return 1

    def partial_summary(self, part: IndexedValues, fan_in: int) -> Bits:
        return Bits.from_uint(1 if part[0][1] else 0, 1)

    def combine(self, summaries: Sequence[Bits], fan_in: int) -> bool:
        return summaries[0].to_uint() == 0


class XorGate(Gate):
    """Unbounded fan-in parity (sum mod 2 == 1)."""

    name = "XOR"

    def compute(self, values: Sequence[bool]) -> bool:
        return sum(values) % 2 == 1

    def summary_width(self, fan_in: int) -> int:
        return 1

    def partial_summary(self, part: IndexedValues, fan_in: int) -> Bits:
        return Bits.from_uint(sum(v for _, v in part) % 2, 1)

    def combine(self, summaries: Sequence[Bits], fan_in: int) -> bool:
        return sum(s.to_uint() for s in summaries) % 2 == 1


class ModGate(Gate):
    """MOD_m gate per Section 2: outputs 1 iff sum(x) ≡ 0 (mod m).

    O(1)-separable for constant m — the key to the ACC/CC implications.
    """

    name = "MOD"

    def __init__(self, modulus: int) -> None:
        if modulus < 2:
            raise ValueError("modulus must be at least 2")
        self.modulus = modulus
        self.name = f"MOD{modulus}"

    def compute(self, values: Sequence[bool]) -> bool:
        return sum(values) % self.modulus == 0

    def summary_width(self, fan_in: int) -> int:
        return max(1, (self.modulus - 1).bit_length())

    def partial_summary(self, part: IndexedValues, fan_in: int) -> Bits:
        total = sum(v for _, v in part) % self.modulus
        return Bits.from_uint(total, self.summary_width(fan_in))

    def combine(self, summaries: Sequence[Bits], fan_in: int) -> bool:
        return sum(s.to_uint() for s in summaries) % self.modulus == 0


class ThresholdGate(Gate):
    """Threshold gate: 1 iff a_1 x_1 + ... + a_k x_k >= threshold.

    Unweighted threshold gates are Θ(log n)-separable (partial counts) —
    the separability class behind the TC0 implications of Section 2.
    """

    name = "THR"

    def __init__(self, threshold: int, weights: Optional[Sequence[int]] = None) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if weights is not None and any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        self.threshold = threshold
        self.weights = None if weights is None else tuple(weights)
        self.name = f"THR>={threshold}" + ("" if weights is None else "w")

    def arity(self) -> Optional[int]:
        return None if self.weights is None else len(self.weights)

    def _weight(self, index: int) -> int:
        return 1 if self.weights is None else self.weights[index]

    def _total_weight(self, fan_in: int) -> int:
        return fan_in if self.weights is None else sum(self.weights)

    def compute(self, values: Sequence[bool]) -> bool:
        total = sum(self._weight(i) for i, v in enumerate(values) if v)
        return total >= self.threshold

    def summary_width(self, fan_in: int) -> int:
        return max(1, self._total_weight(fan_in).bit_length())

    def partial_summary(self, part: IndexedValues, fan_in: int) -> Bits:
        total = sum(self._weight(i) for i, v in part if v)
        return Bits.from_uint(total, self.summary_width(fan_in))

    def combine(self, summaries: Sequence[Bits], fan_in: int) -> bool:
        return sum(s.to_uint() for s in summaries) >= self.threshold


class MajorityGate(ThresholdGate):
    """MAJ on a declared fan-in: threshold ⌈(k+1)/2⌉."""

    def __init__(self, fan_in: int) -> None:
        super().__init__(threshold=(fan_in + 2) // 2)
        self.name = f"MAJ{fan_in}"


class GenericGate(Gate):
    """Arbitrary Boolean function given by a truth-table callable; the
    fallback decomposition ships the raw input bits (|I_j|-separable)."""

    name = "GEN"

    def __init__(self, fn, arity: int, name: str = "GEN") -> None:
        self._fn = fn
        self._arity = arity
        self.name = name

    def arity(self) -> Optional[int]:
        return self._arity

    def compute(self, values: Sequence[bool]) -> bool:
        return bool(self._fn(tuple(values)))

    def summary_width(self, fan_in: int) -> int:
        # Raw values plus positions; width sized for the worst-case part
        # (the whole input).  Encoded as a fan_in-wide bitmap of values
        # plus a bitmap of which positions this part covers.
        return 2 * fan_in

    def partial_summary(self, part: IndexedValues, fan_in: int) -> Bits:
        writer = BitWriter()
        covered = 0
        values = 0
        for index, value in part:
            covered |= 1 << index
            if value:
                values |= 1 << index
        writer.write_uint(covered, fan_in)
        writer.write_uint(values, fan_in)
        return writer.getvalue()

    def combine(self, summaries: Sequence[Bits], fan_in: int) -> bool:
        assembled = [False] * fan_in
        for summary in summaries:
            reader = BitReader(summary)
            covered = reader.read_uint(fan_in)
            values = reader.read_uint(fan_in)
            for index in range(fan_in):
                if covered >> index & 1:
                    assembled[index] = bool(values >> index & 1)
        return bool(self._fn(tuple(assembled)))


# Shared singletons for the common gates.
AND = AndGate()
OR = OrGate()
NOT = NotGate()
XOR = XorGate()
