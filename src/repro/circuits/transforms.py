"""Circuit transformations: dead-gate elimination and constant folding.

The Theorem 2 simulation's cost depends on wire count (through the
s-parameter and the routing load), so shrinking circuits before
simulating them is a real optimisation, not cosmetics.  Both passes
preserve input indices and output order, and the test suite checks
behavioural equivalence on random inputs (hypothesis).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.circuits.circuit import CONST_KIND, INPUT_KIND, Circuit
from repro.circuits.gates import AndGate, Gate, OrGate

__all__ = ["eliminate_dead_gates", "fold_constants", "optimize"]


def eliminate_dead_gates(circuit: Circuit) -> Circuit:
    """Drop every gate not reachable (backwards) from an output.

    Inputs are always kept (the interface must not change); constants
    survive only if referenced.
    """
    alive = set(circuit.outputs)
    stack = list(circuit.outputs)
    while stack:
        gid = stack.pop()
        for src in circuit.node(gid).inputs:
            if src not in alive:
                alive.add(src)
                stack.append(src)

    rebuilt = Circuit()
    mapping: Dict[int, int] = {}
    for node in circuit.nodes:
        if node.kind == INPUT_KIND:
            mapping[node.gate_id] = rebuilt.add_input()
        elif node.gate_id in alive:
            if node.kind == CONST_KIND:
                mapping[node.gate_id] = rebuilt.add_const(node.const_value)
            else:
                mapping[node.gate_id] = rebuilt.add_gate(
                    node.gate, [mapping[src] for src in node.inputs]
                )
    for gid in circuit.outputs:
        rebuilt.mark_output(mapping[gid])
    return rebuilt


def _fold_gate(gate: Gate, const_values: List[Optional[bool]]) -> Optional[bool]:
    """If the gate's value is forced by its constant inputs, return it."""
    if isinstance(gate, AndGate):
        if any(v is False for v in const_values):
            return False
        if all(v is True for v in const_values):
            return True
    elif isinstance(gate, OrGate):
        if any(v is True for v in const_values):
            return True
        if all(v is False for v in const_values):
            return False
    elif all(v is not None for v in const_values):
        return gate.compute([bool(v) for v in const_values])
    return None


def fold_constants(circuit: Circuit) -> Circuit:
    """Propagate constant values through the circuit, replacing forced
    gates by constants (AND with a false input, OR with a true input,
    any gate whose inputs are all constant)."""
    rebuilt = Circuit()
    mapping: Dict[int, int] = {}
    known: Dict[int, Optional[bool]] = {}
    for node in circuit.nodes:
        if node.kind == INPUT_KIND:
            mapping[node.gate_id] = rebuilt.add_input()
            known[node.gate_id] = None
        elif node.kind == CONST_KIND:
            mapping[node.gate_id] = rebuilt.add_const(node.const_value)
            known[node.gate_id] = node.const_value
        else:
            const_values = [known[src] for src in node.inputs]
            forced = _fold_gate(node.gate, const_values)
            if forced is not None:
                mapping[node.gate_id] = rebuilt.add_const(forced)
                known[node.gate_id] = forced
            else:
                mapping[node.gate_id] = rebuilt.add_gate(
                    node.gate, [mapping[src] for src in node.inputs]
                )
                known[node.gate_id] = None
    for gid in circuit.outputs:
        rebuilt.mark_output(mapping[gid])
    return rebuilt


def optimize(circuit: Circuit) -> Circuit:
    """Constant folding followed by dead-gate elimination."""
    return eliminate_dead_gates(fold_constants(circuit))
