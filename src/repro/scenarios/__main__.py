"""CLI for the scenario matrix: ``python -m repro.scenarios``.

Runs a sweep over registered protocols × graph families × sizes ×
engines, serially or on the supervised worker pool, with optional
journaling and resume:

    # serial smoke sweep
    python -m repro.scenarios --protocols routing mst --sizes 8

    # sharded, journaled, with per-cell deadlines
    python -m repro.scenarios --workers 4 --journal sweep.jsonl \\
        --cell-timeout 120 --out sweep.json

    # after a crash/kill: replay completed cells, run the rest
    python -m repro.scenarios --workers 4 --journal sweep.jsonl --resume

    # checkpointed: long cells snapshot mid-run and retries resume
    python -m repro.scenarios --workers 4 --journal sweep.jsonl \\
        --checkpoint-dir ckpts --checkpoint-every-rounds 64

    # health-check a journal (fingerprint, torn lines, duplicates,
    # checkpoint lineage); exits non-zero on corruption
    python -m repro.scenarios --journal-verify sweep.jsonl

Exit status is non-zero when any cell mismatches the reference digest,
fails validation or execution, or diverges cross-engine — so the CLI
slots directly into CI jobs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.scenarios.families import family_names
from repro.scenarios.matrix import DEFAULT_CELL_ROUND_LIMIT, ScenarioMatrix
from repro.scenarios.registry import protocol_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run a scenario-matrix sweep (serial or sharded).",
    )
    parser.add_argument(
        "--protocols", nargs="+", default=None, metavar="NAME",
        help=f"protocols to sweep (default: all; known: {protocol_names()})",
    )
    parser.add_argument(
        "--families", nargs="+", default=["gnp", "cycle"], metavar="NAME",
        help=f"graph families (default: gnp cycle; known: {family_names()})",
    )
    parser.add_argument(
        "--sizes", nargs="+", type=int, default=[8], metavar="N",
        help="problem sizes (default: 8)",
    )
    parser.add_argument(
        "--engines", nargs="+", default=None, metavar="ENGINE",
        help="engines to run each cell on (default: all registered)",
    )
    parser.add_argument("--seed", type=int, default=0, help="sweep base seed")
    parser.add_argument(
        "--repeats", type=int, default=1, help="timing samples per cell"
    )
    parser.add_argument(
        "--verify", choices=["cross-engine"], default=None,
        help="re-run every ok cell on a witness engine and compare digests",
    )
    parser.add_argument(
        "--analyze", action="store_true",
        help="run the static verifier on every (protocol, family, n)",
    )
    parser.add_argument(
        "--round-limit", type=int, default=DEFAULT_CELL_ROUND_LIMIT,
        metavar="R",
        help="per-cell round watchdog (0 disables; default "
        f"{DEFAULT_CELL_ROUND_LIMIT})",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="W",
        help="shard cells across W supervised worker processes "
        "(default: run serially in-process)",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append every completed cell to a durable JSONL journal",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from --journal: replay its completed cells instead "
        "of re-executing them",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock deadline enforced by the supervisor "
        "(SIGKILL on expiry; pool mode only)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="K",
        help="attempts per cell before quarantine (pool mode; default 3)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="enable mid-run checkpointing: snapshots per cell under "
        "DIR; interrupted attempts resume from the newest valid one",
    )
    parser.add_argument(
        "--checkpoint-every-rounds", type=int, default=None, metavar="R",
        help="flush a snapshot every R protocol rounds",
    )
    parser.add_argument(
        "--checkpoint-every-seconds", type=float, default=None,
        metavar="SECONDS",
        help="flush a snapshot every SECONDS of wall clock",
    )
    parser.add_argument(
        "--schedule-cache", default=None, metavar="DIR",
        help="persistent compiled-schedule cache: fast/kernel engines "
        "load lane structures recorded by any previous run (or any "
        "concurrent worker) from DIR instead of re-recording",
    )
    parser.add_argument(
        "--shard-k", type=int, default=None, metavar="K",
        help="split multi-instance cells into K-instance shards that "
        "run as independent tasks (digest-identical to serial; "
        "shard size is aligned down to the delivery chunk)",
    )
    parser.add_argument(
        "--journal-verify", default=None, metavar="PATH",
        help="verify a sweep journal's integrity (fingerprint, torn "
        "lines, duplicate cells, checkpoint lineage) and exit; "
        "non-zero exit on corruption",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the full MatrixResult JSON here",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.journal_verify is not None:
        return _journal_verify(args.journal_verify)
    if args.resume and args.journal is None:
        print("--resume requires --journal", file=sys.stderr)
        return 2
    matrix = ScenarioMatrix(
        protocols=args.protocols or protocol_names(),
        families=args.families,
        sizes=args.sizes,
        engines=args.engines,
        seed=args.seed,
        repeats=args.repeats,
        verify=args.verify,
        analyze=args.analyze,
        cell_round_limit=args.round_limit or None,
    )
    result = matrix.run(
        workers=args.workers,
        journal=args.journal,
        resume_from=args.journal if args.resume else None,
        cell_timeout=args.cell_timeout,
        max_attempts=args.max_attempts,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every_rounds=args.checkpoint_every_rounds,
        checkpoint_every_seconds=args.checkpoint_every_seconds,
        schedule_cache=args.schedule_cache,
        shard_k=args.shard_k,
    )
    if args.out is not None:
        result.write(args.out)

    cells = result.cells
    ok = [c for c in cells if c.status == "ok"]
    failed = [c for c in cells if c.status == "failed"]
    unsupported = [c for c in cells if c.status == "unsupported"]
    mismatches = result.mismatches()
    quarantined = result.quarantined()
    pool = result.meta.get("pool")
    print(
        f"cells: {len(cells)} ok={len(ok)} failed={len(failed)} "
        f"unsupported={len(unsupported)} quarantined={len(quarantined)} "
        f"mismatches={len(mismatches)}"
    )
    if pool is not None:
        print(
            f"pool: executor={pool['executor']} workers={pool['workers']} "
            f"respawns={pool['respawns']} replayed={pool['replayed']}"
        )
    for report in result.fault_reports():
        print("  divergence: " + json.dumps(report, sort_keys=True))
    return 1 if mismatches else 0


def _journal_verify(path: str) -> int:
    """Health-check one sweep journal and print its report."""
    from repro.scenarios.sweep import verify_journal

    report = verify_journal(path)
    status = "ok" if report["ok"] else "CORRUPT"
    print(
        f"journal {path}: {status} fingerprint={report['fingerprint']} "
        f"cells={report['cells']} failed_attempts={report['failed_attempts']} "
        f"torn_line={report['torn_line']}"
    )
    if report["error"]:
        print(f"  error: {report['error']}")
    for key in report["duplicate_keys"]:
        print(f"  duplicate cell: {key}")
    for key, lineage in sorted(report["checkpoints"].items()):
        print(
            f"  ckpt {key}: flushes={lineage['flushes']} "
            f"last_round={lineage['last_round']} "
            f"last_digest={lineage['last_digest']} "
            f"attempts={lineage['attempts']}"
        )
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
