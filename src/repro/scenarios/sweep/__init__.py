"""Resilient sharded sweep execution.

The package behind ``ScenarioMatrix.run(workers=..., journal=...,
resume_from=..., cell_timeout=...)``: a supervised persistent worker
pool (:mod:`~repro.scenarios.sweep.pool`), the thin worker process it
drives (:mod:`~repro.scenarios.sweep.worker`), the durable JSONL
execution journal that makes sweeps resumable
(:mod:`~repro.scenarios.sweep.journal`), and the zero-copy
shared-memory transport for shard results and lane buffers
(:mod:`~repro.scenarios.sweep.shm`).
"""

from repro.scenarios.sweep.journal import (
    LoadedJournal,
    SweepJournal,
    sweep_fingerprint,
    verify_journal,
)
from repro.scenarios.sweep.pool import run_journaled_serial, run_sharded
from repro.scenarios.sweep.shm import (
    SEGMENT_PREFIX,
    fetch_payload,
    leaked_segments,
    publish_payload,
    segment_prefix,
    shm_available,
    sweep_leaked_segments,
)

__all__ = [
    "LoadedJournal",
    "SweepJournal",
    "sweep_fingerprint",
    "verify_journal",
    "run_journaled_serial",
    "run_sharded",
    "SEGMENT_PREFIX",
    "shm_available",
    "segment_prefix",
    "publish_payload",
    "fetch_payload",
    "leaked_segments",
    "sweep_leaked_segments",
]
