"""Resilient sharded sweep execution.

The package behind ``ScenarioMatrix.run(workers=..., journal=...,
resume_from=..., cell_timeout=...)``: a supervised persistent worker
pool (:mod:`~repro.scenarios.sweep.pool`), the thin worker process it
drives (:mod:`~repro.scenarios.sweep.worker`), and the durable JSONL
execution journal that makes sweeps resumable
(:mod:`~repro.scenarios.sweep.journal`).
"""

from repro.scenarios.sweep.journal import (
    LoadedJournal,
    SweepJournal,
    sweep_fingerprint,
    verify_journal,
)
from repro.scenarios.sweep.pool import run_journaled_serial, run_sharded

__all__ = [
    "LoadedJournal",
    "SweepJournal",
    "sweep_fingerprint",
    "verify_journal",
    "run_journaled_serial",
    "run_sharded",
]
