"""The supervised worker pool: sharded, fault-tolerant sweep execution.

:func:`run_sharded` fans a :class:`~repro.scenarios.matrix.ScenarioMatrix`
across ``W`` persistent spawn-context worker processes and supervises
them: per-cell wall-clock deadlines (SIGKILL on expiry — the backstop
for hangs the in-cell round watchdog cannot see), heartbeat liveness,
automatic respawn of crashed workers, capped-exponential-backoff retry
of interrupted cells, and a poison-cell quarantine after ``max_attempts``
(quarantined cells are recorded on the result as ``failed`` cells with
``quarantined=True`` — never silently dropped).  Completed cells are
journaled durably (:mod:`repro.scenarios.sweep.journal`) so a killed
sweep resumes where it stopped.

The hard invariant is determinism: a cell is a pure function of its
coordinates (:func:`repro.scenarios.matrix.run_cell`), and every
cross-cell verdict is recomputed deterministically at assembly
(:meth:`ScenarioMatrix._finalize_coordinate`), so result digests are
byte-identical across worker counts, scheduling orders, worker kills,
retries and kill-then-resume boundaries.  The chaos hooks
(``chaos_kills`` — SIGKILL the pool's own workers at chosen points —
and ``stop_after_cells`` — abandon the sweep mid-flight) exist so tests
and CI can prove that, not just assume it.

Pool-level failure — a protocol spec that cannot cross the process
boundary, a spawn environment that cannot start workers, or a respawn
storm — degrades to the in-process serial runner instead of failing the
sweep, mirroring the engine subsystem's kernel → fast → legacy chain;
``meta["pool"]`` records which executor actually ran.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import (
    CellTimeoutError,
    SweepResumeError,
    WorkerCrashError,
)
from repro.scenarios.registry import get_protocol

__all__ = ["run_sharded", "run_journaled_serial"]

#: Liveness: a busy worker whose last event (start or heartbeat) is
#: older than this is presumed wedged and gets SIGKILLed.
HEARTBEAT_TIMEOUT = 30.0
#: Extra wall-clock allowance before a cell's deadline applies when the
#: worker has not yet reported ``start`` (covers spawn/import latency,
#: which is paid once per worker and must not count against the cell).
STARTUP_GRACE = 30.0


def _now() -> float:
    # Supervisor scheduling (deadlines, backoff, heartbeats) is harness
    # infrastructure, not protocol behaviour — results never depend on it.
    return time.monotonic()  # analysis: allow(wall-clock)


def _parent(tid: str) -> str:
    """The cell key a task id belongs to (``key#i`` → ``key``): K-shard
    task ids extend their cell's journal key with a shard index."""
    return tid.split("#", 1)[0]


def _is_shm_descriptor(payload: Any) -> bool:
    """Whether a done-event payload is a shared-memory handoff
    descriptor rather than the payload itself."""
    return isinstance(payload, dict) and set(payload) == {"shm", "nbytes"}


class _Slot:
    """One worker position: process + private task queue + current task."""

    __slots__ = ("index", "proc", "queue", "task", "spawned_at")

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc = None
        self.queue = None
        self.task: Optional[Dict[str, Any]] = None
        self.spawned_at = 0.0


def _journal_setup(matrix, meta, journal, resume_from):
    """Resolve the journal/resume arguments into (handle, replayed)."""
    from repro.scenarios.sweep.journal import SweepJournal

    if resume_from is not None:
        if journal is not None and journal != resume_from:
            raise SweepResumeError(
                "journal= and resume_from= name different files; resume "
                "appends to the journal it replays"
            )
        handle, loaded = SweepJournal.resume(resume_from, meta)
        return handle, dict(loaded.cells)
    if journal is not None:
        return SweepJournal(journal, meta).open(), {}
    return None, {}


def run_journaled_serial(
    matrix,
    *,
    journal: Optional[str] = None,
    resume_from: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_rounds: Optional[int] = None,
    checkpoint_every_seconds: Optional[float] = None,
    schedule_cache: Optional[str] = None,
    shard_k: Optional[int] = None,
):
    """The serial runner with journal/resume plumbing attached — used
    directly by ``run(journal=..., resume_from=...)`` without workers,
    and as the resume target after a pool run was killed."""
    meta = matrix._meta()
    handle, replayed = _journal_setup(matrix, meta, journal, resume_from)
    keys = set(matrix.cell_keys())
    replay = {k: v for k, v in replayed.items() if k in keys}
    def record(key, cell):
        payload = cell.to_dict()
        handle.record_cell(key, payload, attempt=payload.get("attempts") or 1)

    on_cell = record if handle is not None else None
    try:
        result = matrix._run_serial(
            on_cell=on_cell, replay=replay or None,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_rounds=checkpoint_every_rounds,
            checkpoint_every_seconds=checkpoint_every_seconds,
            schedule_cache=schedule_cache,
            shard_k=shard_k,
        )
    finally:
        if handle is not None:
            handle.close()
    result.meta["journal"] = handle.path if handle is not None else None
    result.meta["replayed_cells"] = len(replay)
    return result


def run_sharded(
    matrix,
    workers: int,
    *,
    journal: Optional[str] = None,
    resume_from: Optional[str] = None,
    cell_timeout: Optional[float] = None,
    max_attempts: int = 3,
    backoff_base: float = 0.25,
    backoff_cap: float = 4.0,
    heartbeat_interval: float = 0.5,
    chaos_kills: Optional[Sequence[int]] = None,
    stop_after_cells: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_rounds: Optional[int] = None,
    checkpoint_every_seconds: Optional[float] = None,
    schedule_cache: Optional[str] = None,
    shard_k: Optional[int] = None,
    use_shm: Optional[bool] = None,
):
    """Run ``matrix`` on a supervised pool of ``workers`` processes.

    See the module docstring for semantics; returns the same
    :class:`~repro.scenarios.matrix.MatrixResult` shape as the serial
    runner, with ``meta["pool"]`` carrying executor forensics
    (per-worker accounting, respawns, quarantined keys, replay counts).

    The zero-copy fabric rides three keywords: ``schedule_cache=`` (a
    directory every worker shares — each program compiles exactly once
    across the whole pool), ``shard_k=`` (split multi-instance cells
    into K-shards dispatched as independent tasks ``key#i`` and merged
    digest-identically on completion), and ``use_shm`` (shared-memory
    handoff of shard payloads and lane buffers; default: autodetect,
    with graceful inline fallback).  Shard retry follows the cell retry
    policy per shard; a quarantined shard quarantines its whole cell.
    """
    from repro.scenarios.matrix import _cell_key, merge_shard_payloads, plan_shards
    from repro.scenarios.sweep.shm import (
        fetch_payload,
        segment_prefix,
        shm_available,
        sweep_leaked_segments,
    )

    if workers < 1:
        raise ValueError("workers must be at least 1")
    if max_attempts < 1:
        raise ValueError("max_attempts must be at least 1")
    meta = matrix._meta()
    handle, replayed = _journal_setup(matrix, meta, journal, resume_from)
    all_keys = matrix.cell_keys()
    replay = {k: v for k, v in replayed.items() if k in set(all_keys)}

    # Per-key task coordinates, in canonical order.
    task_info: Dict[str, Tuple[str, str, int, str]] = {}
    for protocol, family, n in matrix.coordinates():
        for engine in matrix.ordered_engines():
            key = _cell_key(matrix.seed, protocol, family, n, engine)
            task_info[key] = (protocol, family, n, engine)

    if use_shm is None:
        use_shm = shm_available()
    shm_prefix = segment_prefix() if use_shm else None

    pool_meta: Dict[str, Any] = {
        "executor": "pool",
        "workers": workers,
        "respawns": 0,
        "replayed": len(replay),
        "quarantined": [],
        "interrupted": False,
        "fallback_reason": None,
        "worker_stats": {},
        "checkpoint_events": 0,
        "shard_k": shard_k,
        "shard_tasks": 0,
        "shm": bool(use_shm),
        "segments_swept": 0,
    }
    meta["pool"] = pool_meta
    meta["journal"] = handle.path if handle is not None else None

    completed: Dict[str, Dict[str, Any]] = dict(replay)

    # -- task expansion: eligible multi-instance cells become K-shard
    # -- tasks ``key#i`` at chunk-aligned instance ranges ---------------
    shard_ranges: Dict[str, Tuple[int, int]] = {}
    shard_count: Dict[str, int] = {}
    task_ids: List[str] = []
    for key in all_keys:
        if key in completed:
            continue
        protocol, family, n, engine = task_info[key]
        spec = get_protocol(protocol)
        if matrix._shardable(spec, engine, shard_k, checkpoint_dir):
            shards = plan_shards(spec.instances, shard_k, n)
            if len(shards) > 1:
                shard_count[key] = len(shards)
                for si, (lo, hi) in enumerate(shards):
                    tid = f"{key}#{si}"
                    shard_ranges[tid] = (lo, hi)
                    task_ids.append(tid)
                continue
        task_ids.append(key)
    pool_meta["shard_tasks"] = len(shard_ranges)
    pending = deque(task_ids)
    #: Per-cell accumulation of completed shard payloads / max attempt.
    shard_results: Dict[str, Dict[str, Dict[str, Any]]] = {}
    shard_attempts: Dict[str, int] = {}

    def serial_fallback(reason: str):
        pool_meta["executor"] = "serial-fallback"
        pool_meta["fallback_reason"] = reason
        try:
            _run_keys_serially(
                matrix, list(pending), task_info, completed, handle,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every_rounds=checkpoint_every_rounds,
                checkpoint_every_seconds=checkpoint_every_seconds,
                schedule_cache=schedule_cache,
            )
        finally:
            if handle is not None:
                handle.close()
        return _assemble(matrix, meta, completed, task_info)

    # Specs cross the process boundary pickled by name (registry.__reduce__);
    # an unpicklable spec (lambda prepare) must surface *here*, as a
    # graceful degradation, not as W crashed workers.
    try:
        for name in matrix.protocols:
            pickle.dumps(get_protocol(name))
    except Exception as exc:  # noqa: BLE001 - any pickle failure degrades
        return serial_fallback(f"spec not picklable: {exc}")

    if not pending:
        if handle is not None:
            handle.close()
        return _assemble(matrix, meta, completed, task_info)

    try:
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        result_queue = ctx.Queue()
    except Exception as exc:  # noqa: BLE001 - no mp support: degrade
        return serial_fallback(f"cannot create spawn context: {exc}")

    fault_plan_json = (
        matrix.fault_plan.to_json() if matrix.fault_plan is not None else None
    )
    chaos_set = set(chaos_kills or ())
    respawn_limit = max(8, 4 * workers) + len(chaos_set)
    attempts_used: Dict[str, int] = {}
    retries: List[Tuple[float, int, str]] = []  # (not_before, attempt, key)
    stats: Dict[int, Dict[str, float]] = {}
    fresh = 0
    interrupted = False

    def spawn(slot: _Slot) -> None:
        from repro.scenarios.sweep.worker import worker_main

        # A fresh queue per (re)spawn: a dead worker's queue may still
        # hold its unfetched task, which the supervisor is about to
        # retry elsewhere — the replacement must not double-execute it.
        if slot.queue is not None:
            slot.queue.cancel_join_thread()
            slot.queue.close()
        slot.queue = ctx.Queue()
        slot.proc = ctx.Process(
            target=worker_main,
            args=(slot.index, slot.queue, result_queue, heartbeat_interval),
            daemon=True,
        )
        slot.proc.start()
        slot.spawned_at = _now()
        slot.task = None
        stats.setdefault(
            slot.index,
            {"cells": 0, "shards": 0, "seconds": 0.0, "total_bits": 0,
             "respawns": -1},
        )["respawns"] += 1

    def kill(slot: _Slot) -> None:
        if slot.proc is not None and slot.proc.is_alive():
            slot.proc.kill()
            slot.proc.join(timeout=10.0)
        if shm_prefix is not None:
            # The dead worker may have left segments it created but never
            # announced (or announced into a queue we are about to treat
            # as stale).  Its name subspace is dead with it: sweep now,
            # before a replacement reuses the slot index.
            pool_meta["segments_swept"] += sweep_leaked_segments(
                f"{shm_prefix}-w{slot.index}-"
            )

    def handle_failure(tid: str, exc_type: type, message: str, digest: str) -> None:
        nonlocal fresh
        key = _parent(tid)
        if key in completed:
            return
        attempts_used[tid] = attempts_used.get(tid, 0) + 1
        k = attempts_used[tid]
        if handle is not None:
            handle.record_attempt(tid, k, exc_type.__name__, message, digest)
        if k >= max_attempts:
            protocol, family, n, engine = task_info[key]
            err = exc_type(message, coordinate=tid, attempts=k,
                           traceback_digest=digest)
            quarantined = {
                "protocol": protocol, "family": family, "n": n,
                "engine": engine, "status": "failed",
                "error": str(err), "error_type": exc_type.__name__,
                "traceback_digest": digest, "attempts": k,
                "quarantined": True,
            }
            # A poisoned shard poisons its cell: drop the siblings (done
            # or pending) — a partial merge must never masquerade as the
            # cell.
            completed[key] = quarantined
            pool_meta["quarantined"].append(key)
            if tid != key:
                shard_results.pop(key, None)
                for sibling in [t for t in pending if _parent(t) == key]:
                    pending.remove(sibling)
            retries[:] = [r for r in retries if _parent(r[2]) != key]
            if handle is not None:
                handle.record_cell(key, quarantined, attempt=k)
            fresh += 1
        else:
            delay = min(backoff_cap, backoff_base * (2 ** (k - 1)))
            retries.append((_now() + delay, k + 1, tid))

    def fail_inflight(slot: _Slot, exc_type: type, reason: str) -> None:
        task = slot.task
        slot.task = None
        if task is None:
            return
        digest = hashlib.sha256(
            f"{exc_type.__name__}:{task['key']}".encode()
        ).hexdigest()[:12]
        handle_failure(task["key"], exc_type, reason, digest)

    # Spawn children re-execute the parent's __main__ when it carries a
    # real file path.  A parent run from a pipe/heredoc reports
    # ``__file__ == "<stdin>"``, which the child cannot re-run — hide
    # the phantom path for the duration of the pool so workers start
    # from a clean interpreter instead of crashing on import.
    main_module = sys.modules.get("__main__")
    main_file = getattr(main_module, "__file__", None)
    hide_main_file = main_file is not None and not os.path.exists(main_file)
    if hide_main_file:
        del main_module.__file__

    slots = [_Slot(i) for i in range(workers)]
    try:
        for slot in slots:
            spawn(slot)
    except Exception as exc:  # noqa: BLE001 - cannot start workers: degrade
        for slot in slots:
            kill(slot)
        if hide_main_file:
            main_module.__file__ = main_file
        return serial_fallback(f"cannot spawn workers: {exc}")

    total = len(all_keys)
    degrade_reason: Optional[str] = None
    try:
        while len(completed) < total:
            now = _now()
            # -- assignment: one task per idle, live worker ----------------
            for slot in slots:
                if slot.task is not None or not slot.proc.is_alive():
                    continue
                tid = attempt = None
                ready = [r for r in retries if r[0] <= now]
                if ready:
                    ready.sort()
                    retries.remove(ready[0])
                    _, attempt, tid = ready[0]
                elif pending:
                    tid, attempt = pending.popleft(), 1
                if tid is None:
                    continue
                protocol, family, n, engine = task_info[_parent(tid)]
                extras = {
                    "shard": shard_ranges.get(tid),
                    "schedule_cache": schedule_cache,
                    "shm_prefix": shm_prefix,
                }
                slot.queue.put(
                    (
                        tid, get_protocol(protocol), family, n, engine,
                        matrix.seed, matrix.repeats, matrix.verify,
                        fault_plan_json, matrix.cell_round_limit, attempt,
                        checkpoint_dir, checkpoint_every_rounds,
                        checkpoint_every_seconds, extras,
                    )
                )
                slot.task = {
                    "key": tid, "attempt": attempt,
                    "assigned_at": now, "started_at": None, "last_event": now,
                }
            # -- event drain ----------------------------------------------
            events = _drain(result_queue, timeout=0.05)
            for event in events:
                kind, wid = event[0], event[1]
                slot = slots[wid]
                if kind == "start":
                    _, _, key, attempt = event
                    if slot.task is not None and slot.task["key"] == key:
                        slot.task["started_at"] = _now()
                        slot.task["last_event"] = _now()
                elif kind == "hb":
                    _, _, key = event
                    if slot.task is not None and slot.task["key"] == key:
                        slot.task["last_event"] = _now()
                elif kind == "ckpt":
                    # A mid-run snapshot flush: liveness evidence (the
                    # cell is making durable progress) plus a journal
                    # lineage record.
                    _, _, key, attempt, round_index, digest = event
                    if slot.task is not None and slot.task["key"] == key:
                        slot.task["last_event"] = _now()
                    pool_meta["checkpoint_events"] += 1
                    if handle is not None:
                        handle.record_checkpoint(
                            key, attempt, round_index, digest
                        )
                elif kind == "done":
                    _, _, tid, attempt, payload, seconds = event
                    if slot.task is not None and slot.task["key"] == tid:
                        slot.task = None
                    key = _parent(tid)
                    if key in completed:
                        continue  # stale duplicate from a killed attempt
                    if _is_shm_descriptor(payload):
                        # Zero-copy handoff: the queue carried only the
                        # segment name; attach, load, unlink.
                        try:
                            payload = fetch_payload(payload)
                        except Exception:  # noqa: BLE001 - lost segment
                            handle_failure(
                                tid, WorkerCrashError,
                                "result segment lost before fetch",
                                hashlib.sha256(
                                    f"segment-lost:{tid}".encode()
                                ).hexdigest()[:12],
                            )
                            continue
                    st = stats.setdefault(
                        wid,
                        {"cells": 0, "shards": 0, "seconds": 0.0,
                         "total_bits": 0, "respawns": 0},
                    )
                    st["seconds"] += seconds
                    cell_dict = None
                    if tid != key:
                        # One K-shard of a cell: bank it, merge when the
                        # last sibling lands.
                        bucket = shard_results.setdefault(key, {})
                        bucket[tid] = payload
                        shard_attempts[key] = max(
                            shard_attempts.get(key, 1), attempt
                        )
                        st["shards"] += 1
                        retries[:] = [r for r in retries if r[2] != tid]
                        if len(bucket) == shard_count[key]:
                            protocol, family, n, engine = task_info[key]
                            merged = merge_shard_payloads(
                                get_protocol(protocol), family, n, engine,
                                list(bucket.values()),
                            )
                            cell_dict = merged.to_dict()
                            cell_dict["attempts"] = shard_attempts[key]
                            shard_results.pop(key, None)
                    else:
                        cell_dict = payload
                        cell_dict["attempts"] = attempt
                    if cell_dict is None:
                        continue
                    completed[key] = cell_dict
                    retries[:] = [r for r in retries if _parent(r[2]) != key]
                    if handle is not None:
                        handle.record_cell(
                            key, cell_dict,
                            attempt=cell_dict.get("attempts") or 1,
                        )
                    st["cells"] += 1
                    st["total_bits"] += cell_dict.get("total_bits") or 0
                    fresh += 1
                    if fresh in chaos_set:
                        victim = next(
                            (s for s in slots if s.task is not None), slot
                        )
                        kill(victim)
                        fail_inflight(
                            victim, WorkerCrashError,
                            "worker killed by chaos harness",
                        )
                        pool_meta["respawns"] += 1
                        spawn(victim)
                    if (
                        stop_after_cells is not None
                        and fresh >= stop_after_cells
                    ):
                        interrupted = True
                        break
                elif kind == "error":
                    _, _, key, attempt, message, digest = event
                    if slot.task is not None and slot.task["key"] == key:
                        slot.task = None
                    handle_failure(key, WorkerCrashError, message, digest)
            if interrupted:
                break
            # -- liveness / deadlines -------------------------------------
            now = _now()
            for slot in slots:
                if not slot.proc.is_alive():
                    fail_inflight(
                        slot, WorkerCrashError,
                        f"worker {slot.index} died "
                        f"(exitcode {slot.proc.exitcode})",
                    )
                    pool_meta["respawns"] += 1
                    spawn(slot)
                    continue
                task = slot.task
                if task is None:
                    continue
                if cell_timeout is not None:
                    started = task["started_at"]
                    deadline = (
                        started + cell_timeout
                        if started is not None
                        else task["assigned_at"] + cell_timeout + STARTUP_GRACE
                    )
                    if now > deadline:
                        kill(slot)
                        fail_inflight(
                            slot, CellTimeoutError,
                            f"cell exceeded {cell_timeout}s deadline",
                        )
                        pool_meta["respawns"] += 1
                        spawn(slot)
                        continue
                if now - task["last_event"] > HEARTBEAT_TIMEOUT:
                    kill(slot)
                    fail_inflight(
                        slot, WorkerCrashError,
                        f"worker {slot.index} heartbeat lost "
                        f"(> {HEARTBEAT_TIMEOUT}s)",
                    )
                    pool_meta["respawns"] += 1
                    spawn(slot)
            if pool_meta["respawns"] > respawn_limit:
                degrade_reason = (
                    f"respawn storm: {pool_meta['respawns']} respawns "
                    f"exceeded limit {respawn_limit}"
                )
                break
    finally:
        if hide_main_file:
            main_module.__file__ = main_file
        for slot in slots:
            try:
                slot.queue.put(None)
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        deadline = _now() + 5.0
        for slot in slots:
            slot.proc.join(timeout=max(0.1, deadline - _now()))
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(timeout=5.0)
        for slot in slots:
            slot.queue.cancel_join_thread()
            slot.queue.close()
        result_queue.cancel_join_thread()
        result_queue.close()
        if shm_prefix is not None:
            # Crash-safety net: unlink every segment of this sweep that
            # was created but never fetched (worker SIGKILLed between
            # create and announce, supervisor interrupted mid-drain, ...).
            pool_meta["segments_swept"] += sweep_leaked_segments(shm_prefix)

    if degrade_reason is not None:
        # Pool-level failure: finish the remaining cells in-process, the
        # same graceful-degradation posture as the engine chain.
        pool_meta["executor"] = "pool+serial-degraded"
        pool_meta["fallback_reason"] = degrade_reason
        remaining = [k for k in all_keys if k not in completed]
        _run_keys_serially(
            matrix, remaining, task_info, completed, handle,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_rounds=checkpoint_every_rounds,
            checkpoint_every_seconds=checkpoint_every_seconds,
        )

    if handle is not None:
        handle.close()
    pool_meta["interrupted"] = interrupted
    pool_meta["worker_stats"] = {
        str(wid): st for wid, st in sorted(stats.items())
    }
    return _assemble(
        matrix, meta, completed, task_info, partial=interrupted
    )


def _drain(result_queue, timeout: float) -> List[Tuple[Any, ...]]:
    """All currently available events (blocking briefly for the first)."""
    from queue import Empty

    events: List[Tuple[Any, ...]] = []
    try:
        events.append(result_queue.get(timeout=timeout))
        while True:
            events.append(result_queue.get_nowait())
    except Empty:
        pass
    return events


def _run_keys_serially(
    matrix, keys, task_info, completed, handle,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_rounds: Optional[int] = None,
    checkpoint_every_seconds: Optional[float] = None,
    schedule_cache: Optional[str] = None,
) -> None:
    """Execute ``keys`` in-process (fallback / degradation path).

    ``keys`` may contain K-shard task ids (``key#i``) left over from a
    degraded pool run; each cell executes once, whole — the digest is
    identical either way, and in-process there is nobody to share the
    shards with.
    """
    from repro.scenarios.matrix import run_cell

    seen: set = set()
    for tid in keys:
        key = _parent(tid)
        if key in completed or key in seen:
            continue
        seen.add(key)
        protocol, family, n, engine = task_info[key]
        cell = run_cell(
            get_protocol(protocol), family, n, engine,
            seed=matrix.seed, repeats=matrix.repeats, verify=matrix.verify,
            fault_plan=matrix.fault_plan, round_limit=matrix.cell_round_limit,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_rounds=checkpoint_every_rounds,
            checkpoint_every_seconds=checkpoint_every_seconds,
            schedule_cache=schedule_cache,
        )
        payload = cell.to_dict()
        completed[key] = payload
        if handle is not None:
            handle.record_cell(key, payload)


def _assemble(matrix, meta, completed, task_info, partial: bool = False):
    """Build the MatrixResult: rebuild cells in canonical order and
    recompute every cross-cell verdict.  Deterministic given the cell
    payloads, which is why pooled, serial, replayed and degraded runs
    all produce byte-identical digests."""
    from repro.scenarios.matrix import MatrixCell, MatrixResult, _cell_key

    result = MatrixResult(meta=meta)
    for protocol, family, n in matrix.coordinates():
        cells = []
        for engine in matrix.ordered_engines():
            key = _cell_key(matrix.seed, protocol, family, n, engine)
            if key in completed:
                cells.append(MatrixCell.from_dict(completed[key]))
        if not cells:
            continue
        # An interrupted sweep may hold only part of a coordinate; the
        # cells are kept (the journal has them) and the cross-cell
        # verdicts are recomputed over whatever engines did run — the
        # resumed run recomputes them again over the full set.
        matrix._finalize_coordinate(get_protocol(protocol), family, n, cells)
        result.cells.extend(cells)
    return result
