"""Durable execution journal for sweep runs.

One JSONL file per sweep: a leading ``meta`` line binding the journal to
its sweep (a fingerprint over the sweep's defining parameters), then one
``cell`` line per *completed* cell and one ``attempt`` line per failed
attempt the supervisor retried.  Appends are atomic at the line level —
each record is written as a single ``write()`` of one newline-terminated
line, flushed and fsynced before the supervisor considers the cell
durable — so a SIGKILL at any instant loses at most the line being
written, and :func:`SweepJournal.load` tolerates exactly one torn
trailing line (anything worse is corruption and raises
:class:`~repro.core.errors.SweepResumeError`).

Resume (:meth:`SweepJournal.load`) replays completed cells by their
journal key (``seed:protocol:family:n:engine``): the runner rebuilds the
recorded :class:`~repro.scenarios.matrix.MatrixCell` instead of
re-executing, and re-derives all cross-cell verdicts, so a resumed
sweep's digests are byte-identical to an uninterrupted run.  Quarantined
cells are journaled like any other completed cell and therefore *not*
retried on resume — delete the journal (or resume into a new one) to
re-attempt poison cells.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, TextIO

from repro.core.errors import SweepResumeError

__all__ = ["SweepJournal", "sweep_fingerprint", "verify_journal"]

_SCHEMA = 1


def sweep_fingerprint(meta: Dict[str, Any]) -> str:
    """Identity of a sweep for resume purposes: a digest over the
    parameters that determine every cell's coordinates and behaviour.
    Two sweeps with the same fingerprint execute the same cells with the
    same seeds, so replaying one's journal into the other is sound."""
    blob = json.dumps(meta, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class SweepJournal:
    """Append-side handle on a sweep journal file."""

    def __init__(self, path: str, meta: Dict[str, Any]) -> None:
        self.path = path
        self.meta = meta
        self.fingerprint = sweep_fingerprint(meta)
        self._fh: Optional[TextIO] = None

    # -- writing ----------------------------------------------------------

    def open(self, *, overwrite: bool = False) -> "SweepJournal":
        """Create the journal file and write its meta line.

        Refuses to clobber an existing non-empty journal unless
        ``overwrite`` is set: a journal on disk is a checkpoint someone
        may intend to resume, and losing it silently is exactly the
        failure mode this module exists to prevent.
        """
        if (
            not overwrite
            and os.path.exists(self.path)
            and os.path.getsize(self.path) > 0
        ):
            raise SweepResumeError(
                f"journal {self.path!r} already exists; pass resume_from= "
                "to continue it or remove it to start over"
            )
        self._fh = open(self.path, "w")
        self._append(
            {
                "kind": "meta",
                "schema": _SCHEMA,
                "fingerprint": self.fingerprint,
                "sweep": self.meta,
            }
        )
        return self

    def record_cell(self, key: str, cell: Dict[str, Any], attempt: int = 1) -> None:
        """Durably record one completed cell (``cell`` is the
        :meth:`MatrixCell.to_dict` payload, pre-finalize)."""
        self._append(
            {"kind": "cell", "key": key, "attempt": attempt, "cell": cell}
        )

    def record_attempt(
        self,
        key: str,
        attempt: int,
        error_type: str,
        error: str,
        traceback_digest: Optional[str] = None,
    ) -> None:
        """Record one failed attempt (crash, deadline kill) — the cell's
        durable attempt history, kept even after the cell completes."""
        self._append(
            {
                "kind": "attempt",
                "key": key,
                "attempt": attempt,
                "error_type": error_type,
                "error": error,
                "traceback_digest": traceback_digest,
            }
        )

    def record_checkpoint(
        self, key: str, attempt: int, round_index: int, digest: str
    ) -> None:
        """Record one mid-run snapshot flush — the cell's checkpoint
        lineage.  Purely forensic: resume finds snapshots on disk by
        run identity, not through the journal, so a lost ``ckpt`` line
        never loses progress."""
        self._append(
            {
                "kind": "ckpt",
                "key": key,
                "attempt": attempt,
                "round": round_index,
                "digest": digest,
            }
        )

    def _append(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise SweepResumeError(f"journal {self.path!r} is not open")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- reading ----------------------------------------------------------

    @classmethod
    def load(
        cls, path: str, expected_meta: Optional[Dict[str, Any]] = None
    ) -> "LoadedJournal":
        """Parse a journal for resume.

        Checks the meta line's fingerprint against ``expected_meta``
        (the resuming sweep's parameters) when given — resuming a
        journal into a different sweep raises
        :class:`~repro.core.errors.SweepResumeError` rather than
        silently mixing incomparable cells.
        """
        try:
            with open(path) as fh:
                lines = fh.read().splitlines()
        except OSError as exc:
            raise SweepResumeError(
                f"cannot read journal {path!r}: {exc}"
            ) from exc
        if not lines:
            raise SweepResumeError(f"journal {path!r} is empty")
        records: List[Dict[str, Any]] = []
        torn_line = False
        for i, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if i == len(lines) - 1:
                    # A torn trailing line is the expected residue of a
                    # kill mid-append; that cell simply re-executes.
                    torn_line = True
                    break
                raise SweepResumeError(
                    f"journal {path!r} is corrupt at line {i + 1}"
                ) from exc
        if not records or records[0].get("kind") != "meta":
            raise SweepResumeError(
                f"journal {path!r} has no meta line; not a sweep journal"
            )
        meta = records[0]
        if meta.get("schema") != _SCHEMA:
            raise SweepResumeError(
                f"journal {path!r} has schema {meta.get('schema')!r}, "
                f"expected {_SCHEMA}"
            )
        if expected_meta is not None:
            expected = sweep_fingerprint(expected_meta)
            if meta.get("fingerprint") != expected:
                raise SweepResumeError(
                    f"journal {path!r} belongs to a different sweep "
                    f"(fingerprint {meta.get('fingerprint')!r}, this sweep "
                    f"is {expected!r})"
                )
        cells: Dict[str, Dict[str, Any]] = {}
        cell_lines: Dict[str, int] = {}
        attempts: Dict[str, List[Dict[str, Any]]] = {}
        checkpoints: Dict[str, List[Dict[str, Any]]] = {}
        for record in records[1:]:
            kind = record.get("kind")
            key = record.get("key")
            if kind == "cell" and key is not None:
                cells[key] = record["cell"]
                cell_lines[key] = cell_lines.get(key, 0) + 1
            elif kind == "attempt" and key is not None:
                attempts.setdefault(key, []).append(record)
            elif kind == "ckpt" and key is not None:
                checkpoints.setdefault(key, []).append(record)
        return LoadedJournal(
            path=path,
            meta=meta["sweep"],
            fingerprint=meta["fingerprint"],
            cells=cells,
            cell_lines=cell_lines,
            attempts=attempts,
            checkpoints=checkpoints,
            torn_line=torn_line,
        )

    @classmethod
    def resume(
        cls, path: str, meta: Dict[str, Any]
    ) -> "tuple[SweepJournal, LoadedJournal]":
        """Open ``path`` for continued appending after replaying it.

        Returns the loaded state plus a fresh journal handle whose file
        already contains the prior records (append mode — the meta line
        is not rewritten).
        """
        loaded = cls.load(path, expected_meta=meta)
        journal = cls(path, meta)
        journal._fh = open(path, "a")
        return journal, loaded


class LoadedJournal:
    """Parsed journal state: completed cells and attempt history."""

    def __init__(
        self,
        path: str,
        meta: Dict[str, Any],
        fingerprint: str,
        cells: Dict[str, Dict[str, Any]],
        cell_lines: Dict[str, int],
        attempts: Dict[str, List[Dict[str, Any]]],
        checkpoints: Optional[Dict[str, List[Dict[str, Any]]]] = None,
        torn_line: bool = False,
    ) -> None:
        self.path = path
        self.meta = meta
        self.fingerprint = fingerprint
        #: key -> recorded cell payload (last record wins on duplicates).
        self.cells = cells
        #: key -> number of ``cell`` lines seen (the zero-re-execution
        #: assertion in tests/CI checks every count is exactly 1).
        self.cell_lines = cell_lines
        #: key -> failed-attempt records, in journal order.
        self.attempts = attempts
        #: key -> mid-run snapshot records (``ckpt`` lines), in journal
        #: order — the checkpoint lineage across a cell's attempts.
        self.checkpoints = checkpoints if checkpoints is not None else {}
        #: Whether the file ended in a torn (kill-mid-append) line.
        self.torn_line = torn_line

    def duplicate_keys(self) -> List[str]:
        """Cells recorded more than once — nonempty means a completed
        cell was re-executed, the invariant resume exists to prevent."""
        return sorted(k for k, count in self.cell_lines.items() if count > 1)


def verify_journal(path: str) -> Dict[str, Any]:
    """Structural health report for one sweep journal — the engine
    behind ``python -m repro.scenarios --journal-verify``.

    Always returns a report dict (never raises): ``ok`` is True iff the
    journal parsed (fingerprint line intact, schema known, no mid-file
    corruption) *and* no completed cell was recorded twice.  A torn
    trailing line is reported but does not fail the check — it is the
    expected residue of a kill mid-append.  ``checkpoints`` summarises
    the recorded checkpoint lineage per cell: flush count, last round,
    last snapshot digest, and the attempts that flushed.
    """
    report: Dict[str, Any] = {
        "path": path,
        "ok": False,
        "error": None,
        "fingerprint": None,
        "cells": 0,
        "failed_attempts": 0,
        "duplicate_keys": [],
        "torn_line": False,
        "checkpoints": {},
    }
    try:
        loaded = SweepJournal.load(path)
    except SweepResumeError as exc:
        report["error"] = str(exc)
        return report
    duplicates = loaded.duplicate_keys()
    report.update(
        ok=not duplicates,
        fingerprint=loaded.fingerprint,
        cells=len(loaded.cells),
        failed_attempts=sum(len(v) for v in loaded.attempts.values()),
        duplicate_keys=duplicates,
        torn_line=loaded.torn_line,
    )
    if duplicates:
        report["error"] = (
            f"{len(duplicates)} cell(s) recorded more than once: "
            "a completed cell was re-executed"
        )
    for key, records in sorted(loaded.checkpoints.items()):
        last = records[-1]
        report["checkpoints"][key] = {
            "flushes": len(records),
            "last_round": last.get("round"),
            "last_digest": last.get("digest"),
            "attempts": sorted({r.get("attempt") for r in records}),
        }
    return report
