"""The sweep worker process: pull cell tasks, execute, report.

Workers are persistent (one process executes many cells — spawn cost is
paid once per worker, not per cell) and deliberately thin: all sweep
policy (retry, backoff, deadlines, quarantine, journaling) lives in the
supervisor; a worker only executes :func:`repro.scenarios.matrix.run_cell`
— a pure function of the cell coordinates — and streams events back.

Event protocol on the shared result queue (tuples, first element tags):

``("start", worker_id, key, attempt)``
    The worker picked up a task; the supervisor starts its deadline.
``("hb", worker_id, key)``
    Heartbeat, emitted every ``heartbeat_interval`` seconds while a cell
    executes; staleness is the supervisor's liveness signal for hangs
    the in-cell round watchdog cannot see (native code, ``prepare``).
``("done", worker_id, key, attempt, cell_dict, seconds)``
    The cell completed (including protocol-level failure — a failed
    :class:`MatrixCell` is still a *completed* execution).
``("error", worker_id, key, attempt, message, traceback_digest)``
    The harness itself raised inside the worker; the supervisor retries.

Workers exit when they receive the ``None`` sentinel, or when their
parent disappears (``os.getppid()`` changes — the supervisor was
SIGKILLed and nobody will ever drain the queues; orphaned workers must
not linger).
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import traceback
from queue import Empty
from typing import Optional, Tuple

__all__ = ["worker_main", "CURRENT_TASK"]

#: ``(key, attempt)`` of the task this worker process is currently
#: executing, or None.  Exposed so chaos-test protocols can condition on
#: the attempt number (e.g. crash only on the first attempt).
CURRENT_TASK: Optional[Tuple[str, int]] = None


def _heartbeat(result_queue, worker_id: int, key: str, interval: float, stop):
    while not stop.wait(interval):
        try:
            result_queue.put(("hb", worker_id, key))
        except Exception:  # noqa: BLE001 - queue torn down; exit quietly
            return


def worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    heartbeat_interval: float = 0.5,
) -> None:
    """Worker process entry point (module-level: spawn-picklable)."""
    global CURRENT_TASK
    parent = os.getppid()
    while True:
        try:
            task = task_queue.get(timeout=1.0)
        except Empty:
            if os.getppid() != parent:
                return  # orphaned: supervisor died without cleanup
            continue
        if task is None:
            return
        (
            key, spec, family_name, n, engine, seed, repeats, verify,
            fault_plan_json, round_limit, attempt,
        ) = task
        CURRENT_TASK = (key, attempt)
        result_queue.put(("start", worker_id, key, attempt))
        stop = threading.Event()
        beat = threading.Thread(
            target=_heartbeat,
            args=(result_queue, worker_id, key, heartbeat_interval, stop),
            daemon=True,
        )
        beat.start()
        try:
            from repro.core.faults import FaultPlan
            from repro.scenarios.matrix import run_cell

            fault_plan = (
                None
                if fault_plan_json is None
                else FaultPlan.from_json(fault_plan_json)
            )
            start = time.perf_counter()  # analysis: allow(wall-clock)
            cell = run_cell(
                spec, family_name, n, engine,
                seed=seed, repeats=repeats, verify=verify,
                fault_plan=fault_plan, round_limit=round_limit,
            )
            seconds = time.perf_counter() - start  # analysis: allow(wall-clock)
            result_queue.put(
                ("done", worker_id, key, attempt, cell.to_dict(), seconds)
            )
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            digest = hashlib.sha256(
                traceback.format_exc().encode()
            ).hexdigest()[:12]
            result_queue.put(
                (
                    "error", worker_id, key, attempt,
                    f"{type(exc).__name__}: {exc}", digest,
                )
            )
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                return
        finally:
            stop.set()
            beat.join(timeout=1.0)
            CURRENT_TASK = None
