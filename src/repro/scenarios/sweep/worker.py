"""The sweep worker process: pull cell tasks, execute, report.

Workers are persistent (one process executes many cells — spawn cost is
paid once per worker, not per cell) and deliberately thin: all sweep
policy (retry, backoff, deadlines, quarantine, journaling) lives in the
supervisor; a worker only executes :func:`repro.scenarios.matrix.run_cell`
— a pure function of the cell coordinates — and streams events back.

Event protocol on the shared result queue (tuples, first element tags):

``("start", worker_id, key, attempt)``
    The worker picked up a task; the supervisor starts its deadline.
``("hb", worker_id, key)``
    Heartbeat, emitted every ``heartbeat_interval`` seconds while a cell
    executes; staleness is the supervisor's liveness signal for hangs
    the in-cell round watchdog cannot see (native code, ``prepare``).
``("done", worker_id, key, attempt, payload, seconds)``
    The task completed (including protocol-level failure — a failed
    :class:`MatrixCell` is still a *completed* execution).  ``payload``
    is the cell dict for whole-cell tasks, the shard payload for K-shard
    tasks (``extras["shard"]`` set), or — when the task rode the
    shared-memory transport — a ``{"shm": name, "nbytes": n}``
    descriptor the supervisor fetches and unlinks.
``("ckpt", worker_id, key, attempt, round_index, digest)``
    The in-flight cell flushed a mid-run snapshot (checkpointed sweeps
    only): durable-progress evidence for the supervisor's liveness
    tracking and a checkpoint-lineage record for the journal.
``("error", worker_id, key, attempt, message, traceback_digest)``
    The harness itself raised inside the worker; the supervisor retries.

Preemption: workers install a SIGTERM handler that requests a graceful
stop instead of dying mid-cell.  A checkpointed cell observes the
request at its next round boundary, flushes a final snapshot, and the
worker reports the interruption as an ``error`` event before exiting —
so the supervisor's retry resumes from that snapshot instead of from
scratch (partial-progress retry).  SIGKILL remains the supervisor's
deadline weapon; SIGTERM is for cooperative preemption (cluster
eviction, scale-down).

Workers exit when they receive the ``None`` sentinel, or when their
parent disappears (``os.getppid()`` changes — the supervisor was
SIGKILLed and nobody will ever drain the queues; orphaned workers must
not linger).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import signal
import threading
import time
import traceback
from queue import Empty
from typing import Optional, Tuple

__all__ = ["worker_main", "CURRENT_TASK"]

#: ``(key, attempt)`` of the task this worker process is currently
#: executing, or None.  Exposed so chaos-test protocols can condition on
#: the attempt number (e.g. crash only on the first attempt).
CURRENT_TASK: Optional[Tuple[str, int]] = None


def _heartbeat(result_queue, worker_id: int, key: str, interval: float, stop):
    while not stop.wait(interval):
        try:
            result_queue.put(("hb", worker_id, key))
        except Exception:  # noqa: BLE001 - queue torn down; exit quietly
            return


def worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    heartbeat_interval: float = 0.5,
) -> None:
    """Worker process entry point (module-level: spawn-picklable)."""
    global CURRENT_TASK
    parent = os.getppid()
    # Cooperative preemption: SIGTERM requests a graceful stop.  The
    # checkpoint session polls this event at round boundaries, flushes a
    # final snapshot and raises RunPreempted; an idle worker just exits.
    preempted = threading.Event()
    try:
        signal.signal(signal.SIGTERM, lambda *_: preempted.set())
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    #: Per-process task counter: segment names derive from it, so every
    #: (worker slot, task) pair owns a distinct shared-memory namespace.
    task_seq = 0
    while True:
        if preempted.is_set():
            return
        try:
            task = task_queue.get(timeout=1.0)
        except Empty:
            if os.getppid() != parent:
                return  # orphaned: supervisor died without cleanup
            continue
        if task is None:
            return
        (
            key, spec, family_name, n, engine, seed, repeats, verify,
            fault_plan_json, round_limit, attempt,
            checkpoint_dir, checkpoint_every_rounds, checkpoint_every_seconds,
            extras,
        ) = task
        shard = extras.get("shard")
        schedule_cache = extras.get("schedule_cache")
        shm_prefix = extras.get("shm_prefix")
        task_seq += 1
        CURRENT_TASK = (key, attempt)
        result_queue.put(("start", worker_id, key, attempt))
        stop = threading.Event()
        beat = threading.Thread(
            target=_heartbeat,
            args=(result_queue, worker_id, key, heartbeat_interval, stop),
            daemon=True,
        )
        beat.start()
        try:
            from repro.core.errors import RunPreempted
            from repro.core.faults import FaultPlan
            from repro.scenarios.matrix import cell_checkpoint_dir, run_cell

            fault_plan = (
                None
                if fault_plan_json is None
                else FaultPlan.from_json(fault_plan_json)
            )

            def on_snapshot(round_index, digest, path):
                try:
                    result_queue.put(
                        ("ckpt", worker_id, key, attempt, round_index, digest)
                    )
                except Exception:  # noqa: BLE001 - queue torn down
                    pass

            # Lane buffers back onto shared memory when the sweep runs
            # the zero-copy fabric: the K×n×n kernel stacks live in
            # named segments under this worker's namespace (closed —
            # and unlinked — when the task ends; the supervisor's
            # prefix sweep covers SIGKILL).
            lane_arena = None
            if shm_prefix is not None:
                from repro.core.engine.delivery import SharedLaneArena
                from repro.scenarios.sweep.shm import shm_available

                if shm_available():
                    lane_arena = SharedLaneArena(
                        f"{shm_prefix}-w{worker_id}-t{task_seq}"
                    )
            start = time.perf_counter()  # analysis: allow(wall-clock)
            try:
                if shard is not None:
                    from repro.scenarios.matrix import run_cell_shard

                    payload = run_cell_shard(
                        spec, family_name, n, engine,
                        seed=seed, lo=shard[0], hi=shard[1],
                        repeats=repeats, round_limit=round_limit,
                        schedule_cache=schedule_cache,
                        lane_arena=lane_arena,
                    )
                else:
                    cell = run_cell(
                        spec, family_name, n, engine,
                        seed=seed, repeats=repeats, verify=verify,
                        fault_plan=fault_plan, round_limit=round_limit,
                        checkpoint_dir=checkpoint_dir,
                        checkpoint_every_rounds=checkpoint_every_rounds,
                        checkpoint_every_seconds=checkpoint_every_seconds,
                        preempt=preempted,
                        on_snapshot=(
                            on_snapshot if checkpoint_dir is not None else None
                        ),
                        schedule_cache=schedule_cache,
                        lane_arena=lane_arena,
                    )
                    payload = cell.to_dict()
            finally:
                if lane_arena is not None:
                    lane_arena.close()
            seconds = time.perf_counter() - start  # analysis: allow(wall-clock)
            if shm_prefix is not None and shard is not None:
                # Per-shard results ride shared memory: serialize once
                # into a named segment, ship only the descriptor.  Falls
                # back to inline transport when segments are unavailable.
                from repro.scenarios.sweep.shm import publish_payload

                descriptor, inline = publish_payload(
                    payload, f"{shm_prefix}-w{worker_id}-r{task_seq}"
                )
                payload = descriptor if descriptor is not None else inline
            result_queue.put(
                ("done", worker_id, key, attempt, payload, seconds)
            )
            if checkpoint_dir is not None:
                # The cell completed durably (the supervisor journals it
                # on this event); its snapshots have served their purpose.
                shutil.rmtree(
                    cell_checkpoint_dir(checkpoint_dir, key),
                    ignore_errors=True,
                )
        except RunPreempted as exc:
            # The final snapshot is flushed; report the interruption so
            # the supervisor's retry resumes from it, then exit — a
            # SIGTERMed worker must not pick up more work.
            digest = hashlib.sha256(
                f"RunPreempted:{key}".encode()
            ).hexdigest()[:12]
            result_queue.put(
                (
                    "error", worker_id, key, attempt,
                    f"RunPreempted: {exc}", digest,
                )
            )
            stop.set()
            beat.join(timeout=1.0)
            CURRENT_TASK = None
            return
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            digest = hashlib.sha256(
                traceback.format_exc().encode()
            ).hexdigest()[:12]
            result_queue.put(
                (
                    "error", worker_id, key, attempt,
                    f"{type(exc).__name__}: {exc}", digest,
                )
            )
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                return
        finally:
            stop.set()
            beat.join(timeout=1.0)
            CURRENT_TASK = None
