"""Shared-memory transport for the sweep fabric.

Workers hand large per-shard payloads back to the supervisor through
:mod:`multiprocessing.shared_memory` segments instead of pickling them
through the result queue: the worker serializes once into a segment it
creates, the event on the queue carries only ``(name, nbytes)``, and
the supervisor attaches, deserializes, and unlinks.  For SIGKILL-able
workers the interesting part is cleanup, which rests on two legs:

* **Deterministic names.**  Every segment a worker creates is prefixed
  ``repro-zc-<supervisor pid>-``, so the supervisor can enumerate and
  unlink leftovers by prefix (:func:`leaked_segments`,
  :func:`sweep_leaked_segments`) even when the worker died between
  creating a segment and announcing it.
* **Supervisor-side unlink registry.**  Python's ``resource_tracker``
  would unlink a segment as soon as its *creator* exits — exactly wrong
  for a handoff, and useless after SIGKILL.  Segments are therefore
  deregistered from the creator's tracker at creation time
  (:func:`create_segment`) and ownership passes to whichever process
  calls :func:`destroy_segment` (the supervisor, normally; the prefix
  sweep, after a crash).

Everything here degrades gracefully: if shared memory is unavailable
(platform without ``/dev/shm``, permissions), publishers fall back to
returning the payload inline for plain queue transport.
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SEGMENT_PREFIX",
    "shm_available",
    "segment_prefix",
    "create_segment",
    "attach_segment",
    "destroy_segment",
    "publish_payload",
    "fetch_payload",
    "leaked_segments",
    "sweep_leaked_segments",
]

#: Leading component of every segment name the sweep fabric creates.
SEGMENT_PREFIX = "repro-zc"

#: Where POSIX shared memory surfaces as files (Linux).  Used only for
#: leak *detection*; unlinking goes through SharedMemory.unlink().
_SHM_DIR = "/dev/shm"


def shm_available() -> bool:
    """True when POSIX shared memory is usable on this host."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    return os.path.isdir(_SHM_DIR)


def segment_prefix(supervisor_pid: Optional[int] = None) -> str:
    """The name prefix for all segments of one supervisor's sweep."""
    pid = os.getpid() if supervisor_pid is None else supervisor_pid
    return f"{SEGMENT_PREFIX}-{pid}"


def _untrack(shm: Any) -> None:
    """Detach ``shm`` from this process's resource tracker.

    The tracker unlinks segments when their creating process exits —
    correct for in-process scratch, wrong for a worker→supervisor
    handoff where the creator exits first.  Best-effort: tracker
    internals vary across Python versions, and a failure here only
    means a spurious cleanup warning, never a leak (the supervisor's
    prefix sweep unlinks by name).
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _retrack(shm: Any) -> None:
    """Re-register ``shm`` with the resource tracker just before unlink.

    ``SharedMemory.unlink()`` unconditionally *unregisters* the name;
    for segments we deregistered at creation (see :func:`_untrack`) that
    unbalanced unregister makes the tracker process print a KeyError
    traceback.  Registration is idempotent (the tracker keeps a set), so
    re-registering first keeps the ledger balanced on every path.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:
        pass


def create_segment(name: str, nbytes: int):
    """Create (and untrack) a named shared-memory segment."""
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
    except FileExistsError:
        # Stale leftover with the same name (a prior crashed run):
        # replace it so deterministic names never wedge a sweep.
        stale = shared_memory.SharedMemory(name=name)
        _untrack(stale)
        destroy_segment(stale)
        segment = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
    _untrack(segment)
    return segment


def attach_segment(name: str):
    """Attach to an existing segment (and untrack the attachment)."""
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name)
    _untrack(segment)
    return segment


def destroy_segment(segment: Any) -> None:
    """Unlink a segment and release this process's mapping.

    Unlink runs first so the name disappears even if a live buffer
    export keeps the local mapping open (the kernel frees the pages
    once the last mapping closes).
    """
    _retrack(segment)
    try:
        segment.unlink()
    except FileNotFoundError:
        # unlink() raised before its internal unregister ran; drop the
        # entry _retrack just added or the tracker re-unlinks at exit.
        _untrack(segment)
    except Exception:
        _untrack(segment)
    try:
        segment.close()
    except BufferError:
        # A numpy view still points into the buffer; the mapping stays
        # until process exit, but the name is already gone.
        pass
    except Exception:
        pass


def publish_payload(obj: Any, name: str) -> Tuple[Optional[Dict[str, Any]], Any]:
    """Serialize ``obj`` into a named segment for cross-process pickup.

    Uses pickle protocol 5 with out-of-band buffers: large array
    payloads are *not* copied into a private pickle stream first — the
    tiny stream and each raw buffer are memcpy'd straight into the
    segment behind a ``[count, size...]`` header.  One copy in, one
    copy out; the pickled-queue transport this replaces pays three.

    Returns ``(descriptor, None)`` on success — the descriptor is what
    travels over the queue — or ``(None, obj)`` when shared memory is
    unavailable (or ``obj`` defeats out-of-band serialization), in
    which case the caller ships the object inline.
    """
    if not shm_available():
        return None, obj
    try:
        buffers: List[pickle.PickleBuffer] = []
        stream = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
        chunks = [memoryview(stream)] + [b.raw() for b in buffers]
        sizes = [chunk.nbytes for chunk in chunks]
        header = struct.pack(f"<{len(sizes) + 1}Q", len(sizes), *sizes)
        total = len(header) + sum(sizes)
        segment = create_segment(name, total)
    except Exception:
        return None, obj
    buf = segment.buf
    buf[: len(header)] = header
    offset = len(header)
    for chunk, size in zip(chunks, sizes):
        buf[offset : offset + size] = chunk
        offset += size
    descriptor = {"shm": segment.name, "nbytes": total}
    # Close our mapping; the named segment stays until the consumer
    # (or the supervisor's sweep) unlinks it.
    try:
        segment.close()
    except Exception:
        pass
    return descriptor, None


def fetch_payload(descriptor: Dict[str, Any]) -> Any:
    """Load, then unlink, a payload published by :func:`publish_payload`.

    The pickle stream deserializes straight out of the mapped segment;
    each out-of-band buffer is copied exactly once into a private
    ``bytearray`` (the supervisor must own the data after the unlink),
    which reconstructed arrays wrap without a further copy.
    """
    segment = attach_segment(descriptor["shm"])
    try:
        buf = segment.buf
        (count,) = struct.unpack_from("<Q", buf, 0)
        sizes = struct.unpack_from(f"<{count}Q", buf, 8)
        offset = 8 + 8 * count
        stream = buf[offset : offset + sizes[0]]
        try:
            rest = []
            position = offset + sizes[0]
            for size in sizes[1:]:
                rest.append(bytearray(buf[position : position + size]))
                position += size
            obj = pickle.loads(stream, buffers=rest)
        finally:
            stream.release()
    finally:
        destroy_segment(segment)
    return obj


def leaked_segments(prefix: str) -> List[str]:
    """Names of live segments under ``prefix`` (empty off-Linux)."""
    if not os.path.isdir(_SHM_DIR):
        return []
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(prefix))


def sweep_leaked_segments(prefix: str) -> int:
    """Unlink every live segment under ``prefix``; returns the count.

    The supervisor's crash-safety net: a worker SIGKILLed between
    creating a segment and announcing it leaves a name the registry
    never saw.  Deterministic prefixes make those discoverable.
    """
    from multiprocessing import shared_memory

    count = 0
    for name in leaked_segments(prefix):
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        except Exception:
            continue
        _untrack(segment)
        destroy_segment(segment)
        count += 1
    return count
