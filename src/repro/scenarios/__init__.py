"""Structured experiment surface: protocols × graph families × engines.

The congested-clique literature states results as sweeps — a problem
evaluated over instance families and sizes, across models and
algorithms.  This package turns that shape into code on top of the
engine subsystem (:mod:`repro.core.engine`):

* :mod:`repro.scenarios.registry` — the **protocol registry**: name →
  :class:`~repro.scenarios.registry.ProtocolSpec` with a program
  factory per flavour (generator / kernel), an input builder, the
  engines the protocol supports, and ground-truth validators.  Ships
  routing, circuit simulation, matmul triangle detection, subgraph
  detection and MST; open for registration.
* :mod:`repro.scenarios.families` — named graph-instance families
  (``gnp``, ``sparse``, ``complete``, ``cycle``, ``bipartite``).
* :mod:`repro.scenarios.matrix` — the
  :class:`~repro.scenarios.matrix.ScenarioMatrix` runner: sweeps
  problem × family × n × engine, records per-cell timing and bit
  accounting, validates against ground truth, digests outputs, and
  checks every backend against the legacy reference engine.  JSON in,
  JSON out — the benchmark harness and CI smoke sweep are thin callers.
* :mod:`repro.scenarios.sweep` — **resilient sharded execution**:
  ``run(workers=W)`` fans cells across a supervised spawn-context
  worker pool with per-cell deadlines, crash retry with backoff, a
  poison-cell quarantine, and a durable JSONL journal
  (``journal=`` / ``resume_from=``) that makes killed sweeps resumable
  with byte-identical digests.  ``python -m repro.scenarios`` is the
  CLI over all of it.

Planner contract (shared with :mod:`repro.core.engine`): a cell names
its backend explicitly, the network pins it through the
``Network(engine=...)`` shim, and the planner routes kernel-flavour
programs to kernel-capable backends only; unsupported combinations are
*recorded* as unsupported, never silently skipped, so a sweep's JSON
always states the full capability surface it covered.
"""

from repro.scenarios.families import (
    FAMILIES,
    GraphFamily,
    family_names,
    get_family,
    register_family,
)
from repro.scenarios.matrix import (
    DEFAULT_CELL_ROUND_LIMIT,
    MatrixCell,
    MatrixResult,
    ScenarioMatrix,
    run_cell,
)
from repro.scenarios.registry import (
    PROTOCOLS,
    PreparedScenario,
    ProtocolSpec,
    capability_matrix,
    get_protocol,
    protocol_names,
    register_protocol,
)

__all__ = [
    "GraphFamily",
    "FAMILIES",
    "register_family",
    "get_family",
    "family_names",
    "ProtocolSpec",
    "PreparedScenario",
    "PROTOCOLS",
    "register_protocol",
    "get_protocol",
    "protocol_names",
    "capability_matrix",
    "ScenarioMatrix",
    "MatrixCell",
    "MatrixResult",
    "run_cell",
    "DEFAULT_CELL_ROUND_LIMIT",
]
