"""The scenario-matrix runner: problem × graph family × n × engine.

The complexity-theoretic program around the congested clique frames
results as sweeps — a protocol family evaluated over instance families
and sizes, compared across models.  :class:`ScenarioMatrix` is that
experiment surface on top of the engine subsystem: it takes protocol
names (from :mod:`repro.scenarios.registry`), graph family names (from
:mod:`repro.scenarios.families`), sizes and engine names, runs every
cell, and records per-cell timing, round/bit accounting, a canonical
output digest, validation status, and whether the cell's digest matches
the legacy reference engine's — the executable statement that all
backends compute the same function.

Self-checking execution
-----------------------

Two orthogonal chaos facilities ride the sweep:

* ``verify="cross-engine"`` re-runs every ok cell on a second engine
  and compares digests — a structured divergence report
  (:meth:`MatrixResult.fault_reports`) instead of a silent wrong
  answer.
* ``fault_plan=`` executes every cell under a deterministic
  :class:`~repro.core.faults.FaultPlan` **and** once more without it
  (the clean baseline): a cell whose injected faults moved the digest,
  failed validation, or diverged cross-engine counts as *detected*;
  :meth:`MatrixResult.silent_passes` lists injected-but-undetected
  cells, which a chaos CI job asserts empty.

Resilient execution
-------------------

Every cell runs under a default ``Network(round_limit=)`` watchdog
(:data:`DEFAULT_CELL_ROUND_LIMIT`), so a livelocked protocol surfaces
as a structured ``failed`` cell with ``error_type="RoundLimitExceeded"``
instead of stalling the sweep.  :meth:`ScenarioMatrix.run` accepts the
sharded-executor keywords (``workers=``, ``journal=``, ``resume_from=``,
``cell_timeout=``): passing ``workers`` fans cells across the
supervised worker pool of :mod:`repro.scenarios.sweep`; ``journal``
records every completed cell durably and ``resume_from`` replays a
prior journal, skipping completed cells.  Cell execution is a pure
function of the cell coordinates (module-level :func:`run_cell`), which
is what makes digests byte-identical across worker counts, scheduling
orders and kill/resume boundaries.

Results serialize to JSON (:meth:`MatrixResult.to_dict` /
:meth:`MatrixResult.write`), which is what the benchmark harness and
the CI smoke sweep consume.  Failed cells persist the exception type
and a traceback digest so chaos runs stay debuggable from the JSON
alone.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.scenarios.families import get_family
from repro.scenarios.registry import get_protocol

__all__ = [
    "MatrixCell",
    "MatrixResult",
    "ScenarioMatrix",
    "cell_checkpoint_dir",
    "instance_graph",
    "merge_shard_payloads",
    "plan_shards",
    "run_cell",
    "run_cell_shard",
    "DEFAULT_CELL_ROUND_LIMIT",
]

#: The engine the matrix prefers as ground truth for digests; sweeps
#: that exclude it fall back to the first engine that ran the cell.
REFERENCE_ENGINE = "legacy"

#: Default per-cell round watchdog: far above any registered protocol's
#: round count at sweep sizes, far below the engine's 1e6 safety budget.
#: A protocol that livelocks (e.g. a retransmission loop under chaos)
#: becomes a structured ``failed`` cell with
#: ``error_type="RoundLimitExceeded"`` instead of a stalled sweep.
DEFAULT_CELL_ROUND_LIMIT = 50_000


def _cell_coord(seed: int, protocol: str, family: str, n: int) -> str:
    return f"{seed}:{protocol}:{family}:{n}"


def _cell_key(seed: int, protocol: str, family: str, n: int, engine: str) -> str:
    """The per-(coordinate, engine) identity used by sweep journals and
    the worker pool — one completed journal line per key."""
    return f"{_cell_coord(seed, protocol, family, n)}:{engine}"


def cell_checkpoint_dir(base: str, key: str) -> str:
    """Where one cell's mid-run snapshots live under a sweep's
    ``checkpoint_dir``: one subdirectory per cell key (``:`` is not
    portable in path components, so it is flattened to ``_``).  Shared
    by the serial runner, the pool worker and the worker's post-success
    cleanup — all three must agree on the location."""
    import os

    return os.path.join(base, key.replace(":", "_"))


def instance_graph(seed: int, protocol: str, family: str, n: int):
    """The exact graph instance a sweep cell ran on — the same coord
    derivation :meth:`ScenarioMatrix.run` uses, exposed so callers
    (benchmarks, reports) never re-implement the convention."""
    import random

    from repro.scenarios.families import get_family

    return get_family(family).build(
        n, random.Random(_cell_coord(seed, protocol, family, n))
    )


def _digest(summary: Any, result: Any) -> str:
    """Canonical digest of one cell's observable behaviour."""
    blob = repr(
        (summary, result.rounds, result.total_bits, result.max_round_bits)
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _instance_records(prepared, runs) -> List[Tuple[Any, int, int, int]]:
    """Per-instance observable records of one ``run_many`` sweep: the
    canonical summary plus the round/bit accounting, one tuple per
    instance.  Records are a pure function of the instance (never of
    chunk or shard boundaries), which is what makes K-sharded cells
    merge byte-identically."""
    return [
        (prepared.summarize(run), run.rounds, run.total_bits, run.max_round_bits)
        for run in runs
    ]


def _records_digest(records) -> str:
    """Canonical digest of a multi-instance cell: the ordered tuple of
    per-instance records.  The K-shard merge concatenates shard records
    in instance order before digesting, so the merged digest equals the
    serial (unsharded) runner's by construction."""
    return hashlib.sha256(repr(tuple(records)).encode()).hexdigest()[:16]


def plan_shards(
    total: int, shard_k: Optional[int], n: int
) -> List[Tuple[int, int]]:
    """Split a K-instance cell into ``[lo, hi)`` instance ranges of at
    most ``shard_k`` instances each.

    Shard boundaries align with the engines' existing K-chunk seam
    (:func:`repro.core.engine.delivery.batch_chunk_size`): when the
    requested shard size exceeds one chunk it is rounded down to a whole
    number of chunks, so a shard never splits a chunk that the unsharded
    runner would have executed as one stacked batch.  (Per-instance
    results are chunk-invariant either way; alignment keeps the sharded
    execution's chunk geometry a subset of the serial runner's.)
    """
    from repro.core.engine.delivery import batch_chunk_size

    if shard_k is None or shard_k < 1:
        return [(0, total)]
    size = shard_k
    chunk = batch_chunk_size(n)
    if size > chunk:
        size = (size // chunk) * chunk
    return [(lo, min(lo + size, total)) for lo in range(0, total, size)]


def _failure_fields(cell: "MatrixCell", exc: BaseException) -> None:
    """Persist a debuggable failure record on ``cell``: message, type
    and a short digest of the traceback (stable enough to dedupe crash
    signatures across a sweep without shipping whole stacks in JSON)."""
    cell.status = "failed"
    cell.error = f"{type(exc).__name__}: {exc}"
    cell.error_type = type(exc).__name__
    cell.traceback_digest = hashlib.sha256(
        traceback.format_exc().encode()
    ).hexdigest()[:12]


@dataclass
class MatrixCell:
    """One (protocol, family, n, engine) execution."""

    protocol: str
    family: str
    n: int
    engine: str
    status: str  # "ok" | "unsupported" | "failed"
    seconds: Optional[float] = None
    rounds: Optional[int] = None
    total_bits: Optional[int] = None
    max_round_bits: Optional[int] = None
    digest: Optional[str] = None
    validated: Optional[bool] = None
    matches_reference: Optional[bool] = None
    error: Optional[str] = None
    #: Failure forensics (satellite of the chaos work: a failed cell is
    #: debuggable from the JSON record alone).
    error_type: Optional[str] = None
    traceback_digest: Optional[str] = None
    #: Chaos fields — populated only when the sweep carries a FaultPlan.
    fault_count: Optional[int] = None
    clean_digest: Optional[str] = None
    detected: Optional[bool] = None
    #: Cross-engine verification fields (``verify="cross-engine"``).
    verify_engine: Optional[str] = None
    verify_digest: Optional[str] = None
    verify_match: Optional[bool] = None
    #: Graceful degradation, if the planned backend failed mid-sweep.
    engine_fallback: Optional[str] = None
    #: Static-analysis verdict for the cell's (protocol, family, n)
    #: coordinate (``ScenarioMatrix(analyze=True)``): None = not run.
    analysis_ok: Optional[bool] = None
    analysis_violations: Optional[List[str]] = None
    #: Sharded-executor forensics: how many attempts the supervisor
    #: spent on this cell (None = single-shot serial execution), and
    #: whether it landed in the poison quarantine after exhausting them.
    attempts: Optional[int] = None
    quarantined: Optional[bool] = None
    #: Checkpoint provenance (checkpointed sweeps only): the round the
    #: run resumed from (None = fresh start) and how many snapshots the
    #: cell flushed.
    resumed_from_round: Optional[int] = None
    checkpoints: Optional[int] = None
    #: Compiled-replay cache pressure observed while the cell ran:
    #: :class:`~repro.core.errors.ReplayEvictionWarning` count and the
    #: last eviction's message (None = no evictions).
    evictions: Optional[int] = None
    last_eviction: Optional[str] = None
    #: Persistent schedule-cache traffic (populated only when the sweep
    #: ran with ``schedule_cache=``): disk hits/misses across the cell's
    #: sample networks, evictions (explicit + corrupt), and how many
    #: genuinely fresh compilations the cell paid for — zero on a warm
    #: cache, which is what the bench's ``zero_copy`` gate asserts.
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    cache_evictions: Optional[int] = None
    schedule_compiles: Optional[int] = None
    #: Multi-instance (``run_many``) cells: how many instances the cell
    #: covers, and — when the sweep split it — how many K-shards were
    #: merged to produce it (None = executed unsharded).
    instances: Optional[int] = None
    shards: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "family": self.family,
            "n": self.n,
            "engine": self.engine,
            "status": self.status,
            "seconds": self.seconds,
            "rounds": self.rounds,
            "total_bits": self.total_bits,
            "max_round_bits": self.max_round_bits,
            "digest": self.digest,
            "validated": self.validated,
            "matches_reference": self.matches_reference,
            "error": self.error,
            "error_type": self.error_type,
            "traceback_digest": self.traceback_digest,
            "fault_count": self.fault_count,
            "clean_digest": self.clean_digest,
            "detected": self.detected,
            "verify_engine": self.verify_engine,
            "verify_digest": self.verify_digest,
            "verify_match": self.verify_match,
            "engine_fallback": self.engine_fallback,
            "analysis_ok": self.analysis_ok,
            "analysis_violations": self.analysis_violations,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
            "resumed_from_round": self.resumed_from_round,
            "checkpoints": self.checkpoints,
            "evictions": self.evictions,
            "last_eviction": self.last_eviction,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "schedule_compiles": self.schedule_compiles,
            "instances": self.instances,
            "shards": self.shards,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MatrixCell":
        """Rebuild a cell from :meth:`to_dict` output (journal replay,
        worker-pool transport).  Unknown keys are ignored so journals
        written by a newer schema still replay."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})

    def key(self, seed: int) -> str:
        """This cell's journal identity under sweep seed ``seed``."""
        return _cell_key(seed, self.protocol, self.family, self.n, self.engine)


@dataclass
class MatrixResult:
    """All cells of one sweep plus the sweep's coordinates."""

    meta: Dict[str, Any]
    cells: List[MatrixCell] = field(default_factory=list)

    def ok_cells(self) -> List[MatrixCell]:
        return [cell for cell in self.cells if cell.status == "ok"]

    def mismatches(self) -> List[MatrixCell]:
        """Cells whose digest differs from the legacy reference (or that
        failed validation/execution/cross-engine verification)."""
        return [
            cell
            for cell in self.cells
            if cell.status == "failed"
            or cell.matches_reference is False
            or cell.validated is False
            or cell.verify_match is False
            or cell.analysis_ok is False
        ]

    def quarantined(self) -> List[MatrixCell]:
        """Poison cells: the sharded executor exhausted its retry budget
        on them (worker crashes, deadline kills).  Always a subset of
        :meth:`mismatches` — quarantine is never silent."""
        return [cell for cell in self.cells if cell.quarantined]

    def injected_cells(self) -> List[MatrixCell]:
        """Cells that actually received at least one injected fault."""
        return [cell for cell in self.cells if (cell.fault_count or 0) > 0]

    def silent_passes(self) -> List[MatrixCell]:
        """The chaos sweep's cardinal sin: cells whose injected faults
        left no observable trace (digest equal to the clean baseline,
        validation green, cross-engine agreement).  A chaos CI job
        asserts this list is empty."""
        return [
            cell
            for cell in self.injected_cells()
            if cell.detected is False
        ]

    def fault_reports(self) -> List[Dict[str, Any]]:
        """Structured per-cell divergence reports: every cell that
        failed, failed validation, mismatched the reference, diverged
        cross-engine or diverged from its clean baseline, with the
        reasons flagged explicitly."""
        reports: List[Dict[str, Any]] = []
        for cell in self.cells:
            flags = []
            if cell.status == "failed":
                flags.append("execution-failed")
            if cell.quarantined:
                flags.append("quarantined")
            if cell.validated is False:
                flags.append("validation-failed")
            if cell.matches_reference is False:
                flags.append("reference-digest-mismatch")
            if cell.verify_match is False:
                flags.append("cross-engine-divergence")
            if (
                cell.clean_digest is not None
                and cell.digest is not None
                and cell.digest != cell.clean_digest
            ):
                flags.append("diverged-from-clean-run")
            if not flags:
                continue
            reports.append(
                {
                    "protocol": cell.protocol,
                    "family": cell.family,
                    "n": cell.n,
                    "engine": cell.engine,
                    "flags": flags,
                    "fault_count": cell.fault_count,
                    "error": cell.error,
                    "error_type": cell.error_type,
                    "traceback_digest": cell.traceback_digest,
                }
            )
        return reports

    def to_dict(self) -> Dict[str, Any]:
        return {
            "meta": self.meta,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


# -- cell execution (module-level: pure functions of the coordinates, --
# -- picklable across the worker-pool process boundary) ----------------


def _note_cache(cell: MatrixCell, network: Any) -> None:
    """Accumulate one sample network's persistent schedule-cache traffic
    onto the cell (no-op when the sweep runs without a cache)."""
    cache = getattr(network, "schedule_cache", None)
    if cache is None:
        return
    stats = cache.stats
    cell.cache_hits = (cell.cache_hits or 0) + stats["hits"]
    cell.cache_misses = (cell.cache_misses or 0) + stats["misses"]
    cell.cache_evictions = (
        (cell.cache_evictions or 0)
        + stats["evictions"]
        + stats["corrupt_evictions"]
    )
    cell.schedule_compiles = (
        (cell.schedule_compiles or 0) + network.schedule_stats["compiled"]
    )


def _execute_cell(
    spec,
    prepared,
    family_name: str,
    n: int,
    engine: str,
    cell_seed: int,
    *,
    repeats: int = 1,
    verify: Optional[str] = None,
    fault_plan: Optional[Any] = None,
    round_limit: Optional[int] = DEFAULT_CELL_ROUND_LIMIT,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_rounds: Optional[int] = None,
    checkpoint_every_seconds: Optional[float] = None,
    preempt: Optional[Any] = None,
    on_snapshot: Optional[Callable[[int, str, str], None]] = None,
    schedule_cache: Optional[str] = None,
    lane_arena: Optional[Any] = None,
) -> MatrixCell:
    """Run one prepared (protocol, family, n) instance on one engine.

    ``checkpoint_dir`` (already cell-specific — see
    :func:`cell_checkpoint_dir`) enables mid-run snapshot/restore on the
    first timing sample: the run resumes from the newest valid snapshot
    when one exists, flushes new ones per the ``checkpoint_every_*``
    policy, and honours ``preempt`` (flush + :class:`RunPreempted`,
    which propagates to the supervisor instead of completing the cell).
    Chaos cells skip checkpointing — snapshots of fault-corrupted state
    must never be resumable.
    """
    import warnings

    from repro.core.errors import ReplayEvictionWarning, RunPreempted
    from repro.core.network import Network

    cell = MatrixCell(
        protocol=spec.name, family=family_name, n=n, engine=engine,
        status="unsupported",
    )
    if engine not in spec.engines:
        return cell
    flavour = spec.program_for(engine)
    program = prepared.programs.get(flavour)
    if program is None:
        return cell
    if getattr(prepared, "instances", None) is not None:
        return _execute_many_cell(
            cell, spec, prepared, program, engine, cell_seed,
            repeats=repeats, verify=verify, fault_plan=fault_plan,
            round_limit=round_limit, schedule_cache=schedule_cache,
            lane_arena=lane_arena,
        )[0]
    chaos = fault_plan is not None and fault_plan.is_active
    checkpointing = checkpoint_dir is not None and not chaos

    def network_kwargs() -> Dict[str, Any]:
        # A fresh network per sample keeps cells independent: no
        # compiled-schedule carry-over between engines or repeats beyond
        # what one run legitimately builds.  The per-cell seed applies
        # unless the prepare hook pinned its own; the default round
        # watchdog applies unless the hook set its own limit.  The
        # persistent schedule cache is the deliberate exception: it is
        # *meant* to be shared across cells, engines and processes.
        kwargs = dict(prepared.network_kwargs)
        kwargs.setdefault("seed", cell_seed)
        if round_limit is not None:
            kwargs.setdefault("round_limit", round_limit)
        if schedule_cache is not None:
            kwargs.setdefault("schedule_cache", schedule_cache)
        if lane_arena is not None:
            kwargs.setdefault("lane_allocator", lane_arena)
        return kwargs

    try:
        best: Optional[float] = None
        summary = digest = run = None
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for sample in range(repeats):
                kwargs = network_kwargs()
                if chaos:
                    kwargs["fault_plan"] = fault_plan
                network = Network(engine=engine, **kwargs)
                run_kwargs: Dict[str, Any] = {}
                if checkpointing and sample == 0:
                    # Snapshot/restore applies to the first sample only:
                    # a later repeat resuming from the first's snapshots
                    # would time a partial run.  Resumption is
                    # digest-identical, so the cross-repeat determinism
                    # check below still holds.
                    from repro.core.checkpoint import CheckpointPolicy

                    run_kwargs["checkpoint"] = CheckpointPolicy(
                        checkpoint_dir,
                        every_rounds=checkpoint_every_rounds,
                        every_seconds=checkpoint_every_seconds,
                        preempt=preempt,
                        on_snapshot=on_snapshot,
                    )
                    run_kwargs["resume_from"] = "auto"
                start = time.perf_counter()  # analysis: allow(wall-clock)
                run = network.run(
                    program, inputs=prepared.inputs, **run_kwargs
                )
                elapsed = time.perf_counter() - start  # analysis: allow(wall-clock)
                if run_kwargs:
                    stats = network.checkpoint_stats
                    cell.checkpoints = stats["snapshots"]
                    if run.resume is not None:
                        cell.resumed_from_round = run.resume["round"]
                _note_cache(cell, network)
                sample_summary = prepared.summarize(run)
                sample_digest = _digest(sample_summary, run)
                if digest is not None and sample_digest != digest:
                    raise AssertionError(
                        "nondeterministic cell: digest changed across repeats"
                    )
                summary, digest = sample_summary, sample_digest
                if best is None or elapsed < best:
                    best = elapsed
        evictions = [
            w for w in caught if issubclass(w.category, ReplayEvictionWarning)
        ]
        if evictions:
            cell.evictions = len(evictions)
            cell.last_eviction = str(evictions[-1].message)
        cell.status = "ok"
        cell.seconds = best
        cell.rounds = run.rounds
        cell.total_bits = run.total_bits
        cell.max_round_bits = run.max_round_bits
        cell.digest = digest
        if run.fallback is not None:
            cell.engine_fallback = (
                f"{run.fallback['from']}->{run.fallback['to']}"
            )
        if chaos:
            cell.fault_count = len(run.faults or ())
            # Clean baseline: the same cell, same seed, no plan.  Its
            # digest is what "the faults changed the answer" is
            # measured against.
            clean = Network(engine=engine, **network_kwargs()).run(
                program, inputs=prepared.inputs
            )
            cell.clean_digest = _digest(prepared.summarize(clean), clean)
        if prepared.validate is not None:
            try:
                prepared.validate(summary)
                cell.validated = True
            except AssertionError as exc:
                cell.validated = False
                cell.error = str(exc)
        if verify == "cross-engine":
            _verify_cell(
                cell, spec, prepared, cell_seed, digest,
                fault_plan=fault_plan, round_limit=round_limit,
            )
    except RunPreempted:
        # Preemption is not a cell outcome: the run flushed its final
        # snapshot and must surface to the supervisor (which retries the
        # cell from that snapshot), not complete as a failed cell.
        raise
    except Exception as exc:  # noqa: BLE001 - cell isolation is the point
        _failure_fields(cell, exc)
    return cell


def _verify_cell(
    cell: MatrixCell,
    spec,
    prepared,
    cell_seed: int,
    digest: Optional[str],
    *,
    fault_plan: Optional[Any] = None,
    round_limit: Optional[int] = DEFAULT_CELL_ROUND_LIMIT,
) -> None:
    """Re-run one ok cell on a second engine and compare digests.

    Prefers the legacy reference engine as the witness; a cell that
    already ran on legacy is checked against the next engine the
    protocol supports.  A witness failure counts as a divergence
    (``verify_match=False``) — self-checking must not fail open.
    """
    from repro.core.network import Network

    witness = next(
        (
            name
            for name in [REFERENCE_ENGINE]
            + [e for e in spec.engines if e != REFERENCE_ENGINE]
            if name != cell.engine and name in spec.engines
        ),
        None,
    )
    if witness is None:
        return
    program = prepared.programs.get(spec.program_for(witness))
    if program is None:
        return
    cell.verify_engine = witness
    try:
        kwargs = dict(prepared.network_kwargs)
        kwargs.setdefault("seed", cell_seed)
        if round_limit is not None:
            kwargs.setdefault("round_limit", round_limit)
        if fault_plan is not None and fault_plan.is_active:
            kwargs["fault_plan"] = fault_plan
        run = Network(engine=witness, **kwargs).run(
            program, inputs=prepared.inputs
        )
        cell.verify_digest = _digest(prepared.summarize(run), run)
        cell.verify_match = cell.verify_digest == digest
    except Exception as exc:  # noqa: BLE001 - divergence, not crash
        cell.verify_match = False
        if cell.error is None:
            cell.error = f"verify[{witness}] {type(exc).__name__}: {exc}"


# -- multi-instance (run_many) cells and K-sharding ---------------------


def _execute_many_cell(
    cell: MatrixCell,
    spec,
    prepared,
    program,
    engine: str,
    cell_seed: int,
    *,
    repeats: int = 1,
    verify: Optional[str] = None,
    fault_plan: Optional[Any] = None,
    round_limit: Optional[int] = DEFAULT_CELL_ROUND_LIMIT,
    schedule_cache: Optional[str] = None,
    lane_arena: Optional[Any] = None,
    lo: Optional[int] = None,
    hi: Optional[int] = None,
) -> Tuple[MatrixCell, Optional[List[Tuple[Any, int, int, int]]]]:
    """Run instances ``[lo, hi)`` of a multi-instance cell through one
    ``run_many`` sweep and return ``(cell, per-instance records)``.

    With the default full range this *is* the cell (digest over all K
    records); with a sub-range it is one K-shard, whose records the
    supervisor concatenates via :func:`merge_shard_payloads`.  Mid-run
    checkpointing does not apply here — the shard boundary is the
    resumption unit for multi-instance cells.
    """
    import warnings

    from repro.core.errors import ReplayEvictionWarning
    from repro.core.network import Network

    instances = prepared.instances
    lo = 0 if lo is None else lo
    hi = len(instances) if hi is None else hi
    chaos = fault_plan is not None and fault_plan.is_active

    def network_kwargs() -> Dict[str, Any]:
        kwargs = dict(prepared.network_kwargs)
        kwargs.setdefault("seed", cell_seed)
        if round_limit is not None:
            kwargs.setdefault("round_limit", round_limit)
        if schedule_cache is not None:
            kwargs.setdefault("schedule_cache", schedule_cache)
        if lane_arena is not None:
            kwargs.setdefault("lane_allocator", lane_arena)
        return kwargs

    records: Optional[List[Tuple[Any, int, int, int]]] = None
    try:
        best: Optional[float] = None
        digest = runs = None
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _sample in range(repeats):
                kwargs = network_kwargs()
                if chaos:
                    kwargs["fault_plan"] = fault_plan
                network = Network(engine=engine, **kwargs)
                start = time.perf_counter()  # analysis: allow(wall-clock)
                runs = network.run_many(program, instances[lo:hi])
                elapsed = time.perf_counter() - start  # analysis: allow(wall-clock)
                _note_cache(cell, network)
                sample_records = _instance_records(prepared, runs)
                sample_digest = _records_digest(sample_records)
                if digest is not None and sample_digest != digest:
                    raise AssertionError(
                        "nondeterministic cell: digest changed across repeats"
                    )
                records, digest = sample_records, sample_digest
                if best is None or elapsed < best:
                    best = elapsed
        evictions = [
            w for w in caught if issubclass(w.category, ReplayEvictionWarning)
        ]
        if evictions:
            cell.evictions = len(evictions)
            cell.last_eviction = str(evictions[-1].message)
        cell.status = "ok"
        cell.seconds = best
        cell.rounds = records[0][1] if records else 0
        cell.total_bits = sum(rec[2] for rec in records)
        cell.max_round_bits = max((rec[3] for rec in records), default=0)
        cell.digest = digest
        cell.instances = hi - lo
        fallbacks = [run.fallback for run in runs if run.fallback is not None]
        if fallbacks:
            cell.engine_fallback = (
                f"{fallbacks[0]['from']}->{fallbacks[0]['to']}"
            )
        if chaos:
            cell.fault_count = sum(len(run.faults or ()) for run in runs)
            clean_runs = Network(engine=engine, **network_kwargs()).run_many(
                program, instances[lo:hi]
            )
            cell.clean_digest = _records_digest(
                _instance_records(prepared, clean_runs)
            )
        if prepared.validate_instance is not None:
            try:
                for k, rec in enumerate(records):
                    prepared.validate_instance(lo + k, rec[0])
                cell.validated = True
            except AssertionError as exc:
                cell.validated = False
                cell.error = str(exc)
        if verify == "cross-engine":
            _verify_many_cell(
                cell, spec, prepared, cell_seed, digest, lo, hi,
                fault_plan=fault_plan, round_limit=round_limit,
            )
    except Exception as exc:  # noqa: BLE001 - cell isolation is the point
        _failure_fields(cell, exc)
        records = None
    return cell, records


def _verify_many_cell(
    cell: MatrixCell,
    spec,
    prepared,
    cell_seed: int,
    digest: Optional[str],
    lo: int,
    hi: int,
    *,
    fault_plan: Optional[Any] = None,
    round_limit: Optional[int] = DEFAULT_CELL_ROUND_LIMIT,
) -> None:
    """Cross-engine witness for a multi-instance cell: re-run the same
    instance range on a second engine and compare record digests."""
    from repro.core.network import Network

    witness = next(
        (
            name
            for name in [REFERENCE_ENGINE]
            + [e for e in spec.engines if e != REFERENCE_ENGINE]
            if name != cell.engine and name in spec.engines
        ),
        None,
    )
    if witness is None:
        return
    program = prepared.programs.get(spec.program_for(witness))
    if program is None:
        return
    cell.verify_engine = witness
    try:
        kwargs = dict(prepared.network_kwargs)
        kwargs.setdefault("seed", cell_seed)
        if round_limit is not None:
            kwargs.setdefault("round_limit", round_limit)
        if fault_plan is not None and fault_plan.is_active:
            kwargs["fault_plan"] = fault_plan
        runs = Network(engine=witness, **kwargs).run_many(
            program, prepared.instances[lo:hi]
        )
        cell.verify_digest = _records_digest(_instance_records(prepared, runs))
        cell.verify_match = cell.verify_digest == digest
    except Exception as exc:  # noqa: BLE001 - divergence, not crash
        cell.verify_match = False
        if cell.error is None:
            cell.error = f"verify[{witness}] {type(exc).__name__}: {exc}"


def _shard_payload(
    spec,
    prepared,
    family_name: str,
    n: int,
    engine: str,
    cell_seed: int,
    lo: int,
    hi: int,
    *,
    repeats: int = 1,
    round_limit: Optional[int] = DEFAULT_CELL_ROUND_LIMIT,
    schedule_cache: Optional[str] = None,
    lane_arena: Optional[Any] = None,
) -> Dict[str, Any]:
    """Execute one K-shard of a prepared multi-instance cell and return
    its transportable payload: the shard's partial cell record plus the
    per-instance records the merge concatenates."""
    cell = MatrixCell(
        protocol=spec.name, family=family_name, n=n, engine=engine,
        status="unsupported",
    )
    records = None
    if engine in spec.engines:
        program = prepared.programs.get(spec.program_for(engine))
        if program is not None:
            cell, records = _execute_many_cell(
                cell, spec, prepared, program, engine, cell_seed,
                repeats=repeats, round_limit=round_limit,
                schedule_cache=schedule_cache, lane_arena=lane_arena,
                lo=lo, hi=hi,
            )
    return {"lo": lo, "hi": hi, "cell": cell.to_dict(), "records": records}


def run_cell_shard(
    spec,
    family_name: str,
    n: int,
    engine: str,
    *,
    seed: int = 0,
    lo: int,
    hi: int,
    repeats: int = 1,
    round_limit: Optional[int] = DEFAULT_CELL_ROUND_LIMIT,
    schedule_cache: Optional[str] = None,
    lane_arena: Optional[Any] = None,
) -> Dict[str, Any]:
    """Worker-pool entry point for one K-shard: rebuild the cell's graph
    and prepared scenario from the coordinates (exactly as
    :func:`run_cell` does — shards must see the identical instance
    payloads in every process), then execute instances ``[lo, hi)``."""
    import random

    coord = _cell_coord(seed, spec.name, family_name, n)
    cell_seed = int.from_bytes(hashlib.sha256(coord.encode()).digest()[:4], "big")
    rng = random.Random(coord)
    try:
        graph = get_family(family_name).build(n, rng)
        prepared = spec.prepare(n, graph, rng)
        if prepared.instances is None:
            raise ValueError(
                f"protocol {spec.name!r} is not multi-instance; cannot shard"
            )
    except Exception as exc:  # noqa: BLE001 - isolate the shard
        cell = MatrixCell(
            protocol=spec.name, family=family_name, n=n, engine=engine,
            status="failed",
        )
        _failure_fields(cell, exc)
        return {"lo": lo, "hi": hi, "cell": cell.to_dict(), "records": None}
    return _shard_payload(
        spec, prepared, family_name, n, engine, cell_seed, lo, hi,
        repeats=repeats, round_limit=round_limit,
        schedule_cache=schedule_cache, lane_arena=lane_arena,
    )


def merge_shard_payloads(
    spec, family_name: str, n: int, engine: str, payloads: Sequence[Dict[str, Any]]
) -> MatrixCell:
    """Deterministically merge K-shard payloads into the cell the serial
    runner would have produced.

    Records concatenate in instance order and the digest covers the full
    ordered tuple — byte-identical to the unsharded ``run_many`` cell,
    because each record is a pure function of its instance.  Failure is
    sticky (any failed shard fails the cell); instrumentation fields
    (seconds, cache counters, evictions) sum across shards.
    """
    ordered = sorted(payloads, key=lambda p: p["lo"])
    shard_cells = [MatrixCell.from_dict(p["cell"]) for p in ordered]
    cell = MatrixCell(
        protocol=spec.name, family=family_name, n=n, engine=engine,
        status="ok",
    )
    cell.shards = len(ordered)
    failed = next((c for c in shard_cells if c.status == "failed"), None)
    if failed is not None:
        cell.status = "failed"
        cell.error = failed.error
        cell.error_type = failed.error_type
        cell.traceback_digest = failed.traceback_digest
        return cell
    if all(c.status == "unsupported" for c in shard_cells):
        cell.status = "unsupported"
        return cell
    records: List[Any] = []
    for payload in ordered:
        records.extend(payload["records"] or ())
    cell.digest = _records_digest(records)
    cell.rounds = records[0][1] if records else 0
    cell.total_bits = sum(rec[2] for rec in records)
    cell.max_round_bits = max((rec[3] for rec in records), default=0)
    cell.seconds = sum(c.seconds or 0.0 for c in shard_cells)
    cell.instances = sum(c.instances or 0 for c in shard_cells)
    verdicts = [c.validated for c in shard_cells]
    if any(v is False for v in verdicts):
        cell.validated = False
        cell.error = next(
            (c.error for c in shard_cells if c.validated is False), None
        )
    elif all(v is True for v in verdicts):
        cell.validated = True
    for name in ("cache_hits", "cache_misses", "cache_evictions",
                 "schedule_compiles", "evictions"):
        values = [getattr(c, name) for c in shard_cells]
        if any(v is not None for v in values):
            setattr(cell, name, sum(v or 0 for v in values))
    last = next(
        (c.last_eviction for c in reversed(shard_cells)
         if c.last_eviction is not None),
        None,
    )
    cell.last_eviction = last
    fallback = next(
        (c.engine_fallback for c in shard_cells
         if c.engine_fallback is not None),
        None,
    )
    cell.engine_fallback = fallback
    return cell


def run_cell(
    spec,
    family_name: str,
    n: int,
    engine: str,
    *,
    seed: int = 0,
    repeats: int = 1,
    verify: Optional[str] = None,
    fault_plan: Optional[Any] = None,
    round_limit: Optional[int] = DEFAULT_CELL_ROUND_LIMIT,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_rounds: Optional[int] = None,
    checkpoint_every_seconds: Optional[float] = None,
    preempt: Optional[Any] = None,
    on_snapshot: Optional[Callable[[int, str, str], None]] = None,
    schedule_cache: Optional[str] = None,
    lane_arena: Optional[Any] = None,
) -> MatrixCell:
    """Execute one sweep cell from scratch: build the instance graph,
    prepare the scenario, run it on ``engine``.

    ``checkpoint_dir`` is the sweep-level base directory; this function
    derives the cell's own snapshot directory from its journal key
    (:func:`cell_checkpoint_dir`), so an interrupted attempt's snapshots
    are found again by any later attempt in any process.

    This is the worker-pool entry point, and deliberately a pure
    function of the cell coordinates: the graph rng, the network seed
    and the protocol instance all derive from
    ``(seed, protocol, family, n)`` exactly as the serial runner derives
    them, so a cell computed in any process, under any scheduling, at
    any attempt yields the identical :class:`MatrixCell` digest.
    """
    import random

    coord = _cell_coord(seed, spec.name, family_name, n)
    # Stable across processes (unlike hash(), which is salted): the
    # cell's network seed must not change between runs or the digests
    # stop being comparable.
    cell_seed = int.from_bytes(hashlib.sha256(coord.encode()).digest()[:4], "big")
    rng = random.Random(coord)
    try:
        graph = get_family(family_name).build(n, rng)
        prepared = spec.prepare(n, graph, rng)
    except Exception as exc:  # noqa: BLE001 - isolate the cell
        cell = MatrixCell(
            protocol=spec.name, family=family_name, n=n, engine=engine,
            status="failed",
        )
        _failure_fields(cell, exc)
        return cell
    cell_dir = None
    if checkpoint_dir is not None:
        cell_dir = cell_checkpoint_dir(
            checkpoint_dir,
            _cell_key(seed, spec.name, family_name, n, engine),
        )
    return _execute_cell(
        spec, prepared, family_name, n, engine, cell_seed,
        repeats=repeats, verify=verify, fault_plan=fault_plan,
        round_limit=round_limit,
        checkpoint_dir=cell_dir,
        checkpoint_every_rounds=checkpoint_every_rounds,
        checkpoint_every_seconds=checkpoint_every_seconds,
        preempt=preempt, on_snapshot=on_snapshot,
        schedule_cache=schedule_cache, lane_arena=lane_arena,
    )


class ScenarioMatrix:
    """Sweep registered protocols over graph families, sizes and engines.

    Parameters
    ----------
    protocols, families:
        Names from the protocol / graph-family registries.
    sizes:
        Problem sizes ``n`` (one network per cell).
    engines:
        Engine names to run each cell on; defaults to every registered
        backend.  Cells whose protocol does not support an engine are
        recorded with ``status="unsupported"`` rather than skipped
        silently.
    seed:
        Base seed; each (protocol, family, n) coordinate derives its own
        instance rng and network seed from it, so cells are reproducible
        in isolation and identical across engines (which is what makes
        the cross-engine digest comparison meaningful).
    repeats:
        Timing samples per cell (best-of); results are checked on every
        sample and must stay identical.
    verify:
        ``"cross-engine"`` re-runs every ok cell once on a second engine
        (preferring the legacy reference) and records
        ``verify_engine``/``verify_digest``/``verify_match`` — the
        self-checking execution mode.  ``None`` (default) skips it.
    fault_plan:
        An optional :class:`~repro.core.faults.FaultPlan` applied to
        every cell.  Each faulted cell also runs a clean (no-plan)
        baseline on the same network coordinates; the pair of digests is
        what decides ``detected``.
    cell_round_limit:
        Per-cell round watchdog wired into every cell's network as
        ``Network(round_limit=)`` (default
        :data:`DEFAULT_CELL_ROUND_LIMIT`); ``None`` disables it.  A
        prepare hook that pins its own ``round_limit`` wins.
    """

    def __init__(
        self,
        protocols: Sequence[str],
        families: Sequence[str],
        sizes: Sequence[int],
        engines: Optional[Sequence[str]] = None,
        seed: int = 0,
        repeats: int = 1,
        verify: Optional[str] = None,
        fault_plan: Optional[Any] = None,
        analyze: bool = False,
        cell_round_limit: Optional[int] = DEFAULT_CELL_ROUND_LIMIT,
    ) -> None:
        from repro.core.engine.planner import ENGINES

        if engines is None:
            engines = sorted(ENGINES)
        for engine in engines:
            if engine not in ENGINES:
                raise ValueError(
                    f"unknown engine {engine!r}; known: {sorted(ENGINES)}"
                )
        if verify not in (None, "cross-engine"):
            raise ValueError(
                f"unknown verify mode {verify!r}; use None or 'cross-engine'"
            )
        if fault_plan is not None:
            fault_plan.validate()
        if cell_round_limit is not None and cell_round_limit < 1:
            raise ValueError("cell_round_limit must be at least 1 round")
        self.protocols = [get_protocol(name).name for name in protocols]
        self.families = [get_family(name).name for name in families]
        self.sizes = list(sizes)
        self.engines = list(engines)
        self.seed = seed
        self.repeats = max(1, repeats)
        self.verify = verify
        self.fault_plan = fault_plan
        #: When true, every (protocol, family, n) coordinate also runs
        #: the static verifier (obliviousness + bandwidth budget) and
        #: its cells carry ``analysis_ok`` / ``analysis_violations``.
        self.analyze = analyze
        self.cell_round_limit = cell_round_limit

    # -- sweep geometry ---------------------------------------------------

    def coordinates(self) -> List[Tuple[str, str, int]]:
        """The (protocol, family, n) coordinates of this sweep, in the
        canonical (serial) execution order."""
        return [
            (protocol, family, n)
            for protocol in self.protocols
            for family in self.families
            for n in self.sizes
        ]

    def ordered_engines(self) -> List[str]:
        """Engines in execution order: the reference engine first so
        every other cell can be compared against its digest."""
        return sorted(self.engines, key=lambda e: e != REFERENCE_ENGINE)

    def cell_keys(self) -> List[str]:
        """Journal identity of every cell, in canonical order."""
        return [
            _cell_key(self.seed, protocol, family, n, engine)
            for protocol, family, n in self.coordinates()
            for engine in self.ordered_engines()
        ]

    def _meta(self) -> Dict[str, Any]:
        return {
            "protocols": self.protocols,
            "families": self.families,
            "sizes": self.sizes,
            "engines": self.engines,
            "seed": self.seed,
            "repeats": self.repeats,
            "reference_engine": REFERENCE_ENGINE,
            "verify": self.verify,
            "fault_plan": (
                self.fault_plan.to_dict()
                if self.fault_plan is not None
                else None
            ),
            "analyze": self.analyze,
            "cell_round_limit": self.cell_round_limit,
        }

    # -- execution --------------------------------------------------------

    def run(
        self,
        *,
        workers: Optional[int] = None,
        journal: Optional[str] = None,
        resume_from: Optional[str] = None,
        cell_timeout: Optional[float] = None,
        max_attempts: int = 3,
        chaos_kills: Optional[Sequence[int]] = None,
        stop_after_cells: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every_rounds: Optional[int] = None,
        checkpoint_every_seconds: Optional[float] = None,
        schedule_cache: Optional[str] = None,
        shard_k: Optional[int] = None,
    ) -> MatrixResult:
        """Run the sweep and return its :class:`MatrixResult`.

        With no arguments this is the in-process serial runner — the
        zero-overhead default path.  ``workers=W`` dispatches cells to
        the supervised worker pool of :mod:`repro.scenarios.sweep`
        (per-cell wall-clock deadlines via ``cell_timeout`` seconds,
        crash/timeout retry with capped backoff, quarantine after
        ``max_attempts``); ``journal=`` appends every completed cell to
        a durable JSONL journal, and ``resume_from=`` replays a prior
        journal's completed cells instead of re-executing them.
        Digests are byte-identical across all of these execution shapes.
        ``chaos_kills`` / ``stop_after_cells`` are the chaos-drill hooks
        the resilience tests and the CI chaos-pool job use.

        ``checkpoint_dir=`` enables mid-run checkpointing for every
        cell (snapshots under a per-cell subdirectory, flushed every
        ``checkpoint_every_rounds`` rounds and/or
        ``checkpoint_every_seconds`` seconds): an interrupted attempt's
        next attempt resumes from the newest valid snapshot instead of
        from scratch.  Deliberately *not* part of the sweep's journal
        fingerprint — where snapshots live does not change what the
        cells compute, so a checkpointed sweep can resume a plain
        sweep's journal and vice versa.

        ``schedule_cache=`` names a directory for the persistent
        compiled-schedule cache: every cell's networks record compiled
        lane structures there and later cells — in this run, a resumed
        run, or any pool worker — load them instead of recompiling
        (cells gain ``cache_hits``/``cache_misses`` counters).
        ``shard_k=`` splits each multi-instance cell into K-shards of at
        most that many instances (aligned to the engines' K-chunk seam)
        so the pool spreads one cell across workers; the merged cell is
        digest-identical to the unsharded runner.  Neither knob is part
        of the journal fingerprint — like ``checkpoint_dir``, they change
        how cells execute, never what they compute.
        """
        if workers is not None:
            from repro.scenarios.sweep import run_sharded

            return run_sharded(
                self,
                workers=workers,
                journal=journal,
                resume_from=resume_from,
                cell_timeout=cell_timeout,
                max_attempts=max_attempts,
                chaos_kills=chaos_kills,
                stop_after_cells=stop_after_cells,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every_rounds=checkpoint_every_rounds,
                checkpoint_every_seconds=checkpoint_every_seconds,
                schedule_cache=schedule_cache,
                shard_k=shard_k,
            )
        if journal is not None or resume_from is not None:
            from repro.scenarios.sweep import run_journaled_serial

            return run_journaled_serial(
                self, journal=journal, resume_from=resume_from,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every_rounds=checkpoint_every_rounds,
                checkpoint_every_seconds=checkpoint_every_seconds,
                schedule_cache=schedule_cache,
                shard_k=shard_k,
            )
        return self._run_serial(
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_rounds=checkpoint_every_rounds,
            checkpoint_every_seconds=checkpoint_every_seconds,
            schedule_cache=schedule_cache,
            shard_k=shard_k,
        )

    def _run_serial(
        self,
        on_cell: Optional[Callable[[str, MatrixCell], None]] = None,
        replay: Optional[Dict[str, Dict[str, Any]]] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every_rounds: Optional[int] = None,
        checkpoint_every_seconds: Optional[float] = None,
        schedule_cache: Optional[str] = None,
        shard_k: Optional[int] = None,
    ) -> MatrixResult:
        """The in-process serial runner.

        ``on_cell(key, cell)`` is invoked for every *freshly executed*
        cell as soon as it completes (the journal hook); ``replay`` maps
        cell keys to recorded :meth:`MatrixCell.to_dict` payloads that
        are rebuilt instead of re-executed (the resume hook).

        ``shard_k`` makes the serial runner execute eligible
        multi-instance cells shard by shard and merge — same code path
        as the pool's merge, which is how the K-sharding digest identity
        is provable in-process.
        """
        import random

        result = MatrixResult(meta=self._meta())
        ordered = self.ordered_engines()
        for protocol_name, family_name, n in self.coordinates():
            spec = get_protocol(protocol_name)
            family = get_family(family_name)
            coord = _cell_coord(self.seed, protocol_name, family_name, n)
            cell_seed = int.from_bytes(
                hashlib.sha256(coord.encode()).digest()[:4], "big"
            )
            replayed: Dict[str, MatrixCell] = {}
            pending: List[str] = []
            for engine in ordered:
                key = _cell_key(self.seed, protocol_name, family_name, n, engine)
                if replay is not None and key in replay:
                    replayed[engine] = MatrixCell.from_dict(replay[key])
                else:
                    pending.append(engine)
            cells: List[MatrixCell] = []
            if pending:
                rng = random.Random(coord)
                try:
                    graph = family.build(n, rng)
                    prepared = spec.prepare(n, graph, rng)
                except Exception as exc:  # noqa: BLE001 - isolate the cell
                    prepared = None
                    for engine in pending:
                        cell = MatrixCell(
                            protocol=protocol_name,
                            family=family_name,
                            n=n,
                            engine=engine,
                            status="failed",
                        )
                        _failure_fields(cell, exc)
                        cells.append(cell)
                        if on_cell is not None:
                            on_cell(cell.key(self.seed), cell)
                if prepared is not None:
                    for engine in pending:
                        cell_dir = None
                        if checkpoint_dir is not None:
                            cell_dir = cell_checkpoint_dir(
                                checkpoint_dir,
                                _cell_key(
                                    self.seed, protocol_name, family_name,
                                    n, engine,
                                ),
                            )
                        if self._shardable(spec, engine, shard_k, cell_dir):
                            cell = self._run_sharded_cell(
                                spec, prepared, family_name, n, engine,
                                cell_seed, shard_k=shard_k,
                                schedule_cache=schedule_cache,
                            )
                        else:
                            cell = _execute_cell(
                                spec, prepared, family_name, n, engine,
                                cell_seed,
                                repeats=self.repeats,
                                verify=self.verify,
                                fault_plan=self.fault_plan,
                                round_limit=self.cell_round_limit,
                                checkpoint_dir=cell_dir,
                                checkpoint_every_rounds=checkpoint_every_rounds,
                                checkpoint_every_seconds=checkpoint_every_seconds,
                                schedule_cache=schedule_cache,
                            )
                        cells.append(cell)
                        if on_cell is not None:
                            on_cell(cell.key(self.seed), cell)
            cells.extend(replayed.values())
            self._finalize_coordinate(spec, family_name, n, cells)
            result.cells.extend(cells)
        return result

    def _shardable(
        self, spec, engine: str, shard_k: Optional[int],
        cell_dir: Optional[str],
    ) -> bool:
        """Whether one cell is eligible for K-sharding: a multi-instance
        protocol on a supported engine, with no per-cell chaos, witness
        or checkpointing riding along (those stay whole-cell concerns —
        the shard is purely an execution split)."""
        return (
            shard_k is not None
            and spec.instances > 1
            and engine in spec.engines
            and self.verify is None
            and self.fault_plan is None
            and cell_dir is None
        )

    def _run_sharded_cell(
        self, spec, prepared, family_name: str, n: int, engine: str,
        cell_seed: int, *, shard_k: int,
        schedule_cache: Optional[str] = None,
    ) -> MatrixCell:
        """Serial K-sharding: execute each shard in turn and merge —
        digest-identical to the unsharded cell by construction."""
        payloads = [
            _shard_payload(
                spec, prepared, family_name, n, engine, cell_seed, lo, hi,
                repeats=self.repeats, round_limit=self.cell_round_limit,
                schedule_cache=schedule_cache,
            )
            for lo, hi in plan_shards(spec.instances, shard_k, n)
        ]
        return merge_shard_payloads(spec, family_name, n, engine, payloads)

    def _finalize_coordinate(
        self, spec, family_name: str, n: int, cells: List[MatrixCell]
    ) -> None:
        """Stamp the cross-cell verdicts on one coordinate's cells:
        reference-digest comparison, the chaos detection verdict, the
        static-analysis verdict, and the caller's engine order.

        Deterministic given the cells' digests and statuses, so it is
        recomputed identically whether the cells were just executed,
        replayed from a journal, or assembled from pool workers.
        """
        # Prefer the legacy digest as ground truth; a sweep that
        # excludes legacy still cross-checks the cells it ran against
        # the first one (mismatches() must never be vacuously empty
        # just because the reference engine was left out).
        by_engine = {cell.engine: cell for cell in cells}
        reference_digest: Optional[str] = next(
            (
                by_engine[engine].digest
                for engine in self.ordered_engines()
                if engine in by_engine and by_engine[engine].status == "ok"
            ),
            None,
        )
        for cell in cells:
            if cell.status == "ok" and reference_digest is not None:
                cell.matches_reference = cell.digest == reference_digest
        # Chaos detection verdict: a faulted cell counts as detected iff
        # *any* check tripped — the run failed outright, validation
        # rejected the summary, the digest diverged from the clean
        # baseline, the cross-engine verify disagreed, or the cell broke
        # ranks with the sweep's reference digest.  Cells whose schedule
        # injected nothing stay None: there was no corruption to detect.
        if self.fault_plan is not None and self.fault_plan.is_active:
            for cell in cells:
                if cell.status == "unsupported":
                    continue
                if cell.status == "failed":
                    cell.detected = True
                elif cell.fault_count:
                    cell.detected = (
                        cell.validated is False
                        or (
                            cell.clean_digest is not None
                            and cell.digest != cell.clean_digest
                        )
                        or cell.verify_match is False
                        or cell.matches_reference is False
                    )
        # Static-analysis verdict for the coordinate: one verifier run
        # per (protocol, family, n), stamped on every engine cell (the
        # verdict is engine-free — obliviousness and budgets are
        # protocol properties).
        if self.analyze:
            from repro.analysis.verifier import analyze_protocol

            analysis = analyze_protocol(
                spec, n, family=family_name, seed=self.seed
            )
            violations = list(analysis.violations)
            if analysis.error is not None:
                violations.append(analysis.error)
            for cell in cells:
                cell.analysis_ok = analysis.ok
                cell.analysis_violations = violations
        # Report in the caller's engine order.
        order = {name: i for i, name in enumerate(self.engines)}
        cells.sort(key=lambda cell: order[cell.engine])
