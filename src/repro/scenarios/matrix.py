"""The scenario-matrix runner: problem × graph family × n × engine.

The complexity-theoretic program around the congested clique frames
results as sweeps — a protocol family evaluated over instance families
and sizes, compared across models.  :class:`ScenarioMatrix` is that
experiment surface on top of the engine subsystem: it takes protocol
names (from :mod:`repro.scenarios.registry`), graph family names (from
:mod:`repro.scenarios.families`), sizes and engine names, runs every
cell, and records per-cell timing, round/bit accounting, a canonical
output digest, validation status, and whether the cell's digest matches
the legacy reference engine's — the executable statement that all
backends compute the same function.

Results serialize to JSON (:meth:`MatrixResult.to_dict` /
:meth:`MatrixResult.write`), which is what the benchmark harness and
the CI smoke sweep consume.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.scenarios.families import get_family
from repro.scenarios.registry import get_protocol

__all__ = ["MatrixCell", "MatrixResult", "ScenarioMatrix", "instance_graph"]

#: The engine the matrix prefers as ground truth for digests; sweeps
#: that exclude it fall back to the first engine that ran the cell.
REFERENCE_ENGINE = "legacy"


def _cell_coord(seed: int, protocol: str, family: str, n: int) -> str:
    return f"{seed}:{protocol}:{family}:{n}"


def instance_graph(seed: int, protocol: str, family: str, n: int):
    """The exact graph instance a sweep cell ran on — the same coord
    derivation :meth:`ScenarioMatrix.run` uses, exposed so callers
    (benchmarks, reports) never re-implement the convention."""
    import random

    from repro.scenarios.families import get_family

    return get_family(family).build(
        n, random.Random(_cell_coord(seed, protocol, family, n))
    )


def _digest(summary: Any, result: Any) -> str:
    """Canonical digest of one cell's observable behaviour."""
    blob = repr(
        (summary, result.rounds, result.total_bits, result.max_round_bits)
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass
class MatrixCell:
    """One (protocol, family, n, engine) execution."""

    protocol: str
    family: str
    n: int
    engine: str
    status: str  # "ok" | "unsupported" | "failed"
    seconds: Optional[float] = None
    rounds: Optional[int] = None
    total_bits: Optional[int] = None
    max_round_bits: Optional[int] = None
    digest: Optional[str] = None
    validated: Optional[bool] = None
    matches_reference: Optional[bool] = None
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "family": self.family,
            "n": self.n,
            "engine": self.engine,
            "status": self.status,
            "seconds": self.seconds,
            "rounds": self.rounds,
            "total_bits": self.total_bits,
            "max_round_bits": self.max_round_bits,
            "digest": self.digest,
            "validated": self.validated,
            "matches_reference": self.matches_reference,
            "error": self.error,
        }


@dataclass
class MatrixResult:
    """All cells of one sweep plus the sweep's coordinates."""

    meta: Dict[str, Any]
    cells: List[MatrixCell] = field(default_factory=list)

    def ok_cells(self) -> List[MatrixCell]:
        return [cell for cell in self.cells if cell.status == "ok"]

    def mismatches(self) -> List[MatrixCell]:
        """Cells whose digest differs from the legacy reference (or that
        failed validation/execution outright)."""
        return [
            cell
            for cell in self.cells
            if cell.status == "failed"
            or cell.matches_reference is False
            or cell.validated is False
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "meta": self.meta,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


class ScenarioMatrix:
    """Sweep registered protocols over graph families, sizes and engines.

    Parameters
    ----------
    protocols, families:
        Names from the protocol / graph-family registries.
    sizes:
        Problem sizes ``n`` (one network per cell).
    engines:
        Engine names to run each cell on; defaults to every registered
        backend.  Cells whose protocol does not support an engine are
        recorded with ``status="unsupported"`` rather than skipped
        silently.
    seed:
        Base seed; each (protocol, family, n) coordinate derives its own
        instance rng and network seed from it, so cells are reproducible
        in isolation and identical across engines (which is what makes
        the cross-engine digest comparison meaningful).
    repeats:
        Timing samples per cell (best-of); results are checked on every
        sample and must stay identical.
    """

    def __init__(
        self,
        protocols: Sequence[str],
        families: Sequence[str],
        sizes: Sequence[int],
        engines: Optional[Sequence[str]] = None,
        seed: int = 0,
        repeats: int = 1,
    ) -> None:
        from repro.core.engine.planner import ENGINES

        if engines is None:
            engines = sorted(ENGINES)
        for engine in engines:
            if engine not in ENGINES:
                raise ValueError(
                    f"unknown engine {engine!r}; known: {sorted(ENGINES)}"
                )
        self.protocols = [get_protocol(name).name for name in protocols]
        self.families = [get_family(name).name for name in families]
        self.sizes = list(sizes)
        self.engines = list(engines)
        self.seed = seed
        self.repeats = max(1, repeats)

    def run(self) -> MatrixResult:
        import random

        result = MatrixResult(
            meta={
                "protocols": self.protocols,
                "families": self.families,
                "sizes": self.sizes,
                "engines": self.engines,
                "seed": self.seed,
                "repeats": self.repeats,
                "reference_engine": REFERENCE_ENGINE,
            }
        )
        for protocol_name in self.protocols:
            spec = get_protocol(protocol_name)
            for family_name in self.families:
                family = get_family(family_name)
                for n in self.sizes:
                    coord = _cell_coord(self.seed, protocol_name, family_name, n)
                    # Stable across processes (unlike hash(), which is
                    # salted): the cell's network seed must not change
                    # between runs or the digests stop being comparable.
                    cell_seed = int.from_bytes(
                        hashlib.sha256(coord.encode()).digest()[:4], "big"
                    )
                    rng = random.Random(coord)
                    try:
                        graph = family.build(n, rng)
                        prepared = spec.prepare(n, graph, rng)
                    except Exception as exc:  # noqa: BLE001 - isolate the cell
                        result.cells.extend(
                            MatrixCell(
                                protocol=protocol_name,
                                family=family_name,
                                n=n,
                                engine=engine,
                                status="failed",
                                error=f"{type(exc).__name__}: {exc}",
                            )
                            for engine in self.engines
                        )
                        continue
                    cells: List[MatrixCell] = []
                    # Reference engine first so every other cell can be
                    # compared against its digest in one pass.
                    ordered = sorted(
                        self.engines, key=lambda e: e != REFERENCE_ENGINE
                    )
                    for engine in ordered:
                        cells.append(
                            self._run_cell(
                                spec, prepared, family_name, n, engine, cell_seed
                            )
                        )
                    # Prefer the legacy digest as ground truth; a sweep
                    # that excludes legacy still cross-checks the cells
                    # it ran against the first one (mismatches() must
                    # never be vacuously empty just because the
                    # reference engine was left out).
                    reference_digest: Optional[str] = next(
                        (c.digest for c in cells if c.status == "ok"), None
                    )
                    for cell in cells:
                        if cell.status == "ok" and reference_digest is not None:
                            cell.matches_reference = (
                                cell.digest == reference_digest
                            )
                    # Report in the caller's engine order.
                    order = {name: i for i, name in enumerate(self.engines)}
                    cells.sort(key=lambda cell: order[cell.engine])
                    result.cells.extend(cells)
        return result

    def _run_cell(
        self,
        spec,
        prepared,
        family_name: str,
        n: int,
        engine: str,
        cell_seed: int,
    ) -> MatrixCell:
        from repro.core.network import Network

        cell = MatrixCell(
            protocol=spec.name, family=family_name, n=n, engine=engine,
            status="unsupported",
        )
        if engine not in spec.engines:
            return cell
        flavour = spec.program_for(engine)
        program = prepared.programs.get(flavour)
        if program is None:
            return cell
        try:
            best: Optional[float] = None
            summary = digest = run = None
            for _ in range(self.repeats):
                # A fresh network per sample keeps cells independent:
                # no compiled-schedule carry-over between engines or
                # repeats beyond what one run legitimately builds.  The
                # per-cell seed applies unless the prepare hook pinned
                # its own.
                kwargs = dict(prepared.network_kwargs)
                kwargs.setdefault("seed", cell_seed)
                network = Network(engine=engine, **kwargs)
                start = time.perf_counter()
                run = network.run(program, inputs=prepared.inputs)
                elapsed = time.perf_counter() - start
                sample_summary = prepared.summarize(run)
                sample_digest = _digest(sample_summary, run)
                if digest is not None and sample_digest != digest:
                    raise AssertionError(
                        "nondeterministic cell: digest changed across repeats"
                    )
                summary, digest = sample_summary, sample_digest
                if best is None or elapsed < best:
                    best = elapsed
            cell.status = "ok"
            cell.seconds = best
            cell.rounds = run.rounds
            cell.total_bits = run.total_bits
            cell.max_round_bits = run.max_round_bits
            cell.digest = digest
            if prepared.validate is not None:
                try:
                    prepared.validate(summary)
                    cell.validated = True
                except AssertionError as exc:
                    cell.validated = False
                    cell.error = str(exc)
        except Exception as exc:  # noqa: BLE001 - cell isolation is the point
            cell.status = "failed"
            cell.error = f"{type(exc).__name__}: {exc}"
        return cell
