"""The scenario-matrix runner: problem × graph family × n × engine.

The complexity-theoretic program around the congested clique frames
results as sweeps — a protocol family evaluated over instance families
and sizes, compared across models.  :class:`ScenarioMatrix` is that
experiment surface on top of the engine subsystem: it takes protocol
names (from :mod:`repro.scenarios.registry`), graph family names (from
:mod:`repro.scenarios.families`), sizes and engine names, runs every
cell, and records per-cell timing, round/bit accounting, a canonical
output digest, validation status, and whether the cell's digest matches
the legacy reference engine's — the executable statement that all
backends compute the same function.

Self-checking execution
-----------------------

Two orthogonal chaos facilities ride the sweep:

* ``verify="cross-engine"`` re-runs every ok cell on a second engine
  and compares digests — a structured divergence report
  (:meth:`MatrixResult.fault_reports`) instead of a silent wrong
  answer.
* ``fault_plan=`` executes every cell under a deterministic
  :class:`~repro.core.faults.FaultPlan` **and** once more without it
  (the clean baseline): a cell whose injected faults moved the digest,
  failed validation, or diverged cross-engine counts as *detected*;
  :meth:`MatrixResult.silent_passes` lists injected-but-undetected
  cells, which a chaos CI job asserts empty.

Results serialize to JSON (:meth:`MatrixResult.to_dict` /
:meth:`MatrixResult.write`), which is what the benchmark harness and
the CI smoke sweep consume.  Failed cells persist the exception type
and a traceback digest so chaos runs stay debuggable from the JSON
alone.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.scenarios.families import get_family
from repro.scenarios.registry import get_protocol

__all__ = ["MatrixCell", "MatrixResult", "ScenarioMatrix", "instance_graph"]

#: The engine the matrix prefers as ground truth for digests; sweeps
#: that exclude it fall back to the first engine that ran the cell.
REFERENCE_ENGINE = "legacy"


def _cell_coord(seed: int, protocol: str, family: str, n: int) -> str:
    return f"{seed}:{protocol}:{family}:{n}"


def instance_graph(seed: int, protocol: str, family: str, n: int):
    """The exact graph instance a sweep cell ran on — the same coord
    derivation :meth:`ScenarioMatrix.run` uses, exposed so callers
    (benchmarks, reports) never re-implement the convention."""
    import random

    from repro.scenarios.families import get_family

    return get_family(family).build(
        n, random.Random(_cell_coord(seed, protocol, family, n))
    )


def _digest(summary: Any, result: Any) -> str:
    """Canonical digest of one cell's observable behaviour."""
    blob = repr(
        (summary, result.rounds, result.total_bits, result.max_round_bits)
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _failure_fields(cell: "MatrixCell", exc: BaseException) -> None:
    """Persist a debuggable failure record on ``cell``: message, type
    and a short digest of the traceback (stable enough to dedupe crash
    signatures across a sweep without shipping whole stacks in JSON)."""
    cell.status = "failed"
    cell.error = f"{type(exc).__name__}: {exc}"
    cell.error_type = type(exc).__name__
    cell.traceback_digest = hashlib.sha256(
        traceback.format_exc().encode()
    ).hexdigest()[:12]


@dataclass
class MatrixCell:
    """One (protocol, family, n, engine) execution."""

    protocol: str
    family: str
    n: int
    engine: str
    status: str  # "ok" | "unsupported" | "failed"
    seconds: Optional[float] = None
    rounds: Optional[int] = None
    total_bits: Optional[int] = None
    max_round_bits: Optional[int] = None
    digest: Optional[str] = None
    validated: Optional[bool] = None
    matches_reference: Optional[bool] = None
    error: Optional[str] = None
    #: Failure forensics (satellite of the chaos work: a failed cell is
    #: debuggable from the JSON record alone).
    error_type: Optional[str] = None
    traceback_digest: Optional[str] = None
    #: Chaos fields — populated only when the sweep carries a FaultPlan.
    fault_count: Optional[int] = None
    clean_digest: Optional[str] = None
    detected: Optional[bool] = None
    #: Cross-engine verification fields (``verify="cross-engine"``).
    verify_engine: Optional[str] = None
    verify_digest: Optional[str] = None
    verify_match: Optional[bool] = None
    #: Graceful degradation, if the planned backend failed mid-sweep.
    engine_fallback: Optional[str] = None
    #: Static-analysis verdict for the cell's (protocol, family, n)
    #: coordinate (``ScenarioMatrix(analyze=True)``): None = not run.
    analysis_ok: Optional[bool] = None
    analysis_violations: Optional[List[str]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "family": self.family,
            "n": self.n,
            "engine": self.engine,
            "status": self.status,
            "seconds": self.seconds,
            "rounds": self.rounds,
            "total_bits": self.total_bits,
            "max_round_bits": self.max_round_bits,
            "digest": self.digest,
            "validated": self.validated,
            "matches_reference": self.matches_reference,
            "error": self.error,
            "error_type": self.error_type,
            "traceback_digest": self.traceback_digest,
            "fault_count": self.fault_count,
            "clean_digest": self.clean_digest,
            "detected": self.detected,
            "verify_engine": self.verify_engine,
            "verify_digest": self.verify_digest,
            "verify_match": self.verify_match,
            "engine_fallback": self.engine_fallback,
            "analysis_ok": self.analysis_ok,
            "analysis_violations": self.analysis_violations,
        }


@dataclass
class MatrixResult:
    """All cells of one sweep plus the sweep's coordinates."""

    meta: Dict[str, Any]
    cells: List[MatrixCell] = field(default_factory=list)

    def ok_cells(self) -> List[MatrixCell]:
        return [cell for cell in self.cells if cell.status == "ok"]

    def mismatches(self) -> List[MatrixCell]:
        """Cells whose digest differs from the legacy reference (or that
        failed validation/execution/cross-engine verification)."""
        return [
            cell
            for cell in self.cells
            if cell.status == "failed"
            or cell.matches_reference is False
            or cell.validated is False
            or cell.verify_match is False
            or cell.analysis_ok is False
        ]

    def injected_cells(self) -> List[MatrixCell]:
        """Cells that actually received at least one injected fault."""
        return [cell for cell in self.cells if (cell.fault_count or 0) > 0]

    def silent_passes(self) -> List[MatrixCell]:
        """The chaos sweep's cardinal sin: cells whose injected faults
        left no observable trace (digest equal to the clean baseline,
        validation green, cross-engine agreement).  A chaos CI job
        asserts this list is empty."""
        return [
            cell
            for cell in self.injected_cells()
            if cell.detected is False
        ]

    def fault_reports(self) -> List[Dict[str, Any]]:
        """Structured per-cell divergence reports: every cell that
        failed, failed validation, mismatched the reference, diverged
        cross-engine or diverged from its clean baseline, with the
        reasons flagged explicitly."""
        reports: List[Dict[str, Any]] = []
        for cell in self.cells:
            flags = []
            if cell.status == "failed":
                flags.append("execution-failed")
            if cell.validated is False:
                flags.append("validation-failed")
            if cell.matches_reference is False:
                flags.append("reference-digest-mismatch")
            if cell.verify_match is False:
                flags.append("cross-engine-divergence")
            if (
                cell.clean_digest is not None
                and cell.digest is not None
                and cell.digest != cell.clean_digest
            ):
                flags.append("diverged-from-clean-run")
            if not flags:
                continue
            reports.append(
                {
                    "protocol": cell.protocol,
                    "family": cell.family,
                    "n": cell.n,
                    "engine": cell.engine,
                    "flags": flags,
                    "fault_count": cell.fault_count,
                    "error": cell.error,
                    "error_type": cell.error_type,
                    "traceback_digest": cell.traceback_digest,
                }
            )
        return reports

    def to_dict(self) -> Dict[str, Any]:
        return {
            "meta": self.meta,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


class ScenarioMatrix:
    """Sweep registered protocols over graph families, sizes and engines.

    Parameters
    ----------
    protocols, families:
        Names from the protocol / graph-family registries.
    sizes:
        Problem sizes ``n`` (one network per cell).
    engines:
        Engine names to run each cell on; defaults to every registered
        backend.  Cells whose protocol does not support an engine are
        recorded with ``status="unsupported"`` rather than skipped
        silently.
    seed:
        Base seed; each (protocol, family, n) coordinate derives its own
        instance rng and network seed from it, so cells are reproducible
        in isolation and identical across engines (which is what makes
        the cross-engine digest comparison meaningful).
    repeats:
        Timing samples per cell (best-of); results are checked on every
        sample and must stay identical.
    verify:
        ``"cross-engine"`` re-runs every ok cell once on a second engine
        (preferring the legacy reference) and records
        ``verify_engine``/``verify_digest``/``verify_match`` — the
        self-checking execution mode.  ``None`` (default) skips it.
    fault_plan:
        An optional :class:`~repro.core.faults.FaultPlan` applied to
        every cell.  Each faulted cell also runs a clean (no-plan)
        baseline on the same network coordinates; the pair of digests is
        what decides ``detected``.
    """

    def __init__(
        self,
        protocols: Sequence[str],
        families: Sequence[str],
        sizes: Sequence[int],
        engines: Optional[Sequence[str]] = None,
        seed: int = 0,
        repeats: int = 1,
        verify: Optional[str] = None,
        fault_plan: Optional[Any] = None,
        analyze: bool = False,
    ) -> None:
        from repro.core.engine.planner import ENGINES

        if engines is None:
            engines = sorted(ENGINES)
        for engine in engines:
            if engine not in ENGINES:
                raise ValueError(
                    f"unknown engine {engine!r}; known: {sorted(ENGINES)}"
                )
        if verify not in (None, "cross-engine"):
            raise ValueError(
                f"unknown verify mode {verify!r}; use None or 'cross-engine'"
            )
        if fault_plan is not None:
            fault_plan.validate()
        self.protocols = [get_protocol(name).name for name in protocols]
        self.families = [get_family(name).name for name in families]
        self.sizes = list(sizes)
        self.engines = list(engines)
        self.seed = seed
        self.repeats = max(1, repeats)
        self.verify = verify
        self.fault_plan = fault_plan
        #: When true, every (protocol, family, n) coordinate also runs
        #: the static verifier (obliviousness + bandwidth budget) and
        #: its cells carry ``analysis_ok`` / ``analysis_violations``.
        self.analyze = analyze

    def run(self) -> MatrixResult:
        import random

        result = MatrixResult(
            meta={
                "protocols": self.protocols,
                "families": self.families,
                "sizes": self.sizes,
                "engines": self.engines,
                "seed": self.seed,
                "repeats": self.repeats,
                "reference_engine": REFERENCE_ENGINE,
                "verify": self.verify,
                "fault_plan": (
                    self.fault_plan.to_dict()
                    if self.fault_plan is not None
                    else None
                ),
                "analyze": self.analyze,
            }
        )
        for protocol_name in self.protocols:
            spec = get_protocol(protocol_name)
            for family_name in self.families:
                family = get_family(family_name)
                for n in self.sizes:
                    coord = _cell_coord(self.seed, protocol_name, family_name, n)
                    # Stable across processes (unlike hash(), which is
                    # salted): the cell's network seed must not change
                    # between runs or the digests stop being comparable.
                    cell_seed = int.from_bytes(
                        hashlib.sha256(coord.encode()).digest()[:4], "big"
                    )
                    rng = random.Random(coord)
                    try:
                        graph = family.build(n, rng)
                        prepared = spec.prepare(n, graph, rng)
                    except Exception as exc:  # noqa: BLE001 - isolate the cell
                        result.cells.extend(
                            MatrixCell(
                                protocol=protocol_name,
                                family=family_name,
                                n=n,
                                engine=engine,
                                status="failed",
                                error=f"{type(exc).__name__}: {exc}",
                                error_type=type(exc).__name__,
                            )
                            for engine in self.engines
                        )
                        continue
                    cells: List[MatrixCell] = []
                    # Reference engine first so every other cell can be
                    # compared against its digest in one pass.
                    ordered = sorted(
                        self.engines, key=lambda e: e != REFERENCE_ENGINE
                    )
                    for engine in ordered:
                        cells.append(
                            self._run_cell(
                                spec, prepared, family_name, n, engine, cell_seed
                            )
                        )
                    # Prefer the legacy digest as ground truth; a sweep
                    # that excludes legacy still cross-checks the cells
                    # it ran against the first one (mismatches() must
                    # never be vacuously empty just because the
                    # reference engine was left out).
                    reference_digest: Optional[str] = next(
                        (c.digest for c in cells if c.status == "ok"), None
                    )
                    for cell in cells:
                        if cell.status == "ok" and reference_digest is not None:
                            cell.matches_reference = (
                                cell.digest == reference_digest
                            )
                    # Chaos detection verdict: a faulted cell counts as
                    # detected iff *any* check tripped — the run failed
                    # outright, validation rejected the summary, the
                    # digest diverged from the clean baseline, the
                    # cross-engine verify disagreed, or the cell broke
                    # ranks with the sweep's reference digest.  Cells
                    # whose schedule injected nothing stay None: there
                    # was no corruption to detect.
                    if self.fault_plan is not None and self.fault_plan.is_active:
                        for cell in cells:
                            if cell.status == "unsupported":
                                continue
                            if cell.status == "failed":
                                cell.detected = True
                            elif cell.fault_count:
                                cell.detected = (
                                    cell.validated is False
                                    or (
                                        cell.clean_digest is not None
                                        and cell.digest != cell.clean_digest
                                    )
                                    or cell.verify_match is False
                                    or cell.matches_reference is False
                                )
                    # Static-analysis verdict for the coordinate: one
                    # verifier run per (protocol, family, n), stamped on
                    # every engine cell (the verdict is engine-free —
                    # obliviousness and budgets are protocol properties).
                    if self.analyze:
                        from repro.analysis.verifier import analyze_protocol

                        analysis = analyze_protocol(
                            spec, n, family=family_name, seed=self.seed
                        )
                        violations = list(analysis.violations)
                        if analysis.error is not None:
                            violations.append(analysis.error)
                        for cell in cells:
                            cell.analysis_ok = analysis.ok
                            cell.analysis_violations = violations
                    # Report in the caller's engine order.
                    order = {name: i for i, name in enumerate(self.engines)}
                    cells.sort(key=lambda cell: order[cell.engine])
                    result.cells.extend(cells)
        return result

    def _run_cell(
        self,
        spec,
        prepared,
        family_name: str,
        n: int,
        engine: str,
        cell_seed: int,
    ) -> MatrixCell:
        from repro.core.network import Network

        cell = MatrixCell(
            protocol=spec.name, family=family_name, n=n, engine=engine,
            status="unsupported",
        )
        if engine not in spec.engines:
            return cell
        flavour = spec.program_for(engine)
        program = prepared.programs.get(flavour)
        if program is None:
            return cell
        plan = self.fault_plan
        chaos = plan is not None and plan.is_active
        try:
            best: Optional[float] = None
            summary = digest = run = None
            for _ in range(self.repeats):
                # A fresh network per sample keeps cells independent:
                # no compiled-schedule carry-over between engines or
                # repeats beyond what one run legitimately builds.  The
                # per-cell seed applies unless the prepare hook pinned
                # its own.
                kwargs = dict(prepared.network_kwargs)
                kwargs.setdefault("seed", cell_seed)
                if chaos:
                    kwargs["fault_plan"] = plan
                network = Network(engine=engine, **kwargs)
                start = time.perf_counter()  # analysis: allow(wall-clock)
                run = network.run(program, inputs=prepared.inputs)
                elapsed = time.perf_counter() - start  # analysis: allow(wall-clock)
                sample_summary = prepared.summarize(run)
                sample_digest = _digest(sample_summary, run)
                if digest is not None and sample_digest != digest:
                    raise AssertionError(
                        "nondeterministic cell: digest changed across repeats"
                    )
                summary, digest = sample_summary, sample_digest
                if best is None or elapsed < best:
                    best = elapsed
            cell.status = "ok"
            cell.seconds = best
            cell.rounds = run.rounds
            cell.total_bits = run.total_bits
            cell.max_round_bits = run.max_round_bits
            cell.digest = digest
            if run.fallback is not None:
                cell.engine_fallback = (
                    f"{run.fallback['from']}->{run.fallback['to']}"
                )
            if chaos:
                cell.fault_count = len(run.faults or ())
                # Clean baseline: the same cell, same seed, no plan.
                # Its digest is what "the faults changed the answer"
                # is measured against.
                clean_kwargs = dict(prepared.network_kwargs)
                clean_kwargs.setdefault("seed", cell_seed)
                clean = Network(engine=engine, **clean_kwargs).run(
                    program, inputs=prepared.inputs
                )
                cell.clean_digest = _digest(prepared.summarize(clean), clean)
            if prepared.validate is not None:
                try:
                    prepared.validate(summary)
                    cell.validated = True
                except AssertionError as exc:
                    cell.validated = False
                    cell.error = str(exc)
            if self.verify == "cross-engine":
                self._verify_cell(cell, spec, prepared, cell_seed, digest)
        except Exception as exc:  # noqa: BLE001 - cell isolation is the point
            _failure_fields(cell, exc)
        return cell

    def _verify_cell(
        self,
        cell: MatrixCell,
        spec,
        prepared,
        cell_seed: int,
        digest: Optional[str],
    ) -> None:
        """Re-run one ok cell on a second engine and compare digests.

        Prefers the legacy reference engine as the witness; a cell that
        already ran on legacy is checked against the next engine the
        protocol supports.  A witness failure counts as a divergence
        (``verify_match=False``) — self-checking must not fail open.
        """
        from repro.core.network import Network

        witness = next(
            (
                name
                for name in [REFERENCE_ENGINE]
                + [e for e in spec.engines if e != REFERENCE_ENGINE]
                if name != cell.engine and name in spec.engines
            ),
            None,
        )
        if witness is None:
            return
        program = prepared.programs.get(spec.program_for(witness))
        if program is None:
            return
        cell.verify_engine = witness
        try:
            kwargs = dict(prepared.network_kwargs)
            kwargs.setdefault("seed", cell_seed)
            if self.fault_plan is not None and self.fault_plan.is_active:
                kwargs["fault_plan"] = self.fault_plan
            run = Network(engine=witness, **kwargs).run(
                program, inputs=prepared.inputs
            )
            cell.verify_digest = _digest(prepared.summarize(run), run)
            cell.verify_match = cell.verify_digest == digest
        except Exception as exc:  # noqa: BLE001 - divergence, not crash
            cell.verify_match = False
            if cell.error is None:
                cell.error = f"verify[{witness}] {type(exc).__name__}: {exc}"
