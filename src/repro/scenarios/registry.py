"""The protocol registry: name → runnable scenario factory.

Each :class:`ProtocolSpec` packages one protocol family from the paper
as a *scenario*: given a problem size, a graph instance and an rng, its
``prepare`` hook returns a :class:`PreparedScenario` — network
parameters, one node program per program flavour (generator and, where
the protocol has a kernel twin, kernel), the per-node inputs, a
``summarize`` function that reduces a
:class:`~repro.core.network.RunResult` to a canonical (repr-stable)
summary, and a ``validate`` hook that checks the summary against ground
truth computed locally.

``engines`` names the execution backends the protocol supports (keys of
:data:`repro.core.engine.planner.ENGINES`); the matrix runner marks the
rest unsupported instead of guessing.  The registry ships the five
families the experiment suites exercise — Lenzen routing, Theorem 2
circuit simulation, matmul triangle detection, subgraph detection, and
Borůvka MST — and is open: :func:`register_protocol` accepts new specs,
and :func:`capability_matrix` reports the protocol × engine support
table (the README's "Execution engines" matrix is generated from it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.budget import BandwidthBudget
from repro.core.bits import Bits
from repro.core.network import Mode, RunResult
from repro.graphs.graph import Graph

__all__ = [
    "PreparedScenario",
    "ProtocolSpec",
    "PROTOCOLS",
    "register_protocol",
    "get_protocol",
    "protocol_names",
    "capability_matrix",
]


@dataclass
class PreparedScenario:
    """One concrete, runnable scenario instance (engine not yet chosen)."""

    #: Keyword arguments for :class:`~repro.core.network.Network`:
    #: n, bandwidth, mode.  ``engine`` is chosen by the matrix runner
    #: and ``seed`` defaults to the runner's per-cell seed (a prepare
    #: hook may pin its own ``seed`` here to override).
    network_kwargs: Dict[str, Any]
    #: Program per flavour: ``"generator"`` (legacy/fast backends) and
    #: optionally ``"kernel"``.
    programs: Dict[str, Any]
    #: Per-node inputs, or None for input-free protocols.
    inputs: Optional[List[Any]]
    #: RunResult -> canonical summary (repr-stable: only ints, strings,
    #: bools, and sorted tuples), used for cross-engine digests.
    summarize: Callable[[RunResult], Any]
    #: summary -> None, raising AssertionError on ground-truth mismatch.
    validate: Optional[Callable[[Any], None]] = None
    #: Multi-instance scenarios (``run_many`` cells): per-instance input
    #: lists, one entry per instance.  When set, the matrix runner
    #: executes all K instances through one compiled schedule
    #: (:meth:`~repro.core.network.Network.run_many`) and the cell digest
    #: covers the ordered per-instance summaries — which is what lets the
    #: sweep executor split the K range across workers and merge shards
    #: byte-identically.  ``inputs`` should hold instance 0 so
    #: single-run consumers (the static verifier) stay oblivious to the
    #: batching.
    instances: Optional[List[Any]] = None
    #: ``validate_instance(k, summary_k)`` — per-instance ground-truth
    #: check for multi-instance scenarios; raises AssertionError on
    #: mismatch.  Each shard validates exactly the instances it ran.
    validate_instance: Optional[Callable[[int, Any], None]] = None


@dataclass(frozen=True)
class ProtocolSpec:
    """A named protocol family the scenario matrix can sweep."""

    name: str
    description: str
    mode: Mode
    #: Engine names (keys of the planner registry) this protocol runs on.
    engines: Tuple[str, ...]
    #: ``prepare(n, graph, rng) -> PreparedScenario``.
    prepare: Callable[[int, Graph, random.Random], PreparedScenario]
    #: Declared worst-case per-message width as a function of n — the
    #: clique model's O(c·log n) constraint made concrete and
    #: machine-checkable.  The static analyzer
    #: (``python -m repro.analysis``) verifies every prepared instance
    #: against it; in strict mode a missing budget is itself a
    #: violation, so registered protocols must declare one.
    bandwidth_budget: Optional[BandwidthBudget] = None
    #: Declared instance count for multi-instance (``run_many``)
    #: scenarios — must equal ``len(prepare(...).instances)``.  Declared
    #: on the spec so the sweep supervisor can plan K-shards without
    #: preparing the scenario first; 1 means a plain single-run cell.
    instances: int = 1

    def program_for(self, engine: str) -> str:
        """Which program flavour the named engine executes."""
        return "kernel" if engine == "kernel" else "generator"

    def __reduce__(self):
        # Specs cross the sweep worker-pool process boundary by name:
        # unpickling resolves against the child's registry first, so a
        # builtin (or any spec registered at import time) restores to
        # the identical object, while an ad-hoc spec re-registers itself
        # in the child.  ``prepare`` must be picklable for the ad-hoc
        # path — a lambda-prepared spec fails here at dispatch time,
        # which the pool turns into a graceful serial fallback.
        return (
            _restore_spec,
            (
                self.name,
                self.description,
                self.mode,
                self.engines,
                self.prepare,
                self.bandwidth_budget,
                self.instances,
            ),
        )


def _restore_spec(
    name: str,
    description: str,
    mode: Mode,
    engines: Tuple[str, ...],
    prepare: Callable[[int, Graph, random.Random], PreparedScenario],
    bandwidth_budget: Optional[BandwidthBudget],
    instances: int = 1,
) -> "ProtocolSpec":
    """Unpickle hook for :class:`ProtocolSpec` (see ``__reduce__``)."""
    existing = PROTOCOLS.get(name)
    if existing is not None:
        return existing
    return register_protocol(
        ProtocolSpec(
            name=name,
            description=description,
            mode=mode,
            engines=engines,
            prepare=prepare,
            bandwidth_budget=bandwidth_budget,
            instances=instances,
        )
    )


PROTOCOLS: Dict[str, ProtocolSpec] = {}


def register_protocol(spec: ProtocolSpec) -> ProtocolSpec:
    """Add ``spec`` to the registry (last registration wins)."""
    PROTOCOLS[spec.name] = spec
    return spec


def get_protocol(name: str) -> ProtocolSpec:
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; known: {sorted(PROTOCOLS)}"
        ) from None


def protocol_names() -> List[str]:
    return sorted(PROTOCOLS)


def capability_matrix() -> Dict[str, Dict[str, bool]]:
    """``{protocol: {engine: supported}}`` over all registered engines."""
    from repro.core.engine.planner import ENGINES

    return {
        name: {engine: engine in spec.engines for engine in sorted(ENGINES)}
        for name, spec in sorted(PROTOCOLS.items())
    }


# -- built-in protocol specs ----------------------------------------------


def _sorted_edges(graph: Graph) -> Tuple[Tuple[int, int], ...]:
    return tuple(sorted(graph.edges()))


#: Frame width of the routing scenarios (bits per routed frame).
_ROUTING_FRAME_SIZE = 16
#: Instance count of the ``routing_many`` scenario: K payload batches
#: routed through one compiled schedule — the K-sharding seam.
ROUTING_MANY_INSTANCES = 6


def _routing_demand(n: int, graph: Graph) -> Dict[Tuple[int, int], int]:
    # One frame per direction of every graph edge: the demand pattern is
    # the graph, the payloads are random frame contents.
    demand: Dict[Tuple[int, int], int] = {}
    for u, v in _sorted_edges(graph):
        demand[(u, v)] = 1
        demand[(v, u)] = 1
    if not demand:
        # An empty graph routes nothing; keep the schedule non-degenerate.
        if n < 2:
            raise ValueError("the routing scenario needs n >= 2")
        demand[(0, 1)] = 1
    return demand


def _routing_instance(
    n: int, demand: Dict[Tuple[int, int], int], rng: random.Random
) -> Tuple[List[Dict[Any, Bits]], Dict[Tuple[int, int, int], int]]:
    """One payload batch for ``demand``: per-node inputs plus the
    expected delivery map the validator checks against."""
    inputs: List[Dict[Any, Bits]] = [dict() for _ in range(n)]
    expected: Dict[Tuple[int, int, int], int] = {}
    for (src, dst), count in sorted(demand.items()):
        for idx in range(count):
            payload = Bits.from_uint(
                rng.getrandbits(_ROUTING_FRAME_SIZE), _ROUTING_FRAME_SIZE
            )
            inputs[src][(src, dst, idx)] = payload
            expected[(src, dst, idx)] = payload.to_uint()
    return inputs, expected


def _summarize_routing(result: RunResult):
    delivered = []
    for node, frames in enumerate(result.outputs):
        for (src, dst, idx), payload in sorted((frames or {}).items()):
            delivered.append((node, src, dst, idx, payload.to_uint()))
    return tuple(delivered)


def _check_routing_summary(summary, expected) -> None:
    got = {(src, dst, idx): value for node, src, dst, idx, value in summary}
    assert got == expected, "routing delivered wrong frames"
    for node, src, dst, idx, _value in summary:
        assert node == dst, f"frame ({src},{dst},{idx}) landed on {node}"


def _prepare_routing(n: int, graph: Graph, rng: random.Random) -> PreparedScenario:
    from repro.routing.lenzen import route_kernel_program, route_program
    from repro.routing.schedule import build_schedule

    frame_size = _ROUTING_FRAME_SIZE
    demand = _routing_demand(n, graph)
    schedule = build_schedule(demand, n)
    inputs, expected = _routing_instance(n, demand, rng)

    def validate(summary) -> None:
        _check_routing_summary(summary, expected)

    return PreparedScenario(
        network_kwargs=dict(n=n, bandwidth=frame_size, mode=Mode.UNICAST),
        programs={
            "generator": route_program(schedule, frame_size),
            "kernel": route_kernel_program(schedule, frame_size),
        },
        inputs=inputs,
        summarize=_summarize_routing,
        validate=validate,
    )


def _prepare_routing_many(
    n: int, graph: Graph, rng: random.Random
) -> PreparedScenario:
    """K payload batches routed through one schedule: the multi-instance
    twin of ``routing``.  The round structure is identical for every
    instance (it depends only on the demand pattern), so the cell is one
    ``run_many`` sweep over a single compiled schedule — exactly the
    shape the zero-copy fabric accelerates (persistent schedule cache,
    shared-memory lanes, K-sharding across pool workers)."""
    from repro.routing.lenzen import route_kernel_program, route_program
    from repro.routing.schedule import build_schedule

    frame_size = _ROUTING_FRAME_SIZE
    demand = _routing_demand(n, graph)
    schedule = build_schedule(demand, n)
    instances: List[List[Dict[Any, Bits]]] = []
    expected_all: List[Dict[Tuple[int, int, int], int]] = []
    for _k in range(ROUTING_MANY_INSTANCES):
        inputs, expected = _routing_instance(n, demand, rng)
        instances.append(inputs)
        expected_all.append(expected)

    def validate_instance(k: int, summary) -> None:
        _check_routing_summary(summary, expected_all[k])

    return PreparedScenario(
        network_kwargs=dict(n=n, bandwidth=frame_size, mode=Mode.UNICAST),
        programs={
            "generator": route_program(schedule, frame_size),
            "kernel": route_kernel_program(schedule, frame_size),
        },
        inputs=instances[0],
        summarize=_summarize_routing,
        instances=instances,
        validate_instance=validate_instance,
    )


def _prepare_circuit(n: int, graph: Graph, rng: random.Random) -> PreparedScenario:
    from repro.circuits.builders import threshold_parity_circuit
    from repro.simulation.kernel import make_kernel_program
    from repro.simulation.protocol import build_plan, make_program

    # Input bit i: does the graph contain edge (i, i+1 mod n)?  The
    # instance family shows through the input vector while the circuit
    # (and hence the round structure) depends only on n.
    circuit = threshold_parity_circuit(n)
    input_values = [graph.has_edge(i, (i + 1) % n) for i in range(n)]
    expected = tuple(circuit.evaluate_outputs(input_values))
    plan = build_plan(circuit, n, None, None)
    partition = [i % n for i in range(circuit.num_inputs)]
    per_node: List[Dict[int, bool]] = [dict() for _ in range(n)]
    for position, gid in enumerate(circuit.input_ids):
        per_node[partition[position]][gid] = bool(input_values[position])
    output_ids = tuple(circuit.outputs)

    def summarize(result: RunResult):
        outputs: Dict[int, bool] = {}
        for node_output in result.outputs:
            if node_output:
                outputs.update(node_output)
        return tuple(bool(outputs[gid]) for gid in output_ids)

    def validate(summary) -> None:
        assert summary == expected, (
            f"circuit simulation disagreed with local evaluation: "
            f"{summary} != {expected}"
        )

    return PreparedScenario(
        network_kwargs=dict(n=n, bandwidth=plan.bandwidth, mode=Mode.UNICAST),
        programs={
            "generator": make_program(plan),
            "kernel": make_kernel_program(plan),
        },
        inputs=per_node,
        summarize=summarize,
        validate=validate,
    )


def _prepare_triangle_mm(n: int, graph: Graph, rng: random.Random) -> PreparedScenario:
    from repro.circuits.arithmetic import matmul_circuit_strassen
    from repro.graphs.generators import complete_graph
    from repro.graphs.subgraph_iso import contains_subgraph
    from repro.matmul.distributed import (
        matmul_input_partition,
        triangle_mm_kernel_program,
        triangle_mm_program,
    )
    from repro.simulation.protocol import build_plan

    trials = 4
    plan = build_plan(
        matmul_circuit_strassen(n), n, matmul_input_partition(n), None
    )
    rows = [
        [1 if graph.has_edge(v, u) else 0 for u in range(n)] for v in range(n)
    ]
    has_triangle = contains_subgraph(graph, complete_graph(3))
    adjacency = {v: frozenset(graph.neighbors(v)) for v in range(n)}

    def summarize(result: RunResult):
        outcome = result.outputs[0]
        witness = outcome.witness
        return (
            bool(outcome.found),
            None if witness is None else (int(witness[0]), int(witness[1])),
            int(outcome.trials),
        )

    def validate(summary) -> None:
        found, witness, _trials = summary
        # One-sided error: "found" answers are always correct (witness
        # edge closes a triangle), misses are possible but a triangle
        # can never be found in a triangle-free graph.
        if not has_triangle:
            assert not found, "triangle reported in a triangle-free graph"
        if found:
            assert witness is not None
            u, v = witness
            assert v in adjacency[u], "witness is not an edge"
            assert adjacency[u] & adjacency[v], "witness edge closes no triangle"

    return PreparedScenario(
        network_kwargs=dict(n=n, bandwidth=plan.bandwidth, mode=Mode.UNICAST),
        programs={
            "generator": triangle_mm_program(graph, plan, trials),
            "kernel": triangle_mm_kernel_program(graph, plan, trials),
        },
        inputs=rows,
        summarize=summarize,
        validate=validate,
    )


def _prepare_subgraph_detection(
    n: int, graph: Graph, rng: random.Random
) -> PreparedScenario:
    from repro.graphs.generators import cycle_graph
    from repro.graphs.subgraph_iso import contains_subgraph
    from repro.subgraphs.detection import full_learning_program

    pattern = cycle_graph(4)
    bandwidth = 8
    expected = contains_subgraph(graph, pattern)
    inputs = [graph.neighbors(v) for v in range(n)]

    def summarize(result: RunResult):
        outcome = result.outputs[0]
        witness = outcome.witness
        return (
            bool(outcome.contains),
            None if witness is None else tuple(sorted(witness)),
        )

    def validate(summary) -> None:
        contains, _witness = summary
        assert contains == expected, (
            f"full-learning detection answered {contains}, truth {expected}"
        )

    return PreparedScenario(
        network_kwargs=dict(n=n, bandwidth=bandwidth, mode=Mode.BROADCAST),
        programs={"generator": full_learning_program(pattern)},
        inputs=inputs,
        summarize=summarize,
        validate=validate,
    )


def _prepare_mst(n: int, graph: Graph, rng: random.Random) -> PreparedScenario:
    from repro.graphs.graph import canonical_edge
    from repro.mst.boruvka import (
        WeightedGraph,
        boruvka_message_bits,
        boruvka_program,
        mst_reference,
    )

    weights = {
        canonical_edge(u, v): rng.randint(1, 63) for u, v in graph.edges()
    }
    wg = WeightedGraph(graph, weights)
    expected = tuple(sorted(mst_reference(wg)))

    def summarize(result: RunResult):
        return tuple(sorted(result.outputs[0]))

    def validate(summary) -> None:
        assert summary == expected, "Borůvka tree differs from Kruskal reference"

    return PreparedScenario(
        network_kwargs=dict(
            n=n, bandwidth=boruvka_message_bits(wg), mode=Mode.BROADCAST
        ),
        programs={"generator": boruvka_program(wg)},
        inputs=None,
        summarize=summarize,
        validate=validate,
    )


register_protocol(
    ProtocolSpec(
        name="routing",
        description="Lenzen-style frame routing of the graph's edge demand",
        mode=Mode.UNICAST,
        engines=("legacy", "fast", "kernel"),
        prepare=_prepare_routing,
        # 16-bit frames regardless of n: the demand pattern scales, the
        # word size does not.
        bandwidth_budget=BandwidthBudget(flat=16),
    )
)
register_protocol(
    ProtocolSpec(
        name="routing_many",
        description="K-instance Lenzen routing through one compiled schedule",
        mode=Mode.UNICAST,
        engines=("legacy", "fast", "kernel"),
        prepare=_prepare_routing_many,
        # Same word size as ``routing``: K scales the instance count,
        # never the frame width.
        bandwidth_budget=BandwidthBudget(flat=16),
        instances=ROUTING_MANY_INSTANCES,
    )
)
register_protocol(
    ProtocolSpec(
        name="circuit_simulation",
        description="Theorem 2 simulation of a threshold/parity circuit",
        mode=Mode.UNICAST,
        engines=("legacy", "fast", "kernel"),
        prepare=_prepare_circuit,
        # The Theorem 2 simulation ships O(log n)-bit words; the
        # threshold/parity plan's measured width is 2 bits at every
        # tested n, so 2·⌈log n⌉ holds with room.
        bandwidth_budget=BandwidthBudget(log_coeff=2),
    )
)
register_protocol(
    ProtocolSpec(
        name="triangle_mm",
        description="Section 2.1 matmul-circuit triangle detection",
        mode=Mode.UNICAST,
        engines=("legacy", "fast", "kernel"),
        prepare=_prepare_triangle_mm,
        # The Strassen matmul plan's word size carries a log² factor
        # (per-level pointer encodings in the simulated circuit); 16·L²
        # bounds every measured size with the tightest margin at n=20.
        bandwidth_budget=BandwidthBudget(log_sq_coeff=16),
    )
)
register_protocol(
    ProtocolSpec(
        name="subgraph_detection",
        description="full-learning C4 detection on the blackboard",
        mode=Mode.BROADCAST,
        engines=("legacy", "fast"),
        prepare=_prepare_subgraph_detection,
        # Full-learning broadcasts adjacency rows in fixed 8-bit
        # blackboard words; the chunk count scales with n, the width
        # does not.
        bandwidth_budget=BandwidthBudget(flat=8),
    )
)
register_protocol(
    ProtocolSpec(
        name="mst",
        description="Borůvka minimum spanning forest on CLIQUE-BCAST",
        mode=Mode.BROADCAST,
        engines=("legacy", "fast"),
        prepare=_prepare_mst,
        # A Borůvka announcement is (edge, weight): two node ids plus a
        # 6-bit weight and framing — measured exactly 2·⌈log n⌉ + 7,
        # budgeted with two spare bits.
        bandwidth_budget=BandwidthBudget(log_coeff=2, flat=9),
    )
)
