"""Named graph-instance families for scenario sweeps.

A family maps ``(n, rng)`` to a :class:`~repro.graphs.graph.Graph`; the
matrix runner derives the rng from the sweep seed and the cell
coordinates, so every cell is reproducible in isolation.  Families are
deliberately small wrappers over :mod:`repro.graphs.generators` — the
point is a *registry* (sweeps name families, results carry the name),
not new generator code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_bipartite,
    random_graph,
    random_k_degenerate,
)
from repro.graphs.graph import Graph

__all__ = ["GraphFamily", "FAMILIES", "register_family", "get_family", "family_names"]


@dataclass(frozen=True)
class GraphFamily:
    """A named graph distribution: ``build(n, rng)`` draws one member."""

    name: str
    description: str
    build: Callable[[int, random.Random], Graph]


FAMILIES: Dict[str, GraphFamily] = {}


def register_family(family: GraphFamily) -> GraphFamily:
    """Add ``family`` to the registry (last registration wins)."""
    FAMILIES[family.name] = family
    return family


def get_family(name: str) -> GraphFamily:
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown graph family {name!r}; known: {sorted(FAMILIES)}"
        ) from None


def family_names() -> List[str]:
    return sorted(FAMILIES)


register_family(
    GraphFamily(
        "gnp",
        "Erdős–Rényi G(n, 0.35)",
        lambda n, rng: random_graph(n, 0.35, rng),
    )
)
register_family(
    GraphFamily(
        "sparse",
        "random 2-degenerate graph (sparse, few triangles)",
        lambda n, rng: random_k_degenerate(n, 2, rng),
    )
)
register_family(
    GraphFamily(
        "complete",
        "complete graph K_n (densest instance)",
        lambda n, rng: complete_graph(n),
    )
)
register_family(
    GraphFamily(
        "cycle",
        "single n-cycle (sparsest connected instance)",
        lambda n, rng: cycle_graph(n),
    )
)
register_family(
    GraphFamily(
        "bipartite",
        "random bipartite G(n/2, n-n/2, 0.5) — triangle-free",
        lambda n, rng: random_bipartite(n // 2, n - n // 2, 0.5, rng),
    )
)
