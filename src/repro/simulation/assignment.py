"""Gate-to-player assignment for Theorem 2's circuit simulation.

The paper sets s = wires/n², calls a gate *heavy* when its weight
w(G) = |in(G)| + |out(G)| is large, assigns each heavy gate to a unique
player, and packs light gates so no player carries more than O(n·s)
weight.  We use threshold 2·n·s for heaviness (so at most n gates are
heavy, since total weight is exactly 2·wires ≤ 2·n²·s) and capacity
4·n·s for light packing, which the same counting argument shows is
always feasible (see DESIGN.md §4 — the constants differ from the
paper's prose, which double-counts wires, but the O(·) behaviour is
identical).

Constant gates are special: their values are public, so they are
excluded from all communication and carry no weight.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.circuits.circuit import CONST_KIND, Circuit

__all__ = ["GateAssignment", "assign_gates"]


@dataclass
class GateAssignment:
    """Mapping I : gates -> players plus the parameters that shaped it."""

    owner: List[int]
    heavy: Set[int]
    s_param: int
    heavy_threshold: int
    capacity: int
    light_load: List[int] = field(default_factory=list)

    def is_heavy(self, gate_id: int) -> bool:
        return gate_id in self.heavy

    def owned_by(self, player: int) -> List[int]:
        return [gid for gid, p in enumerate(self.owner) if p == player]


def assign_gates(circuit: Circuit, n: int) -> GateAssignment:
    """Construct the assignment I of Theorem 2's proof."""
    if n < 1:
        raise ValueError("need at least one player")
    wires = circuit.wire_count()
    s_param = max(1, -(-wires // (n * n)))
    heavy_threshold = 2 * n * s_param
    capacity = 4 * n * s_param

    owner: List[int] = [0] * len(circuit)
    heavy: Set[int] = set()

    weights: Dict[int, int] = {}
    for node in circuit.nodes:
        if node.kind == CONST_KIND:
            weights[node.gate_id] = 0
        else:
            weights[node.gate_id] = circuit.weight(node.gate_id)

    heavy_ids = [
        gid
        for gid, w in weights.items()
        if w >= heavy_threshold and circuit.node(gid).kind != CONST_KIND
    ]
    if len(heavy_ids) > n:
        raise AssertionError(
            f"{len(heavy_ids)} heavy gates exceed n={n}; "
            "the counting bound guarantees this cannot happen"
        )
    for player, gid in enumerate(sorted(heavy_ids)):
        owner[gid] = player
        heavy.add(gid)

    # Pack light gates minimum-load-first; the counting argument in the
    # proof of Theorem 2 shows capacity 4·n·s never overflows.
    load = [0] * n
    heap = [(0, p) for p in range(n)]
    heapq.heapify(heap)
    light_ids = sorted(
        (gid for gid in weights if gid not in heavy),
        key=lambda gid: -weights[gid],
    )
    for gid in light_ids:
        w = weights[gid]
        if w == 0:
            owner[gid] = 0
            continue
        current, player = heapq.heappop(heap)
        if current + w > capacity:
            raise AssertionError(
                "light-gate packing overflowed its capacity; "
                "this contradicts the counting bound of Theorem 2"
            )
        owner[gid] = player
        load[player] = current + w
        heapq.heappush(heap, (current + w, player))

    return GateAssignment(
        owner=owner,
        heavy=heavy,
        s_param=s_param,
        heavy_threshold=heavy_threshold,
        capacity=capacity,
        light_load=load,
    )
