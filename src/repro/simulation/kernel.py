"""Kernel form of the Theorem 2 simulation: the whole plan as one
declared round sequence over a stacked gate-value matrix.

The generator :func:`~repro.simulation.protocol.execute_plan` resumes
``n`` coroutines per round; here the same public
:class:`~repro.simulation.protocol.SimulationPlan` compiles into kernel
rounds (:mod:`repro.core.kernels`) operating on one ``K × gates``
value matrix — all nodes, and all ``K`` instances of a
:meth:`~repro.core.network.Network.run_many` sweep, advance with a few
numpy operations per round.  The round sequence, widths and bit totals
are identical to the generator's by construction (the same plan drives
both), and the equivalence suite pins outputs byte-for-byte.

Gate evaluation is vectorized per gate across instances
(:func:`vector_compute`); partial summaries for the heavy-gate rounds
are produced the same way (:func:`vector_summary`).  Owners evaluate a
heavy gate directly from its input values rather than re-combining the
received summaries — by Definition 1 (b-separability) the two are the
same function, which is also why the generator's ``combine`` of honest
summaries matches.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.circuits.circuit import CONST_KIND
from repro.circuits.gates import (
    AndGate,
    GenericGate,
    ModGate,
    NotGate,
    OrGate,
    ThresholdGate,
    XorGate,
)
from repro.core.bits import Bits
from repro.core.kernels import KernelBuilder, pack_rows, unpack_rows
from repro.core.network import Mode
from repro.routing.lenzen import kernel_route_payloads
from repro.simulation.protocol import SimulationPlan

__all__ = [
    "vector_compute",
    "vector_summary",
    "constant_columns",
    "payload_bridge",
    "append_simulation_rounds",
    "make_kernel_program",
]


def constant_columns(circuit) -> Tuple[np.ndarray, np.ndarray]:
    """(gate-id columns, 0/1 values) of the circuit's constant nodes —
    the seed every fresh ``K × gates`` value matrix needs."""
    cols = np.asarray(
        [node.gate_id for node in circuit.nodes if node.kind == CONST_KIND],
        dtype=np.intp,
    )
    vals = np.asarray(
        [
            1 if node.const_value else 0
            for node in circuit.nodes
            if node.kind == CONST_KIND
        ],
        dtype=np.uint8,
    )
    return cols, vals


def vector_compute(gate, part: np.ndarray) -> np.ndarray:
    """Evaluate ``gate`` on a ``K × fan_in`` 0/1 matrix of its input
    values — one result per instance, vectorized for every built-in
    gate family (arbitrary :class:`~repro.circuits.gates.Gate`
    subclasses fall back to per-instance ``compute``)."""
    if isinstance(gate, AndGate):
        return part.all(axis=1)
    if isinstance(gate, OrGate):
        return part.any(axis=1)
    if isinstance(gate, NotGate):
        return part[:, 0] == 0
    if isinstance(gate, XorGate):
        return part.sum(axis=1, dtype=np.int64) % 2 == 1
    if isinstance(gate, ModGate):
        return part.sum(axis=1, dtype=np.int64) % gate.modulus == 0
    if isinstance(gate, ThresholdGate):
        if gate.weights is None:
            total = part.sum(axis=1, dtype=np.int64)
        else:
            total = part.astype(np.int64) @ np.asarray(gate.weights, dtype=np.int64)
        return total >= gate.threshold
    return np.array(
        [gate.compute([bool(x) for x in row]) for row in part], dtype=bool
    )


def vector_summary(
    gate, positions: List[int], part: np.ndarray, fan_in: int
) -> np.ndarray:
    """One part's b-separability summary for every instance at once:
    ``part`` is the ``K × len(positions)`` 0/1 matrix of the part's
    input values, ``positions`` their indices in the gate's input list
    (weighted gates need them).  Returns a ``K``-vector of summary
    payloads (``uint64``, or ``object`` ints past 63 bits)."""
    if isinstance(gate, (AndGate, NotGate)):
        return part.all(axis=1).astype(np.uint64)
    if isinstance(gate, OrGate):
        return part.any(axis=1).astype(np.uint64)
    if isinstance(gate, XorGate):
        return (part.sum(axis=1, dtype=np.int64) % 2).astype(np.uint64)
    if isinstance(gate, ModGate):
        return (
            part.sum(axis=1, dtype=np.int64) % gate.modulus
        ).astype(np.uint64)
    if isinstance(gate, ThresholdGate):
        if gate.weights is None:
            total = part.sum(axis=1, dtype=np.int64)
        else:
            weights = np.asarray(
                [gate.weights[p] for p in positions], dtype=np.int64
            )
            total = part.astype(np.int64) @ weights
        return total.astype(np.uint64)
    if isinstance(gate, GenericGate):
        covered = 0
        for position in positions:
            covered |= 1 << position
        if 2 * fan_in <= 63:
            values = np.zeros(len(part), dtype=np.uint64)
            for i, position in enumerate(positions):
                values |= part[:, i].astype(np.uint64) << np.uint64(position)
            return (np.uint64(covered << fan_in)) | values
        out = np.empty(len(part), dtype=object)
        for k, row in enumerate(part):
            values = 0
            for i, position in enumerate(positions):
                if row[i]:
                    values |= 1 << position
            out[k] = (covered << fan_in) | values
        return out
    # Unknown gate type: honest per-instance fallback.
    out = np.empty(len(part), dtype=object)
    for k, row in enumerate(part):
        indexed = [(p, bool(row[i])) for i, p in enumerate(positions)]
        out[k] = gate.partial_summary(indexed, fan_in).to_uint()
    return out


def payload_bridge(order: Dict[Tuple[int, int], List[int]], vals_key: str):
    """(get_payloads, set_result) callbacks that move the gate values
    named by ``order`` (gid lists per (src, dst) pair) between the
    ``K × gates`` value matrix and routed :class:`Bits` payloads."""
    cols = {pair: np.asarray(gids, dtype=np.intp) for pair, gids in order.items()}

    def get_payloads(state):
        vals = state[vals_key]
        instances = vals.shape[0]
        maps: List[Dict[Tuple[int, int], Bits]] = [
            dict() for _ in range(instances)
        ]
        for pair, gid_cols in cols.items():
            length = gid_cols.size
            packed = pack_rows(vals[:, gid_cols])
            for k in range(instances):
                maps[k][pair] = Bits(packed[k], length)
        return maps

    def set_result(state, received):
        vals = state[vals_key]
        for (src, dst), gid_cols in cols.items():
            payloads = [
                per_instance[dst][src].to_uint() for per_instance in received
            ]
            vals[:, gid_cols] = unpack_rows(payloads, gid_cols.size)

    return get_payloads, set_result


def append_simulation_rounds(
    builder: KernelBuilder, plan: SimulationPlan, vals_key: str
) -> None:
    """Append every communication round of ``plan`` to ``builder``,
    mirroring :func:`~repro.simulation.protocol.execute_plan` phase for
    phase.  ``state[vals_key]`` must hold the ``K × gates`` 0/1 value
    matrix with constants and the instance's input gate values filled
    in before the first appended round fires (stage it with
    ``builder.before``)."""
    circuit = plan.circuit
    nodes = circuit.nodes

    # ---- input redistribution ----------------------------------------
    if plan.input_lengths:
        get_payloads, set_result = payload_bridge(plan.input_order, vals_key)
        kernel_route_payloads(
            builder,
            plan.input_lengths,
            plan.bandwidth,
            plan.input_schedule,
            get_payloads,
            set_result,
        )

    # ---- heavy pushes (one 1-bit message per plan edge) ---------------
    def push_round(push_recv: Dict[Tuple[int, int], int]) -> None:
        edges = sorted(push_recv.items())
        by_src: Dict[int, List[int]] = {}
        gid_cols: List[int] = []
        for (src, dst), gid in edges:
            by_src.setdefault(src, []).append(dst)
            gid_cols.append(gid)
        cols = np.asarray(gid_cols, dtype=np.intp)

        def send(state):
            return state[vals_key][:, cols].astype(np.uint64)

        def recv(state, inbox):
            state[vals_key][:, cols] = inbox.gather().astype(np.uint8)

        builder.unicast_round(sorted(by_src.items()), 1, send, recv)

    if plan.layer0_push_recv:
        push_round(plan.layer0_push_recv)

    # ---- layers ------------------------------------------------------
    for lp in plan.layer_plans:
        heavy_entries = [
            (gid, nodes[gid]) for gid in lp.heavy_gates
        ]

        def compute_heavy(state, _entries=heavy_entries):
            vals = state[vals_key]
            for gid, node in _entries:
                cols = np.asarray(node.inputs, dtype=np.intp)
                vals[:, gid] = vector_compute(node.gate, vals[:, cols])

        if lp.has_summary_round:
            # One message per (contributing sender, heavy gate): the
            # sender's partial summary, summary_width(gid) bits.
            messages: List[Tuple[int, int, int, List[int]]] = []
            for gid in lp.heavy_gates:
                owner = plan.assignment.owner[gid]
                for sender in sorted(lp.summary_senders[gid]):
                    positions = lp.summary_senders[gid][sender]
                    messages.append((sender, owner, gid, positions))
            messages.sort(key=lambda m: (m[0], m[1]))
            by_src: Dict[int, List[int]] = {}
            widths: List[int] = []
            for sender, owner, gid, _positions in messages:
                by_src.setdefault(sender, []).append(owner)
                widths.append(plan.summary_width(gid))

            def send(state, _messages=messages, _widths=widths):
                vals = state[vals_key]
                instances = vals.shape[0]
                wide = max(_widths) > 63
                out = np.empty(
                    (instances, len(_messages)),
                    dtype=object if wide else np.uint64,
                )
                for j, (_sender, _owner, gid, positions) in enumerate(_messages):
                    node = nodes[gid]
                    cols = np.asarray(
                        [node.inputs[p] for p in positions], dtype=np.intp
                    )
                    out[:, j] = vector_summary(
                        node.gate, positions, vals[:, cols], len(node.inputs)
                    )
                return out

            def recv(state, inbox, _compute=compute_heavy):
                # Owners combine — evaluating the gate on its (by now
                # globally known) input values, which b-separability
                # makes identical to combining the received summaries.
                _compute(state)

            builder.unicast_round(
                sorted(by_src.items()), max(widths), send, recv, widths=widths
            )
        elif heavy_entries:
            # No summaries needed: owners evaluate locally before any
            # dependent round fires.
            builder.before(compute_heavy)

        if lp.push_recv:
            push_round(lp.push_recv)

        if lp.light_lengths:
            get_payloads, set_result = payload_bridge(lp.light_order, vals_key)
            kernel_route_payloads(
                builder,
                lp.light_lengths,
                plan.bandwidth,
                lp.light_schedule,
                get_payloads,
                set_result,
            )

        light_gids = sorted(
            gid for gids in lp.light_owned.values() for gid in gids
        )

        def eval_lights(state, _gids=light_gids):
            vals = state[vals_key]
            for gid in _gids:
                node = nodes[gid]
                cols = np.asarray(node.inputs, dtype=np.intp)
                vals[:, gid] = vector_compute(node.gate, vals[:, cols])

        if light_gids:
            builder.before(eval_lights)


def make_kernel_program(plan: SimulationPlan):
    """The kernel twin of :func:`~repro.simulation.protocol.make_program`:
    same per-node inputs (``{input gid: bool}`` dicts), same outputs
    (each node's ``{output gid: bool}``), zero generator steps."""
    circuit = plan.circuit
    owner = plan.assignment.owner
    n = plan.n
    builder = KernelBuilder(n, Mode.UNICAST, bandwidth=plan.bandwidth)
    vals_key = "vals"
    const_cols, const_vals = constant_columns(circuit)

    def init(state, kctx):
        vals = np.zeros((kctx.instances, len(circuit)), dtype=np.uint8)
        if const_cols.size:
            vals[:, const_cols] = const_vals
        for k, inputs in enumerate(kctx.inputs_list):
            if inputs is None:
                continue
            for per_node in inputs:
                for gid, value in (per_node or {}).items():
                    vals[k, gid] = 1 if value else 0
        state[vals_key] = vals

    builder.on_init(init)
    append_simulation_rounds(builder, plan, vals_key)
    out_by_node: List[List[int]] = [[] for _ in range(n)]
    for gid in circuit.outputs:
        out_by_node[owner[gid]].append(gid)

    def finish(state, kctx):
        vals = state[vals_key]
        return [
            [
                {gid: bool(vals[k, gid]) for gid in out_by_node[v]}
                for v in range(n)
            ]
            for k in range(kctx.instances)
        ]

    return builder.build(finish, name="simulate_circuit")
