"""The Theorem 2 protocol: evaluating a circuit on CLIQUE-UCAST.

The simulation follows the paper's proof layer by layer.  For each layer
L_r of the circuit:

(a) *Heavy gates* are evaluated through their b-separability: every
    player owning some of a heavy gate's input gates sends one summary
    to the gate's owner, who combines them.  Because each player owns at
    most one heavy gate, this is a single engine round per layer.
(b) *Heavy outputs* are pushed once (deduplicated) to every player
    owning a light consumer — one bit per link, one round per layer.
(c) *Light-light wires* form a balanced demand (each player carries
    O(n·s) light weight) and are routed with the deterministic
    edge-colouring router — O(1) rounds per layer.

Before the layers run, the (arbitrary, roughly balanced) initial input
partition is redistributed to the assignment's owners with the same
router, exactly as the paper's final remark prescribes.

All scheduling data (which rounds exist, who sends what where, payload
lengths) is derived from the circuit structure and the deterministic
assignment — public information — so nodes never need to coordinate.
The engine's round count is therefore an honest measurement of the
simulation's round complexity, which Theorem 2 bounds by O(depth).

That same publicness makes the protocol *oblivious*: the round
structure is a pure function of the :class:`SimulationPlan`, input
values only fill payload bits.  :func:`make_program` declares this to
the engine (:func:`~repro.core.compiled.mark_oblivious`), so evaluating
one circuit on many input vectors — :func:`simulate_circuit_many` —
records the round schedule once and replays it payload-only for every
further instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.circuits.circuit import CONST_KIND, GATE_KIND, Circuit
from repro.core.bits import Bits
from repro.core.compiled import declare_schedule_digest, mark_oblivious
from repro.core.network import Context, Mode, Network, Outbox, RunResult
from repro.routing.lenzen import payload_demand, route_payloads
from repro.routing.schedule import RoutingSchedule, build_schedule
from repro.simulation.assignment import GateAssignment, assign_gates

__all__ = [
    "LayerPlan",
    "SimulationPlan",
    "build_plan",
    "simulate_circuit",
    "simulate_circuit_many",
]

Pair = Tuple[int, int]


@dataclass
class LayerPlan:
    """Public per-layer schedule."""

    layer_index: int
    heavy_gates: List[int] = field(default_factory=list)
    # heavy gid -> sender player -> positions (indices into in(G)).
    summary_senders: Dict[int, Dict[int, List[int]]] = field(default_factory=dict)
    # heavy gid -> positions handled locally by the owner (incl. consts).
    summary_local: Dict[int, List[int]] = field(default_factory=dict)
    has_summary_round: bool = False
    # (sender, receiver) -> heavy gid whose value that push carries.
    push_recv: Dict[Pair, int] = field(default_factory=dict)
    # (src, dst) -> ordered source-gate ids for the light-wire payloads.
    light_order: Dict[Pair, List[int]] = field(default_factory=dict)
    light_lengths: Dict[Pair, int] = field(default_factory=dict)
    light_schedule: Optional[RoutingSchedule] = None
    # player -> light gate ids of this layer it must evaluate.
    light_owned: Dict[int, List[int]] = field(default_factory=dict)


@dataclass
class SimulationPlan:
    """Everything every player knows before the protocol starts."""

    circuit: Circuit
    n: int
    assignment: GateAssignment
    bandwidth: int
    input_order: Dict[Pair, List[int]] = field(default_factory=dict)
    input_lengths: Dict[Pair, int] = field(default_factory=dict)
    input_schedule: Optional[RoutingSchedule] = None
    layer0_push_recv: Dict[Pair, int] = field(default_factory=dict)
    layer_plans: List[LayerPlan] = field(default_factory=list)

    def summary_width(self, gid: int) -> int:
        node = self.circuit.node(gid)
        return node.gate.summary_width(len(node.inputs))


def _heavy_push_destinations(
    circuit: Circuit, assignment: GateAssignment
) -> Dict[int, List[int]]:
    """For each heavy gate, the players owning at least one of its light
    consumers (the deduplicated sends of step (b))."""
    destinations: Dict[int, set] = {gid: set() for gid in assignment.heavy}
    for node in circuit.nodes:
        if node.kind != GATE_KIND:
            continue
        consumer_owner = assignment.owner[node.gate_id]
        for src in node.inputs:
            if src in assignment.heavy and consumer_owner != assignment.owner[src]:
                if node.gate_id not in assignment.heavy:
                    destinations[src].add(consumer_owner)
    return {gid: sorted(dests) for gid, dests in destinations.items()}


def build_plan(
    circuit: Circuit,
    n: int,
    input_partition: Optional[Sequence[int]] = None,
    bandwidth: Optional[int] = None,
) -> SimulationPlan:
    """Precompute the full public schedule of the simulation.

    ``input_partition[i]`` names the player initially holding circuit
    input i (defaults to round-robin).
    """
    assignment = assign_gates(circuit, n)
    layers = circuit.layers()
    owner = assignment.owner

    heavy_widths = [
        circuit.node(gid).gate.summary_width(circuit.fan_in(gid))
        for gid in assignment.heavy
        if circuit.node(gid).kind == GATE_KIND
    ]
    if bandwidth is None:
        bandwidth = max([1, assignment.s_param] + heavy_widths)

    plan = SimulationPlan(
        circuit=circuit, n=n, assignment=assignment, bandwidth=bandwidth
    )

    # ---- input redistribution -------------------------------------------
    input_ids = circuit.input_ids
    if input_partition is None:
        input_partition = [i % n for i in range(len(input_ids))]
    if len(input_partition) != len(input_ids):
        raise ValueError("input_partition must name a player per input")
    for position, gid in enumerate(input_ids):
        holder = input_partition[position]
        target = owner[gid]
        if holder != target:
            plan.input_order.setdefault((holder, target), []).append(gid)
    plan.input_lengths = {
        pair: len(gids) for pair, gids in plan.input_order.items()
    }
    plan.input_schedule = build_schedule(
        payload_demand(plan.input_lengths, bandwidth), n
    )

    # ---- heavy pushes ------------------------------------------------------
    push_dests = _heavy_push_destinations(circuit, assignment)
    layer_of: Dict[int, int] = {}
    for level, gids in enumerate(layers):
        for gid in gids:
            layer_of[gid] = level
    for gid, dests in push_dests.items():
        level = layer_of[gid]
        for dest in dests:
            if level == 0:
                plan.layer0_push_recv[(owner[gid], dest)] = gid

    # ---- per-layer plans -----------------------------------------------------
    for level in range(1, len(layers)):
        lp = LayerPlan(layer_index=level)
        light_members: Dict[Pair, set] = {}
        for gid in layers[level]:
            node = circuit.node(gid)
            if gid in assignment.heavy:
                lp.heavy_gates.append(gid)
                senders: Dict[int, List[int]] = {}
                local: List[int] = []
                for pos, src in enumerate(node.inputs):
                    src_node = circuit.node(src)
                    if src_node.kind == CONST_KIND or owner[src] == owner[gid]:
                        local.append(pos)
                    else:
                        senders.setdefault(owner[src], []).append(pos)
                lp.summary_senders[gid] = senders
                lp.summary_local[gid] = local
                if senders:
                    lp.has_summary_round = True
            else:
                lp.light_owned.setdefault(owner[gid], []).append(gid)
                for src in node.inputs:
                    src_node = circuit.node(src)
                    if src_node.kind == CONST_KIND:
                        continue
                    if src in assignment.heavy:
                        continue  # covered by the push rounds
                    if owner[src] == owner[gid]:
                        continue
                    members = light_members.setdefault(
                        (owner[src], owner[gid]), set()
                    )
                    members.add(src)
            if gid in push_dests:
                for dest in push_dests[gid]:
                    lp.push_recv[(owner[gid], dest)] = gid
        lp.light_order = {
            pair: sorted(members) for pair, members in light_members.items()
        }
        lp.light_lengths = {
            pair: len(gids) for pair, gids in lp.light_order.items()
        }
        if lp.light_lengths:
            lp.light_schedule = build_schedule(
                payload_demand(lp.light_lengths, bandwidth), n
            )
        plan.layer_plans.append(lp)

    return plan


def execute_plan(ctx: Context, plan: SimulationPlan, my_inputs: Mapping[int, bool]):
    """Run the simulation as a sub-generator (``yield from``) so callers
    can compose it with further protocol phases (e.g. the triangle
    detection wrapper of Section 2.1).  Returns the values of every gate
    this node owns or learned."""
    circuit = plan.circuit
    owner = plan.assignment.owner
    me = ctx.node_id
    values: Dict[int, bool] = {}
    for node in circuit.nodes:
        if node.kind == CONST_KIND:
            values[node.gate_id] = node.const_value
    # Inputs we keep (already owned by us under the assignment).
    for gid, value in my_inputs.items():
        if owner[gid] == me:
            values[gid] = bool(value)

    # ---- input redistribution ----------------------------------------
    if plan.input_lengths:
        payloads = {}
        for (src, dst), gids in plan.input_order.items():
            if src == me:
                payloads[dst] = Bits.from_bools(
                    [bool(my_inputs[g]) for g in gids]
                )
        received = yield from route_payloads(
            ctx,
            plan.input_lengths,
            payloads,
            plan.bandwidth,
            plan.input_schedule,
        )
        for src, bits in received.items():
            for gid, bit in zip(plan.input_order[(src, me)], bits):
                values[gid] = bool(bit)

    # ---- layer-0 heavy pushes ------------------------------------------
    if plan.layer0_push_recv:
        messages = {
            dst: Bits.from_uint(1 if values[gid] else 0, 1)
            for (src, dst), gid in plan.layer0_push_recv.items()
            if src == me
        }
        inbox = yield Outbox.unicast(messages)
        for sender, payload in inbox.items():
            gid = plan.layer0_push_recv[(sender, me)]
            values[gid] = bool(payload.to_uint())

    # ---- layers ------------------------------------------------------------
    for lp in plan.layer_plans:
        if lp.has_summary_round:
            messages = {}
            for gid in lp.heavy_gates:
                gate_owner = owner[gid]
                if gate_owner == me:
                    continue
                positions = lp.summary_senders[gid].get(me)
                if not positions:
                    continue
                node = circuit.node(gid)
                part = [(pos, values[node.inputs[pos]]) for pos in positions]
                messages[gate_owner] = node.gate.partial_summary(
                    part, len(node.inputs)
                )
            inbox = yield Outbox.unicast(messages)
            for gid in lp.heavy_gates:
                if owner[gid] != me:
                    continue
                node = circuit.node(gid)
                summaries = []
                local_positions = lp.summary_local[gid]
                if local_positions:
                    part = [
                        (pos, values[node.inputs[pos]])
                        for pos in local_positions
                    ]
                    summaries.append(
                        node.gate.partial_summary(part, len(node.inputs))
                    )
                for sender in lp.summary_senders[gid]:
                    summaries.append(inbox.get(sender))
                values[gid] = node.gate.combine(summaries, len(node.inputs))
        else:
            # No summaries needed anywhere: heavy gates (if any) have
            # all inputs local to their owners.
            for gid in lp.heavy_gates:
                if owner[gid] == me:
                    node = circuit.node(gid)
                    values[gid] = node.gate.compute(
                        [values[src] for src in node.inputs]
                    )

        if lp.push_recv:
            messages = {
                dst: Bits.from_uint(1 if values[gid] else 0, 1)
                for (src, dst), gid in lp.push_recv.items()
                if src == me
            }
            inbox = yield Outbox.unicast(messages)
            for sender, payload in inbox.items():
                gid = lp.push_recv[(sender, me)]
                values[gid] = bool(payload.to_uint())

        if lp.light_lengths:
            payloads = {}
            for (src, dst), gids in lp.light_order.items():
                if src == me:
                    payloads[dst] = Bits.from_bools(
                        [values[g] for g in gids]
                    )
            received = yield from route_payloads(
                ctx,
                lp.light_lengths,
                payloads,
                plan.bandwidth,
                lp.light_schedule,
            )
            for src, bits in received.items():
                for gid, bit in zip(lp.light_order[(src, me)], bits):
                    values[gid] = bool(bit)

        for gid in lp.light_owned.get(me, ()):  # evaluate my light gates
            node = circuit.node(gid)
            values[gid] = node.gate.compute(
                [values[src] for src in node.inputs]
            )

    return {
        gid: values[gid] for gid in circuit.outputs if owner[gid] == me
    }


def make_program(plan: SimulationPlan):
    """The node program executing ``plan``; ``ctx.input`` must be a dict
    {input gate id: bool} for the inputs this node initially holds."""

    def program(ctx: Context):
        result = yield from execute_plan(ctx, plan, ctx.input or {})
        return result

    # The round structure is a pure function of the plan — see the
    # module docstring.
    declare_schedule_digest(program, "simulate_circuit", plan)
    return mark_oblivious(program, "simulate_circuit", id(plan))


def simulate_circuit(
    circuit: Circuit,
    n: int,
    input_values: Sequence[bool],
    input_partition: Optional[Sequence[int]] = None,
    bandwidth: Optional[int] = None,
    plan: Optional[SimulationPlan] = None,
    seed: int = 0,
    kernel: bool = False,
) -> Tuple[Dict[int, bool], RunResult, SimulationPlan]:
    """Run the full Theorem 2 simulation and return (outputs by gate id,
    engine result, plan)."""
    all_outputs, results, plan = simulate_circuit_many(
        circuit,
        n,
        [input_values],
        input_partition=input_partition,
        bandwidth=bandwidth,
        plan=plan,
        seed=seed,
        kernel=kernel,
    )
    return all_outputs[0], results[0], plan


def simulate_circuit_many(
    circuit: Circuit,
    n: int,
    input_values_list: Sequence[Sequence[bool]],
    input_partition: Optional[Sequence[int]] = None,
    bandwidth: Optional[int] = None,
    plan: Optional[SimulationPlan] = None,
    seed: int = 0,
    kernel: bool = False,
) -> Tuple[List[Dict[int, bool]], List[RunResult], SimulationPlan]:
    """Evaluate ``circuit`` on many input vectors with one compiled
    schedule: the plan is built once and
    :meth:`~repro.core.network.Network.run_many` replays the recorded
    round structure for every instance after the first.  Per-instance
    results are byte-identical to :func:`simulate_circuit`.

    ``kernel=True`` runs the vectorized kernel form of the simulation
    (:func:`repro.simulation.kernel.make_kernel_program`) instead of
    the generator loop — same results, zero generator resumptions."""
    if plan is None:
        plan = build_plan(circuit, n, input_partition, bandwidth)
    if input_partition is None:
        input_partition = [i % n for i in range(circuit.num_inputs)]
    inputs_list = []
    for input_values in input_values_list:
        per_node_inputs: List[Dict[int, bool]] = [dict() for _ in range(n)]
        for position, gid in enumerate(circuit.input_ids):
            per_node_inputs[input_partition[position]][gid] = bool(
                input_values[position]
            )
        inputs_list.append(per_node_inputs)
    network = Network(n=n, bandwidth=plan.bandwidth, mode=Mode.UNICAST, seed=seed)
    if kernel:
        from repro.simulation.kernel import make_kernel_program

        program: Any = make_kernel_program(plan)
    else:
        program = make_program(plan)
    results = network.run_many(program, inputs_list)
    all_outputs: List[Dict[int, bool]] = []
    for result in results:
        outputs: Dict[int, bool] = {}
        for node_output in result.outputs:
            if node_output:
                outputs.update(node_output)
        all_outputs.append(outputs)
    return all_outputs, results, plan


@dataclass
class OutputRouting:
    """Remark 3: a public plan for redistributing multi-bit operator
    outputs from their simulation owners to caller-chosen players."""

    order: Dict[Pair, List[int]] = field(default_factory=dict)
    lengths: Dict[Pair, int] = field(default_factory=dict)
    schedule: Optional[RoutingSchedule] = None
    target_of: Dict[int, int] = field(default_factory=dict)


def build_output_routing(
    plan: SimulationPlan, target_of: Mapping[int, int]
) -> OutputRouting:
    """Plan the Remark 3 output redistribution: every output gate id in
    ``target_of`` is shipped from its owner to ``target_of[gid]``."""
    routing = OutputRouting(target_of=dict(target_of))
    for gid in plan.circuit.outputs:
        if gid not in target_of:
            continue
        src = plan.assignment.owner[gid]
        dst = target_of[gid]
        if src != dst:
            routing.order.setdefault((src, dst), []).append(gid)
    routing.lengths = {pair: len(gids) for pair, gids in routing.order.items()}
    routing.schedule = build_schedule(
        payload_demand(routing.lengths, plan.bandwidth), plan.n
    )
    return routing


def redistribute_outputs(
    ctx: Context,
    plan: SimulationPlan,
    routing: OutputRouting,
    values: Mapping[int, bool],
):
    """Execute the Remark 3 redistribution (sub-generator).  ``values``
    is this node's gate-value map from :func:`execute_plan`; returns the
    {gate id: value} entries this node is a target for."""
    me = ctx.node_id
    payloads = {}
    for (src, dst), gids in routing.order.items():
        if src == me:
            payloads[dst] = Bits.from_bools([values[g] for g in gids])
    received = yield from route_payloads(
        ctx, routing.lengths, payloads, plan.bandwidth, routing.schedule
    )
    mine: Dict[int, bool] = {}
    for gid, target in routing.target_of.items():
        if target == me and plan.assignment.owner[gid] == me:
            mine[gid] = values[gid]
    for src, bits in received.items():
        for gid, bit in zip(routing.order[(src, me)], bits):
            mine[gid] = bool(bit)
    return mine
