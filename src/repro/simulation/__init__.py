"""Theorem 2: simulating bounded-depth circuits on CLIQUE-UCAST."""

from repro.simulation.assignment import GateAssignment, assign_gates
from repro.simulation.kernel import make_kernel_program
from repro.simulation.protocol import (
    LayerPlan,
    OutputRouting,
    SimulationPlan,
    build_output_routing,
    build_plan,
    execute_plan,
    make_program,
    redistribute_outputs,
    simulate_circuit,
    simulate_circuit_many,
)

__all__ = [
    "GateAssignment",
    "assign_gates",
    "LayerPlan",
    "SimulationPlan",
    "build_plan",
    "execute_plan",
    "make_program",
    "make_kernel_program",
    "simulate_circuit",
    "simulate_circuit_many",
    "OutputRouting",
    "build_output_routing",
    "redistribute_outputs",
]
