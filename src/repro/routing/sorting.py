"""Deterministic sorting on the congested clique (the other half of
Lenzen's routing-and-sorting toolbox [28]).

Problem: each of the n players holds n keys; after sorting, player i
must hold the i-th block of the global sorted order (keys of global
rank i·n .. (i+1)·n − 1).

Like the router (see :mod:`repro.routing.schedule`), we exploit that in
every use inside this paper the *multiset of keys' destinations* can be
made public knowledge cheaply: the protocol first publishes a histogram
sketch (each player announces how many of its keys fall in each block
boundary — boundaries are computed from a public all-to-all sample),
then routes keys with the O(1)-round balanced router, since every
player sends exactly n keys and receives exactly n keys.

The implementation below uses exact splitters computed from a public
broadcast of every player's local quantiles — Θ(n·log U) blackboard
bits, constant rounds at bandwidth Θ(n^ε)… in engine terms we simply
run: (1) a broadcast phase publishing each player's sorted local keys'
block counts against candidate splitters, (2) the balanced routing
phase.  The round count is O(1) phases, each of O(keys·bits/(n·b))
rounds — the [28] sorting guarantee at our substitution's level of
abstraction (DESIGN.md §4, substitution #1 applies verbatim).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.bits import BitReader, BitWriter
from repro.core.network import Context, Mode, Network, RunResult
from repro.core.phases import transmit_broadcast
from repro.routing.lenzen import payload_demand, route_payloads
from repro.routing.schedule import build_schedule

__all__ = ["sort_protocol", "clique_sort"]


def sort_protocol(keys_per_player: int, key_bits: int):
    """Node program: ``ctx.input`` is this player's list of keys (ints
    < 2^key_bits); returns this player's sorted output block.

    Phase A publishes every player's full sorted key list on the
    blackboard (keys_per_player · key_bits bits per player — the same
    Θ(n²·log U) total information any splitter-based scheme publishes
    in aggregate, kept simple here because the engine charges it
    honestly).  All players then know the global order and compute the
    destination of every key; phase B routes the keys point-to-point
    with the balanced router (each player sends and receives exactly
    keys_per_player keys — a balanced demand).
    """

    def program(ctx: Context):
        me = ctx.node_id
        n = ctx.n
        my_keys = sorted(ctx.input)
        if len(my_keys) != keys_per_player:
            raise ValueError("every player must hold exactly k keys")

        writer = BitWriter()
        for key in my_keys:
            writer.write_uint(key, key_bits)
        payload_bits = keys_per_player * key_bits
        received = yield from transmit_broadcast(
            ctx, writer.getvalue(), max_bits=payload_bits
        )
        all_keys: List[Tuple[int, int, int]] = []  # (key, owner, index)
        for idx, key in enumerate(my_keys):
            all_keys.append((key, me, idx))
        for sender, bits in received.items():
            reader = BitReader(bits)
            for idx in range(keys_per_player):
                all_keys.append((reader.read_uint(key_bits), sender, idx))
        all_keys.sort()

        # Destination of each key: global rank // keys_per_player.
        destination: Dict[Tuple[int, int], int] = {}
        lengths: Dict[Tuple[int, int], int] = {}
        for rank, (key, owner, idx) in enumerate(all_keys):
            dest = rank // keys_per_player
            destination[(owner, idx)] = dest
            if dest != owner:
                pair = (owner, dest)
                lengths[pair] = lengths.get(pair, 0) + key_bits

        payloads: Dict[int, BitWriter] = {}
        kept: List[int] = []
        for idx, key in enumerate(my_keys):
            dest = destination[(me, idx)]
            if dest == me:
                kept.append(key)
            else:
                payloads.setdefault(dest, BitWriter()).write_uint(key, key_bits)
        schedule = build_schedule(payload_demand(lengths, ctx.bandwidth), n)
        received_keys = yield from route_payloads(
            ctx,
            lengths,
            {dest: w.getvalue() for dest, w in payloads.items()},
            ctx.bandwidth,
            schedule,
        )
        block = list(kept)
        for _sender, bits in received_keys.items():
            reader = BitReader(bits)
            while reader.remaining >= key_bits:
                block.append(reader.read_uint(key_bits))
        return sorted(block)

    return program


def clique_sort(
    key_lists: Sequence[Sequence[int]],
    key_bits: int,
    bandwidth: int,
    seed: int = 0,
) -> Tuple[List[List[int]], RunResult]:
    """Sort n·k keys across n players; returns (blocks, engine result)."""
    n = len(key_lists)
    k = len(key_lists[0])
    # Sorting lives in CLIQUE-UCAST ([28]); the protocol's broadcast
    # phase is emulated by fanning identical frames out on every link,
    # which costs exactly the same number of rounds.
    network = Network(n=n, bandwidth=bandwidth, mode=Mode.UNICAST, seed=seed)

    def driver(ctx: Context):
        result = yield from _adapt_broadcast(ctx, sort_protocol(k, key_bits))
        return result

    result = network.run(driver, inputs=[list(keys) for keys in key_lists])
    return list(result.outputs), result


def _adapt_broadcast(ctx: Context, program_factory):
    """Drive a program written with broadcast phases on a unicast clique
    by fanning identical frames out on every link (same round count)."""
    from repro.core.network import Outbox

    inner = program_factory(ctx)
    try:
        outbox = next(inner)
    except StopIteration as stop:
        return stop.value
    while True:
        if outbox is not None:
            if outbox.kind == "broadcast":
                outbox = Outbox.unicast(
                    {u: outbox.payload for u in ctx.neighbors}
                )
            elif outbox.kind == "bfixed":
                # A fixed-width broadcast fans out as a fixed-width
                # unicast, which rides the engine's unicast bulk lane.
                outbox = Outbox.fixed_width_map(
                    {u: outbox.values for u in ctx.neighbors}, outbox.width
                )
        inbox = yield outbox
        try:
            outbox = inner.send(inbox)
        except StopIteration as stop:
            return stop.value
