"""Deterministic routing schedules for balanced demands.

This is the library's stand-in for Lenzen's O(1)-round routing [28]
(DESIGN.md substitution #1).  In every use inside the paper the demand
pattern is public (derivable from the circuit structure and the gate
assignment), so all nodes can compute the same schedule locally:

1. The demand is expressed in *frames* (each at most the bandwidth, so
   one frame = one link per round).
2. Frames are viewed as edges of a bipartite multigraph (sources ×
   destinations) and properly edge-coloured greedily (≤ 2Δ−1 colours
   where Δ is the max number of frames at any node).
3. Colour class c travels via intermediate node c mod n: phase 1 sends
   each frame source → intermediate in round ⌊c/n⌋, phase 2 forwards
   intermediate → destination in round ⌊c/n⌋ of the second phase.

Within one colour class each node is the source of at most one frame and
the destination of at most one frame, and each (phase, round-slot,
residue) triple selects a unique colour — so every link carries at most
one frame per round.  Total rounds: 2·⌈C/n⌉ ≤ 2·⌈(2Δ−1)/n⌉, which is
O(1) whenever every node sends and receives O(n) frames — exactly the
"balanced demand" regime of [28] that Theorem 2 consumes.

A direct schedule (round t ships the t-th frame of every pair) is used
instead whenever it is at least as fast (max per-pair multiplicity ≤
two-phase rounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

__all__ = ["FrameRef", "RoutingSchedule", "build_schedule"]

# A frame is identified by (source, destination, index within the pair).
FrameRef = Tuple[int, int, int]


@dataclass
class RoutingSchedule:
    """A fully deterministic, globally known frame-by-frame timetable.

    ``send_plan[r][node]`` lists ``(recipient, frame)`` pairs node must
    transmit in round r; ``recv_plan[r][(sender, receiver)]`` names the
    frame that hop carries.  ``final_hop[frame]`` is the round in which
    the frame reaches its destination.
    """

    n: int
    num_rounds: int
    send_plan: List[Dict[int, List[Tuple[int, FrameRef]]]] = field(default_factory=list)
    recv_plan: List[Dict[Tuple[int, int], Tuple[FrameRef, bool]]] = field(default_factory=list)

    def describe(self) -> str:
        frames = sum(
            len(sends) for rnd in self.send_plan for sends in rnd.values()
        )
        return f"RoutingSchedule(rounds={self.num_rounds}, hops={frames})"


def _greedy_edge_coloring(frames: List[FrameRef]) -> Tuple[List[int], int]:
    """Proper edge colouring of the frame multigraph: no two frames with
    the same source or same destination share a colour.  Greedy uses at
    most deg(src)+deg(dst)-1 ≤ 2Δ-1 colours."""
    used_as_source: Dict[int, set] = {}
    used_as_dest: Dict[int, set] = {}
    colors: List[int] = []
    max_color = -1
    for src, dst, _ in frames:
        src_used = used_as_source.setdefault(src, set())
        dst_used = used_as_dest.setdefault(dst, set())
        color = 0
        while color in src_used or color in dst_used:
            color += 1
        colors.append(color)
        src_used.add(color)
        dst_used.add(color)
        max_color = max(max_color, color)
    return colors, max_color + 1


def _empty_round(n: int) -> Tuple[Dict[int, List[Tuple[int, FrameRef]]], Dict[Tuple[int, int], Tuple[FrameRef, bool]]]:
    return {}, {}


def build_schedule(demand: Mapping[Tuple[int, int], int], n: int) -> RoutingSchedule:
    """Build the routing timetable for ``demand[(src, dst)] = #frames``.

    Self-pairs are rejected (local data needs no routing); zero-count
    pairs are ignored.
    """
    frames: List[FrameRef] = []
    max_multiplicity = 0
    for (src, dst), count in sorted(demand.items()):
        if count <= 0:
            continue
        if src == dst:
            raise ValueError("demand may not contain self-pairs")
        if not (0 <= src < n and 0 <= dst < n):
            raise ValueError(f"demand pair ({src},{dst}) out of range")
        max_multiplicity = max(max_multiplicity, count)
        frames.extend((src, dst, idx) for idx in range(count))

    if not frames:
        return RoutingSchedule(n=n, num_rounds=0)

    colors, num_colors = _greedy_edge_coloring(frames)
    slots = -(-num_colors // n)  # ⌈C/n⌉
    two_phase_rounds = 2 * slots

    if max_multiplicity <= two_phase_rounds or n == 1:
        return _direct_schedule(demand, n, max_multiplicity)
    return _two_phase_schedule(frames, colors, slots, n)


def _direct_schedule(
    demand: Mapping[Tuple[int, int], int], n: int, rounds: int
) -> RoutingSchedule:
    schedule = RoutingSchedule(n=n, num_rounds=rounds)
    for r in range(rounds):
        sends: Dict[int, List[Tuple[int, FrameRef]]] = {}
        recvs: Dict[Tuple[int, int], Tuple[FrameRef, bool]] = {}
        for (src, dst), count in sorted(demand.items()):
            if r < count:
                frame: FrameRef = (src, dst, r)
                sends.setdefault(src, []).append((dst, frame))
                recvs[(src, dst)] = (frame, True)
        schedule.send_plan.append(sends)
        schedule.recv_plan.append(recvs)
    return schedule


def _two_phase_schedule(
    frames: List[FrameRef],
    colors: List[int],
    slots: int,
    n: int,
) -> RoutingSchedule:
    schedule = RoutingSchedule(n=n, num_rounds=2 * slots)
    phase1_sends: List[Dict[int, List[Tuple[int, FrameRef]]]] = [
        {} for _ in range(slots)
    ]
    phase1_recvs: List[Dict[Tuple[int, int], Tuple[FrameRef, bool]]] = [
        {} for _ in range(slots)
    ]
    phase2_sends: List[Dict[int, List[Tuple[int, FrameRef]]]] = [
        {} for _ in range(slots)
    ]
    phase2_recvs: List[Dict[Tuple[int, int], Tuple[FrameRef, bool]]] = [
        {} for _ in range(slots)
    ]
    for frame, color in zip(frames, colors):
        src, dst, _ = frame
        intermediate = color % n
        slot = color // n
        if intermediate != src:
            phase1_sends[slot].setdefault(src, []).append((intermediate, frame))
            phase1_recvs[slot][(src, intermediate)] = (frame, intermediate == dst)
        holder = intermediate
        if holder != dst:
            phase2_sends[slot].setdefault(holder, []).append((dst, frame))
            phase2_recvs[slot][(holder, dst)] = (frame, True)
    schedule.send_plan = phase1_sends + phase2_sends
    schedule.recv_plan = phase1_recvs + phase2_recvs
    return schedule
