"""Executing routing schedules on the engine (Lenzen-style routing).

:func:`route_frames` is the runtime counterpart of
:mod:`repro.routing.schedule`: a sub-generator that every node drives
with ``yield from`` inside its program.  All nodes hold the same
(globally computed) :class:`RoutingSchedule`, so senders, receivers and
forwarders agree on which frame each link carries each round without any
extra communication — mirroring how [28] is consumed by Theorem 2, where
the demand pattern is public.

:func:`route_payloads` layers variable-length payloads on top: payload
lengths are public (part of the plan), so payloads are padded to whole
frames and truncated by the receiver.

Routing is *oblivious*: every round's senders, receivers and frame
widths are fully determined by the public :class:`RoutingSchedule` and
``frame_size`` — the payload bits never influence the structure.
Programs whose communication consists of such routed exchanges can be
declared to the engine with :func:`~repro.core.compiled.mark_oblivious`
so repeated runs replay a compiled schedule; :func:`route_program`
packages the common whole-program case (every node routes the frames
given in its input) with the declaration already made.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.core.bits import Bits
from repro.core.compiled import mark_oblivious
from repro.core.network import Context, Outbox, inbox_uints
from repro.routing.schedule import FrameRef, RoutingSchedule, build_schedule

__all__ = ["route_frames", "payload_demand", "route_payloads", "route_program"]


def route_frames(
    ctx: Context,
    schedule: RoutingSchedule,
    my_frames: Mapping[FrameRef, Bits],
    frame_size: Optional[int] = None,
):
    """Drive ``schedule`` for this node; returns the frames delivered
    here (keyed by :data:`FrameRef`).  Sub-generator: use ``yield from``.

    When ``frame_size`` is given, every frame must be exactly that many
    bits and the whole exchange rides the engine's fixed-width fast lane
    (frames travel as uints, delivered via bulk array writes).  Without
    it, frames may have arbitrary lengths and travel as plain Bits.
    """
    if frame_size is not None:
        result = yield from _route_frames_fixed(ctx, schedule, my_frames, frame_size)
        return result
    holding: Dict[FrameRef, Bits] = dict(my_frames)
    delivered: Dict[FrameRef, Bits] = {}
    for r in range(schedule.num_rounds):
        sends = schedule.send_plan[r].get(ctx.node_id, [])
        messages: Dict[int, Bits] = {}
        for recipient, frame in sends:
            if recipient in messages:
                raise AssertionError(
                    "schedule placed two frames on one link in one round"
                )
            messages[recipient] = holding.pop(frame)
        inbox = yield (Outbox.unicast(messages) if messages else Outbox.silent())
        recv = schedule.recv_plan[r]
        for sender, payload in inbox.items():
            frame, is_final = recv[(sender, ctx.node_id)]
            if is_final:
                delivered[frame] = payload
            else:
                holding[frame] = payload
    return delivered


def _route_frames_fixed(
    ctx: Context,
    schedule: RoutingSchedule,
    my_frames: Mapping[FrameRef, Bits],
    frame_size: int,
):
    """Fixed-width body of :func:`route_frames`: frames held and
    forwarded as raw uints, converted back to Bits only on delivery."""
    me = ctx.node_id
    holding: Dict[FrameRef, int] = {}
    for ref, frame in my_frames.items():
        if len(frame) != frame_size:
            raise ValueError(
                f"frame {ref} has {len(frame)} bits, expected {frame_size}"
            )
        holding[ref] = frame.to_uint()
    delivered: Dict[FrameRef, int] = {}
    for r in range(schedule.num_rounds):
        sends = schedule.send_plan[r].get(me, ())
        if sends:
            messages: Dict[int, int] = {}
            for recipient, frame in sends:
                if recipient in messages:
                    raise AssertionError(
                        "schedule placed two frames on one link in one round"
                    )
                messages[recipient] = holding.pop(frame)
            outbox = Outbox.fixed_width_map(messages, frame_size)
        else:
            outbox = Outbox.silent()
        inbox = yield outbox
        recv = schedule.recv_plan[r]
        for sender, value in inbox_uints(inbox):
            frame, is_final = recv[(sender, me)]
            if is_final:
                delivered[frame] = value
            else:
                holding[frame] = value
    return {ref: Bits(value, frame_size) for ref, value in delivered.items()}


def route_program(schedule: RoutingSchedule, frame_size: int):
    """A complete, oblivious node program executing ``schedule``.

    Node ``v``'s input (``ctx.input``) must be its ``{FrameRef: Bits}``
    map of injected frames (or ``None`` for no traffic); the node's
    output is the ``{FrameRef: Bits}`` map of frames delivered to it.
    The program is declared oblivious — the round structure comes
    entirely from the public schedule — so sweeping many payload
    instances with :meth:`~repro.core.network.Network.run_many` replays
    one compiled schedule instead of re-classifying every round.
    """

    def program(ctx):
        delivered = yield from route_frames(
            ctx, schedule, ctx.input or {}, frame_size=frame_size
        )
        return delivered

    return mark_oblivious(program, "route_program", id(schedule), frame_size)


def payload_demand(
    lengths: Mapping[Tuple[int, int], int],
    frame_size: int,
) -> Dict[Tuple[int, int], int]:
    """Frame counts for public payload ``lengths`` (bits per (src, dst))."""
    if frame_size < 1:
        raise ValueError("frame size must be positive")
    return {
        pair: -(-bits // frame_size)
        for pair, bits in lengths.items()
        if bits > 0
    }


def route_payloads(
    ctx: Context,
    lengths: Mapping[Tuple[int, int], int],
    my_payloads: Mapping[int, Bits],
    frame_size: int,
    schedule: RoutingSchedule = None,
):
    """Route variable-length payloads under a *public* length map.

    Every node passes the same ``lengths`` (and, optionally, the same
    prebuilt schedule); ``my_payloads`` maps destination -> payload for
    this node's own traffic.  Returns {source: payload} for traffic
    addressed to this node.  Sub-generator: use ``yield from``.
    """
    if schedule is None:
        schedule = build_schedule(payload_demand(lengths, frame_size), ctx.n)
    my_frames: Dict[FrameRef, Bits] = {}
    for dst, payload in my_payloads.items():
        expected = lengths.get((ctx.node_id, dst), 0)
        if len(payload) != expected:
            raise ValueError(
                f"payload to {dst} has {len(payload)} bits, plan says {expected}"
            )
        if expected == 0:
            continue
        count = -(-expected // frame_size)
        padded = payload.pad_to(count * frame_size)
        for idx, chunk in enumerate(padded.chunks(frame_size)):
            my_frames[(ctx.node_id, dst, idx)] = chunk
    delivered = yield from route_frames(ctx, schedule, my_frames, frame_size=frame_size)
    by_source: Dict[int, Dict[int, Bits]] = {}
    for (src, _dst, idx), chunk in delivered.items():
        by_source.setdefault(src, {})[idx] = chunk
    result: Dict[int, Bits] = {}
    for src, chunks in by_source.items():
        expected = lengths[(src, ctx.node_id)]
        ordered = [chunks[i] for i in range(len(chunks))]
        result[src] = Bits.concat(ordered)[:expected]
    return result
