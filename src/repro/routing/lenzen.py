"""Executing routing schedules on the engine (Lenzen-style routing).

:func:`route_frames` is the runtime counterpart of
:mod:`repro.routing.schedule`: a sub-generator that every node drives
with ``yield from`` inside its program.  All nodes hold the same
(globally computed) :class:`RoutingSchedule`, so senders, receivers and
forwarders agree on which frame each link carries each round without any
extra communication — mirroring how [28] is consumed by Theorem 2, where
the demand pattern is public.

:func:`route_payloads` layers variable-length payloads on top: payload
lengths are public (part of the plan), so payloads are padded to whole
frames and truncated by the receiver.

Routing is *oblivious*: every round's senders, receivers and frame
widths are fully determined by the public :class:`RoutingSchedule` and
``frame_size`` — the payload bits never influence the structure.
Programs whose communication consists of such routed exchanges can be
declared to the engine with :func:`~repro.core.compiled.mark_oblivious`
so repeated runs replay a compiled schedule; :func:`route_program`
packages the common whole-program case (every node routes the frames
given in its input) with the declaration already made.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.core.bits import Bits
from repro.core.compiled import declare_schedule_digest, mark_oblivious
from repro.core.network import Context, Outbox, inbox_uints
from repro.routing.schedule import FrameRef, RoutingSchedule, build_schedule

__all__ = [
    "route_frames",
    "payload_demand",
    "route_payloads",
    "route_program",
    "kernel_route_frames",
    "kernel_route_payloads",
    "route_kernel_program",
]


def route_frames(
    ctx: Context,
    schedule: RoutingSchedule,
    my_frames: Mapping[FrameRef, Bits],
    frame_size: Optional[int] = None,
):
    """Drive ``schedule`` for this node; returns the frames delivered
    here (keyed by :data:`FrameRef`).  Sub-generator: use ``yield from``.

    When ``frame_size`` is given, every frame must be exactly that many
    bits and the whole exchange rides the engine's fixed-width fast lane
    (frames travel as uints, delivered via bulk array writes).  Without
    it, frames may have arbitrary lengths and travel as plain Bits.
    """
    if frame_size is not None:
        result = yield from _route_frames_fixed(ctx, schedule, my_frames, frame_size)
        return result
    holding: Dict[FrameRef, Bits] = dict(my_frames)
    delivered: Dict[FrameRef, Bits] = {}
    for r in range(schedule.num_rounds):
        sends = schedule.send_plan[r].get(ctx.node_id, [])
        messages: Dict[int, Bits] = {}
        for recipient, frame in sends:
            if recipient in messages:
                raise AssertionError(
                    "schedule placed two frames on one link in one round"
                )
            messages[recipient] = holding.pop(frame)
        inbox = yield (Outbox.unicast(messages) if messages else Outbox.silent())
        recv = schedule.recv_plan[r]
        for sender, payload in inbox.items():
            frame, is_final = recv[(sender, ctx.node_id)]
            if is_final:
                delivered[frame] = payload
            else:
                holding[frame] = payload
    return delivered


def _route_frames_fixed(
    ctx: Context,
    schedule: RoutingSchedule,
    my_frames: Mapping[FrameRef, Bits],
    frame_size: int,
):
    """Fixed-width body of :func:`route_frames`: frames held and
    forwarded as raw uints, converted back to Bits only on delivery."""
    me = ctx.node_id
    holding: Dict[FrameRef, int] = {}
    for ref, frame in my_frames.items():
        if len(frame) != frame_size:
            raise ValueError(
                f"frame {ref} has {len(frame)} bits, expected {frame_size}"
            )
        holding[ref] = frame.to_uint()
    delivered: Dict[FrameRef, int] = {}
    for r in range(schedule.num_rounds):
        sends = schedule.send_plan[r].get(me, ())
        if sends:
            messages: Dict[int, int] = {}
            for recipient, frame in sends:
                if recipient in messages:
                    raise AssertionError(
                        "schedule placed two frames on one link in one round"
                    )
                messages[recipient] = holding.pop(frame)
            outbox = Outbox.fixed_width_map(messages, frame_size)
        else:
            outbox = Outbox.silent()
        inbox = yield outbox
        recv = schedule.recv_plan[r]
        for sender, value in inbox_uints(inbox):
            frame, is_final = recv[(sender, me)]
            if is_final:
                delivered[frame] = value
            else:
                holding[frame] = value
    return {ref: Bits(value, frame_size) for ref, value in delivered.items()}


def route_program(schedule: RoutingSchedule, frame_size: int):
    """A complete, oblivious node program executing ``schedule``.

    Node ``v``'s input (``ctx.input``) must be its ``{FrameRef: Bits}``
    map of injected frames (or ``None`` for no traffic); the node's
    output is the ``{FrameRef: Bits}`` map of frames delivered to it.
    The program is declared oblivious — the round structure comes
    entirely from the public schedule — so sweeping many payload
    instances with :meth:`~repro.core.network.Network.run_many` replays
    one compiled schedule instead of re-classifying every round.
    """

    def program(ctx):
        delivered = yield from route_frames(
            ctx, schedule, ctx.input or {}, frame_size=frame_size
        )
        return delivered

    # Persistent-cache identity must be content-derived (the in-memory
    # key above may use object identity; disk entries are shared across
    # pool workers where id() means nothing).
    declare_schedule_digest(program, "route_program", schedule, frame_size)
    return mark_oblivious(program, "route_program", id(schedule), frame_size)


def payload_demand(
    lengths: Mapping[Tuple[int, int], int],
    frame_size: int,
) -> Dict[Tuple[int, int], int]:
    """Frame counts for public payload ``lengths`` (bits per (src, dst))."""
    if frame_size < 1:
        raise ValueError("frame size must be positive")
    return {
        pair: -(-bits // frame_size)
        for pair, bits in lengths.items()
        if bits > 0
    }


def route_payloads(
    ctx: Context,
    lengths: Mapping[Tuple[int, int], int],
    my_payloads: Mapping[int, Bits],
    frame_size: int,
    schedule: RoutingSchedule = None,
):
    """Route variable-length payloads under a *public* length map.

    Every node passes the same ``lengths`` (and, optionally, the same
    prebuilt schedule); ``my_payloads`` maps destination -> payload for
    this node's own traffic.  Returns {source: payload} for traffic
    addressed to this node.  Sub-generator: use ``yield from``.
    """
    if schedule is None:
        schedule = build_schedule(payload_demand(lengths, frame_size), ctx.n)
    my_frames: Dict[FrameRef, Bits] = {}
    for dst, payload in my_payloads.items():
        expected = lengths.get((ctx.node_id, dst), 0)
        if len(payload) != expected:
            raise ValueError(
                f"payload to {dst} has {len(payload)} bits, plan says {expected}"
            )
        if expected == 0:
            continue
        count = -(-expected // frame_size)
        padded = payload.pad_to(count * frame_size)
        for idx, chunk in enumerate(padded.chunks(frame_size)):
            my_frames[(ctx.node_id, dst, idx)] = chunk
    delivered = yield from route_frames(ctx, schedule, my_frames, frame_size=frame_size)
    by_source: Dict[int, Dict[int, Bits]] = {}
    for (src, _dst, idx), chunk in delivered.items():
        by_source.setdefault(src, {})[idx] = chunk
    result: Dict[int, Bits] = {}
    for src, chunks in by_source.items():
        expected = lengths[(src, ctx.node_id)]
        ordered = [chunks[i] for i in range(len(chunks))]
        result[src] = Bits.concat(ordered)[:expected]
    return result


# -- kernel form --------------------------------------------------------
#
# Routing is the ideal kernel workload: a frame's value never changes,
# only its location does, and every hop is in the public timetable.
# Each round therefore compiles to one gather (pick the frames moving
# this round out of the frame-value matrix) and one scatter (write what
# the links delivered back into it) — no per-node stepping at all.


def kernel_route_frames(builder, schedule: RoutingSchedule, frame_size: int, get_frames, set_result) -> None:
    """Append ``schedule``'s rounds to ``builder`` as kernel rounds.

    At phase start ``get_frames(state)`` must return one
    ``{FrameRef: Bits}`` map per instance covering exactly the frames
    the schedule injects (each exactly ``frame_size`` bits); when the
    last hop lands, ``set_result(state, delivered)`` receives
    ``delivered[k][v]`` as node ``v``'s ``{FrameRef: Bits}`` map — the
    generator :func:`route_frames` return value.
    """
    import numpy as np

    if frame_size < 1:
        raise ValueError("frame size must be positive")
    # Assign each frame a dense slot id (first appearance order) and
    # flatten every round's hops in builder structure order: ascending
    # sender, that sender's send-plan order.
    slot_of: Dict[FrameRef, int] = {}
    final_dest: Dict[FrameRef, int] = {}
    round_plans = []
    for r in range(schedule.num_rounds):
        sends = schedule.send_plan[r]
        recv = schedule.recv_plan[r]
        pairs = []
        slots = []
        for sender in sorted(sends):
            dests = []
            for recipient, frame in sends[sender]:
                if frame not in slot_of:
                    slot_of[frame] = len(slot_of)
                dests.append(recipient)
                slots.append(slot_of[frame])
                if recv[(sender, recipient)][1]:
                    final_dest[frame] = recipient
            pairs.append((sender, dests))
        round_plans.append((pairs, np.asarray(slots, dtype=np.intp)))
    num_frames = len(slot_of)
    is_object = frame_size > 63
    key = builder.fresh_key("route")

    def start(state):
        frame_maps = get_frames(state)
        instances = len(frame_maps)
        values = np.zeros(
            (instances, num_frames), dtype=object if is_object else np.uint64
        )
        for k, frames in enumerate(frame_maps):
            for ref, frame in frames.items():
                if len(frame) != frame_size:
                    raise ValueError(
                        f"frame {ref} has {len(frame)} bits, "
                        f"expected {frame_size}"
                    )
                values[k, slot_of[ref]] = frame.to_uint()
        state[key] = values

    builder.before(start)
    for pairs, slots in round_plans:

        def send(state, _slots=slots):
            return state[key][:, _slots]

        def recv(state, inbox, _slots=slots):
            # Write what the links actually delivered back into the
            # frame-value matrix (value-preserving by construction, but
            # keeps the data flow on the wire).
            state[key][:, _slots] = inbox.gather()

        builder.unicast_round(pairs, frame_size, send, recv)

    def done(state):
        values = state.pop(key)
        instances = values.shape[0]
        delivered = [
            [dict() for _ in range(builder.n)] for _ in range(instances)
        ]
        for ref, dest in final_dest.items():
            slot = slot_of[ref]
            for k in range(instances):
                delivered[k][dest][ref] = Bits(int(values[k, slot]), frame_size)
        set_result(state, delivered)

    builder.before(done)


def kernel_route_payloads(
    builder,
    lengths: Mapping[Tuple[int, int], int],
    frame_size: int,
    schedule: Optional[RoutingSchedule],
    get_payloads,
    set_result,
) -> None:
    """Append a :func:`route_payloads` phase to ``builder``: payloads
    under the public ``lengths`` map are chunked into frames, routed by
    ``schedule`` (built from ``lengths`` when ``None``), and reassembled
    at their destinations.  ``get_payloads(state)`` returns one
    ``{(src, dst): Bits}`` map per instance (only pairs with a positive
    length); ``set_result(state, received)`` gets ``received[k][v]`` as
    node ``v``'s ``{src: Bits}`` map."""
    if schedule is None:
        schedule = build_schedule(payload_demand(lengths, frame_size), builder.n)
    counts = payload_demand(lengths, frame_size)

    def get_frames(state):
        frame_maps = []
        for payloads in get_payloads(state):
            frames: Dict[FrameRef, Bits] = {}
            for (src, dst), payload in payloads.items():
                expected = lengths.get((src, dst), 0)
                if len(payload) != expected:
                    raise ValueError(
                        f"payload to {dst} has {len(payload)} bits, "
                        f"plan says {expected}"
                    )
                if expected == 0:
                    continue
                count = counts[(src, dst)]
                chunks = payload.pad_to(count * frame_size).to_uint_chunks(
                    frame_size
                )
                for idx, chunk in enumerate(chunks):
                    frames[(src, dst, idx)] = Bits(chunk, frame_size)
            frame_maps.append(frames)
        return frame_maps

    def assemble(state, delivered):
        instances = len(delivered)
        received = [
            [dict() for _ in range(builder.n)] for _ in range(instances)
        ]
        for k in range(instances):
            for v in range(builder.n):
                by_source: Dict[int, Dict[int, Bits]] = {}
                for (src, _dst, idx), chunk in delivered[k][v].items():
                    by_source.setdefault(src, {})[idx] = chunk
                for src, chunks in by_source.items():
                    expected = lengths[(src, v)]
                    ordered = [chunks[i] for i in range(len(chunks))]
                    received[k][v][src] = Bits.concat(ordered)[:expected]
        set_result(state, received)

    kernel_route_frames(builder, schedule, frame_size, get_frames, assemble)


def route_kernel_program(schedule: RoutingSchedule, frame_size: int):
    """The kernel twin of :func:`route_program`: same inputs (node
    ``v``'s ``{FrameRef: Bits}`` injection map, or ``None``), same
    outputs (the frames delivered to each node), zero generator steps —
    every round is one gather + one scatter over a frame-value matrix
    for all instances of a sweep at once."""
    from repro.core.kernels import KernelBuilder
    from repro.core.network import Mode

    builder = KernelBuilder(schedule.n, Mode.UNICAST)

    def init(state, kctx):
        state["inputs"] = kctx.inputs_list

    builder.on_init(init)

    def get_frames(state):
        maps = []
        for inputs in state["inputs"]:
            frames: Dict[FrameRef, Bits] = {}
            if inputs is not None:
                for per_node in inputs:
                    if per_node:
                        frames.update(per_node)
            maps.append(frames)
        return maps

    def set_result(state, delivered):
        state["out"] = delivered

    kernel_route_frames(builder, schedule, frame_size, get_frames, set_result)
    return builder.build(
        lambda state, kctx: state["out"], name="route_frames"
    )
