"""Deterministic balanced routing (the library's stand-in for Lenzen's
O(1)-round congested-clique routing [28]; see DESIGN.md substitution #1)."""

from repro.routing.lenzen import (
    kernel_route_frames,
    kernel_route_payloads,
    payload_demand,
    route_frames,
    route_kernel_program,
    route_payloads,
    route_program,
)
from repro.routing.schedule import FrameRef, RoutingSchedule, build_schedule

__all__ = [
    "FrameRef",
    "RoutingSchedule",
    "build_schedule",
    "route_frames",
    "route_payloads",
    "payload_demand",
    "route_program",
    "kernel_route_frames",
    "kernel_route_payloads",
    "route_kernel_program",
]
