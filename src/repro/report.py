"""One-command reproduction self-check:  ``python -m repro.report``.

Runs a miniature instance of every experiment family and prints a
PASS/FAIL line per claim — a smoke-level counterpart of the full
benchmark harness, useful after an install to confirm the reproduction
is intact on the current machine.
"""

from __future__ import annotations

import random
import sys
import time
from typing import Callable, List, Tuple

__all__ = ["run_report", "main"]


def _check_theorem2() -> str:
    from repro.circuits import builders
    from repro.simulation import simulate_circuit

    circuit = builders.parity_tree(32, 4)
    xs = [random.Random(0).random() < 0.5 for _ in range(32)]
    outputs, result, _ = simulate_circuit(circuit, 8, xs)
    assert [outputs[g] for g in circuit.outputs] == circuit.evaluate_outputs(xs)
    assert result.rounds <= 6 * (circuit.depth() + 2)
    return f"rounds={result.rounds} for depth={circuit.depth()}"


def _check_section21() -> str:
    from repro.graphs import random_graph
    from repro.matmul import detect_triangle_mm, has_triangle

    graph = random_graph(7, 0.35, random.Random(1))
    outcome, result, _ = detect_triangle_mm(graph, trials=6, circuit_kind="naive")
    assert outcome.found == has_triangle(graph)
    return f"masked-F2 pipeline agrees (rounds={result.rounds})"


def _check_theorem7() -> str:
    from repro.analysis import theorem7_round_bound
    from repro.graphs import contains_subgraph, cycle_graph, random_k_degenerate
    from repro.subgraphs import detect_subgraph

    graph = random_k_degenerate(24, 2, random.Random(2))
    pattern = cycle_graph(4)
    outcome, result = detect_subgraph(graph, pattern, bandwidth=8)
    assert outcome.contains == contains_subgraph(graph, pattern)
    assert result.rounds == theorem7_round_bound(24, pattern, 8)
    return f"exact formula match (rounds={result.rounds})"


def _check_theorem9() -> str:
    from repro.graphs import contains_subgraph, cycle_graph, random_k_degenerate
    from repro.subgraphs import adaptive_detect

    graph = random_k_degenerate(20, 2, random.Random(3))
    pattern = cycle_graph(4)
    outcome, _ = adaptive_detect(graph, pattern, bandwidth=8)
    assert outcome.contains == contains_subgraph(graph, pattern)
    return f"answered at k={outcome.k_used}, level={outcome.level_used}"


def _check_becker() -> str:
    from repro.graphs import degeneracy, random_k_degenerate
    from repro.subgraphs import reconstruct

    graph = random_k_degenerate(30, 3, random.Random(4))
    k = max(1, degeneracy(graph))
    assert reconstruct(graph, k).edge_set() == graph.edge_set()
    assert reconstruct(graph, k - 1) is None or k == 1
    return f"exact at k={k}, certified failure below"


def _check_lemma14() -> str:
    from repro.lower_bounds import clique_lower_bound_graph, verify_lower_bound_graph

    lbg = clique_lower_bound_graph(4, 3)
    violations = verify_lower_bound_graph(lbg)
    assert not violations
    return f"Definition 10 verified, |E_F|={lbg.universe_size}"


def _check_lemma18() -> str:
    from repro.lower_bounds import cycle_lower_bound_graph, verify_lower_bound_graph

    lbg = cycle_lower_bound_graph(5, 6)
    assert not verify_lower_bound_graph(lbg)
    assert lbg.cut_edges == 6
    return f"verified; δ-sparse cut={lbg.cut_edges}"


def _check_lemma21() -> str:
    from repro.lower_bounds import biclique_lower_bound_graph, verify_lower_bound_graph

    lbg = biclique_lower_bound_graph(2, 2, q=2)
    assert not verify_lower_bound_graph(lbg)
    return f"verified; |E_F|={lbg.universe_size}"


def _check_lemma13() -> str:
    from repro.lower_bounds import (
        DisjointnessReduction,
        clique_lower_bound_graph,
        sets_disjoint,
    )

    lbg = clique_lower_bound_graph(4, 3)
    reduction = DisjointnessReduction(lbg, bandwidth=8)
    rng = random.Random(5)
    m = lbg.universe_size
    x = {i for i in range(m) if rng.random() < 0.4}
    y = {i for i in range(m) if rng.random() < 0.4}
    run = reduction.solve(x, y)
    assert run.disjoint == sets_disjoint(x, y)
    return f"DISJ answered via detection ({run.blackboard_bits} bits)"


def _check_theorem24() -> str:
    from repro.lower_bounds import NOFTriangleReduction
    from repro.matmul import triangle_count

    reduction = NOFTriangleReduction(5, bandwidth=8)
    assert triangle_count(reduction.rs.graph) == reduction.rs.triangle_count
    run = reduction.solve({0, 1}, {1, 2}, {1, 3})
    assert not run.disjoint
    return f"RS triangles exact; NOF reduction correct (m={reduction.universe_size})"


def _check_counting() -> str:
    from repro.lower_bounds import (
        counting_round_lower_bound,
        trivial_upper_bound_rounds,
        two_party_hard_function_exists,
    )

    lb = counting_round_lower_bound(32, 1)
    ub = trivial_upper_bound_rounds(32, 1)
    assert lb <= ub <= lb + 14
    hard, _ = two_party_hard_function_exists()
    assert hard
    return f"LB={lb} vs UB={ub}; EQ certified 1-round-hard"


def _check_exact_cc() -> str:
    from repro.lower_bounds import disj_table, eq_table, exact_cc

    assert exact_cc(disj_table(2)) == 3
    assert exact_cc(eq_table(2)) == 3
    return "D(DISJ_2)=D(EQ_2)=3 (the textbook n+1)"


def _check_routing() -> str:
    from repro.routing import build_schedule

    schedule = build_schedule({(0, 1): 32}, 16)
    assert schedule.num_rounds <= 8
    return f"2n-frame hotspot in {schedule.num_rounds} rounds"


def _check_dlp() -> str:
    from repro.graphs import random_graph
    from repro.matmul import detect_triangle_dlp, has_triangle
    from repro.matmul.triangles_dlp import count_triangles_dlp
    from repro.matmul import triangle_count

    graph = random_graph(15, 0.3, random.Random(6))
    outcome, _ = detect_triangle_dlp(graph, bandwidth=16)
    assert outcome.found == has_triangle(graph)
    count, _ = count_triangles_dlp(graph, bandwidth=16)
    assert count == triangle_count(graph)
    return f"detects + counts exactly ({count} triangles)"


def _check_congest() -> str:
    from repro.congest import detect_c4_congest
    from repro.graphs import contains_subgraph, cycle_graph, random_graph

    graph = random_graph(16, 0.2, random.Random(7))
    outcome, _ = detect_c4_congest(graph, bandwidth=16)
    assert outcome.found == contains_subgraph(graph, cycle_graph(4))
    return "two-phase C4 detector agrees over G's own edges"


def _check_mst() -> str:
    from repro.graphs import complete_graph
    from repro.mst import WeightedGraph, boruvka_mst, mst_reference

    rng = random.Random(8)
    graph = complete_graph(12)
    wg = WeightedGraph(
        graph=graph, weights={e: rng.randint(0, 99) for e in graph.edges()}
    )
    tree, result = boruvka_mst(wg, bandwidth=32)
    assert tree == mst_reference(wg)
    return f"exact MST in {result.rounds} rounds"


CHECKS: List[Tuple[str, Callable[[], str]]] = [
    ("Theorem 2   circuit simulation O(depth)", _check_theorem2),
    ("Section 2.1 matmul triangle pipeline", _check_section21),
    ("Theorem 7   detection w/ Turán guess", _check_theorem7),
    ("Theorem 9   adaptive detection", _check_theorem9),
    ("Becker [2]  one-round reconstruction", _check_becker),
    ("Lemma 14    clique LB graph", _check_lemma14),
    ("Lemma 18    cycle LB graph", _check_lemma18),
    ("Lemma 21    biclique LB graph", _check_lemma21),
    ("Lemma 13    executed DISJ reduction", _check_lemma13),
    ("Theorem 24  NOF triangle reduction", _check_theorem24),
    ("Counting    non-explicit bound", _check_counting),
    ("Exact CC    protocol-tree DP", _check_exact_cc),
    ("Lenzen [28] balanced routing", _check_routing),
    ("DLP [8]     triangle detect + count", _check_dlp),
    ("CONGEST     C4 over input graph", _check_congest),
    ("MST [30]    Borůvka baseline", _check_mst),
]


def run_report(out=sys.stdout) -> bool:
    """Run all checks; returns True iff every one passed."""
    all_ok = True
    out.write("repro self-check — miniature run of every experiment family\n")
    out.write("=" * 64 + "\n")
    for name, check in CHECKS:
        start = time.perf_counter()  # analysis: allow(wall-clock)
        try:
            detail = check()
            elapsed = time.perf_counter() - start  # analysis: allow(wall-clock)
            out.write(f"PASS  {name}  ({elapsed:.2f}s)\n      {detail}\n")
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            all_ok = False
            out.write(f"FAIL  {name}: {exc!r}\n")
    out.write("=" * 64 + "\n")
    out.write("all claims reproduced\n" if all_ok else "FAILURES present\n")
    return all_ok


def main() -> None:
    ok = run_report()
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
