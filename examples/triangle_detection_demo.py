"""Triangle detection three ways (Section 2.1 and the [8] baseline).

Scenario: n peers in a gossip overlay want to know whether any three of
them form a mutual-connection triangle (a clique cluster seed).  The
demo runs:

1. the deterministic Dolev–Lenzen–Peled group-triple algorithm
   (Õ(n^{1/3}/b) rounds on CLIQUE-UCAST),
2. the Section 2.1 pipeline — Shamir's masked-F2 reduction on top of a
   matmul circuit compiled through the Theorem 2 simulation — with both
   the naive (Θ(n³)-wire) and Strassen (Θ(n^{2.81})-wire) circuits,
3. the centralised reference (trace of A³) as ground truth.

Run:  python examples/triangle_detection_demo.py
"""

from __future__ import annotations

import random

from repro.graphs import random_graph
from repro.matmul import (
    detect_triangle_dlp,
    detect_triangle_mm,
    find_triangle,
    has_triangle,
    triangle_count,
)


def main() -> None:
    rng = random.Random(7)
    n = 12
    graph = random_graph(n, 0.22, rng)
    truth = has_triangle(graph)
    print(f"overlay: n={graph.n}, m={graph.m}")
    print(f"ground truth: has_triangle={truth}, count={triangle_count(graph)}")
    if truth:
        print(f"reference witness: {find_triangle(graph)}")
    print()

    print("--- [8]-style deterministic group-triple algorithm ---")
    outcome, result = detect_triangle_dlp(graph, bandwidth=16)
    print(
        f"found={outcome.found} witness={outcome.witness} "
        f"groups={outcome.group_count} rounds={result.rounds}"
    )
    assert outcome.found == truth
    print()

    for kind in ("naive", "strassen"):
        print(f"--- Section 2.1: masked-F2 matmul pipeline ({kind}) ---")
        mm_outcome, mm_result, plan = detect_triangle_mm(
            graph, trials=8, circuit_kind=kind
        )
        circuit = plan.circuit
        print(
            f"circuit: wires={circuit.wire_count()} depth={circuit.depth()} "
            f"s={plan.assignment.s_param} bandwidth={plan.bandwidth}"
        )
        print(
            f"found={mm_outcome.found} witness edge={mm_outcome.witness} "
            f"rounds={mm_result.rounds} (8 masked products)"
        )
        assert mm_outcome.found == truth
        print()

    print("All three protocols agree with the centralised reference.")
    print("Smaller matmul circuits -> fewer rounds: that is the paper's")
    print("conditional O(n^eps) triangle-detection result in miniature.")


if __name__ == "__main__":
    main()
